"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures or tables through the
evaluation harness and checks the qualitative shape of the result (who wins,
in what order) while pytest-benchmark reports how long the reproduction
takes.  Run with ``pytest benchmarks/ --benchmark-only``.
"""

import pytest


@pytest.fixture(scope="session")
def report_scale() -> float:
    """Input-size scale used by the CPU-relative figures in the benches."""
    return 0.25

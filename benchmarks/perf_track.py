"""Perf-tracking gate: run the speed benchmarks and emit ``BENCH_pr10.json``.

CI's ``perf-track`` job calls this script.  It

1. runs ``benchmarks/test_backend_speed.py`` (vectorized vs functional
   wall-clock, the whole-program compiled tier vs the interpreted
   vectorized walk, and verified vs unverified serving),
   ``benchmarks/test_hierarchy_scaling.py`` (per-level
   makespan decomposition + fused vs per-shard dispatch),
   ``benchmarks/test_scheduler_speed.py`` (event-driven vs
   memoized+analytic makespan throughput),
   ``benchmarks/test_optimizer_gain.py`` (program-optimizer row-sweep
   and makespan savings), ``benchmarks/test_planner_gain.py``
   (cost-based auto-planner vs the static configuration grid), and
   ``benchmarks/test_serving_throughput.py`` (multi-worker pool
   throughput, modelled worker scaling, warm-start latency), and
   ``benchmarks/test_obs_overhead.py`` (tracing-on vs tracing-off
   serving wall-clock and energy-accounting determinism) through
   pytest, collecting their JSON payloads;
2. gates on the recorded floors — the PR 1-5 floors (vectorized backend
   speedup, hierarchy gain, per-level monotonicity, hierarchy-figure
   wall-clock budget, dispatch-fusion speedup, memoized-scheduling
   speedup, optimizer sweep/makespan reduction), the PR 6 floor
   (compiled-tier speedup over the interpreted vectorized path on every
   serving workload), the PR 7 ceiling (static verification must
   cost less than 5% of unverified serving wall-clock), the PR 8
   floors (the auto-planned makespan within 5% of the best static
   configuration on every family, beating the naive default on most,
   with exact predicted-vs-measured makespans), and the PR 9 floors
   (pool requests/sec, modelled >= 2x device-throughput scaling at 4
   workers, warm-started first request within 2x of hot and the cold
   first request at least 10x the warm one), and the PR 10 gates
   (tracing-enabled serving within 5% of tracing-disabled, and
   bit-identical per-request energy attribution across repeated
   serves) — exiting
   non-zero on a regression so future PRs cannot silently lose the fast
   paths;
3. writes the combined record to ``BENCH_pr10.json``, including the
   cross-PR wall-clock trajectory (carried forward from
   ``BENCH_pr9.json`` when present — a missing or unreadable prior file
   is warned about, not fatal), which CI uploads as an artifact.

Run locally with:  python benchmarks/perf_track.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = Path(__file__).resolve().parent
PR = 10


def run_benchmarks(
    workdir: Path,
) -> tuple[dict, dict, dict, dict, dict, dict, dict, float]:
    """Run the benchmark files, returning their payloads and wall time."""
    backend_json = workdir / "backend_speed.json"
    hierarchy_json = workdir / "hierarchy_scaling.json"
    scheduler_json = workdir / "scheduler_speed.json"
    optimizer_json = workdir / "optimizer_gain.json"
    planner_json = workdir / "planner_gain.json"
    serving_json = workdir / "serving_throughput.json"
    obs_json = workdir / "obs_overhead.json"
    env = dict(
        os.environ,
        BACKEND_SPEED_JSON=str(backend_json),
        HIERARCHY_SCALING_JSON=str(hierarchy_json),
        SCHEDULER_SPEED_JSON=str(scheduler_json),
        OPTIMIZER_GAIN_JSON=str(optimizer_json),
        PLANNER_GAIN_JSON=str(planner_json),
        SERVING_THROUGHPUT_JSON=str(serving_json),
        OBS_OVERHEAD_JSON=str(obs_json),
    )
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(BENCHMARKS / "test_backend_speed.py"),
            str(BENCHMARKS / "test_hierarchy_scaling.py"),
            str(BENCHMARKS / "test_scheduler_speed.py"),
            str(BENCHMARKS / "test_optimizer_gain.py"),
            str(BENCHMARKS / "test_planner_gain.py"),
            str(BENCHMARKS / "test_serving_throughput.py"),
            str(BENCHMARKS / "test_obs_overhead.py"),
            "-q",
        ],
        env=env,
        cwd=REPO_ROOT,
    )
    wall_s = time.perf_counter() - start
    if completed.returncode != 0:
        raise SystemExit(
            f"benchmark run failed with exit code {completed.returncode}"
        )
    return (
        json.loads(backend_json.read_text()),
        json.loads(hierarchy_json.read_text()),
        json.loads(scheduler_json.read_text()),
        json.loads(optimizer_json.read_text()),
        json.loads(planner_json.read_text()),
        json.loads(serving_json.read_text()),
        json.loads(obs_json.read_text()),
        wall_s,
    )


def gate(
    backend: dict,
    hierarchy: dict,
    scheduler: dict,
    optimizer: dict,
    planner: dict,
    serving: dict,
    obs: dict,
) -> list[str]:
    """Return regression messages (empty when every floor holds)."""
    failures = []
    backend_floor = backend.get("min_speedup", 5.0)
    if backend["speedup"] < backend_floor:
        failures.append(
            f"backend speedup {backend['speedup']:.1f}x fell below the "
            f"asserted floor {backend_floor}x"
        )
    hierarchy_floor = hierarchy.get("min_hierarchy_gain", 2.0)
    if hierarchy["hierarchy_gain"] < hierarchy_floor:
        failures.append(
            f"hierarchy gain {hierarchy['hierarchy_gain']:.2f}x fell below "
            f"the asserted floor {hierarchy_floor}x"
        )
    for row in hierarchy["rows"]:
        ordered = (
            row["channel_parallel_makespan_ns"]
            <= row["rank_parallel_makespan_ns"]
            <= row["bank_only_makespan_ns"]
            <= row["serial_latency_ns"]
        )
        if not ordered:
            failures.append(
                "per-level makespans not monotone for "
                f"{row['channels']}x{row['ranks']}: {row}"
            )
    wall_budget = hierarchy.get("max_wall_clock_s", 0.53)
    if hierarchy["wall_clock_s"] > wall_budget:
        failures.append(
            f"hierarchy figure wall-clock {hierarchy['wall_clock_s']:.2f}s "
            f"blew the fused+memoized budget {wall_budget}s"
        )
    fusion = hierarchy.get("dispatch_fusion", {})
    fusion_floor = fusion.get("min_fusion_speedup", 1.5)
    if fusion and fusion["fusion_speedup"] < fusion_floor:
        failures.append(
            f"dispatch fusion speedup {fusion['fusion_speedup']:.2f}x fell "
            f"below the asserted floor {fusion_floor}x"
        )
    scheduler_floor = scheduler.get("min_speedup", 25.0)
    if scheduler["memoized_speedup"] < scheduler_floor:
        failures.append(
            f"memoized scheduling speedup {scheduler['memoized_speedup']:.1f}x "
            f"fell below the asserted floor {scheduler_floor}x"
        )
    sweep_floor = optimizer.get("min_sweep_reduction", 0.30)
    if optimizer["sweep_reduction"] < sweep_floor:
        failures.append(
            f"optimizer sweep reduction {optimizer['sweep_reduction']:.2f} "
            f"fell below the asserted floor {sweep_floor}"
        )
    makespan_floor = optimizer.get("min_makespan_reduction", 0.20)
    if optimizer["makespan_reduction"] < makespan_floor:
        failures.append(
            f"optimizer makespan reduction {optimizer['makespan_reduction']:.2f} "
            f"fell below the asserted floor {makespan_floor}"
        )
    compiled = backend.get("compiled", {})
    compiled_floor = compiled.get("min_speedup", 5.0)
    for name, row in compiled.get("workloads", {}).items():
        if row["speedup"] < compiled_floor:
            failures.append(
                f"compiled-tier speedup {row['speedup']:.2f}x on {name} fell "
                f"below the asserted floor {compiled_floor}x"
            )
    verified = backend.get("verified_serving", {})
    if verified:
        overhead_ceiling = verified.get("max_overhead", 0.05)
        if verified["overhead"] > overhead_ceiling:
            failures.append(
                f"verified serving costs {100 * verified['overhead']:.1f}% over "
                f"unverified (allowed {100 * overhead_ceiling:.0f}%)"
            )
    planner_ceiling = planner.get("max_auto_vs_best", 0.05)
    if planner["worst_auto_vs_best"] > 1.0 + planner_ceiling:
        failures.append(
            f"auto-planned makespan is "
            f"{100 * (planner['worst_auto_vs_best'] - 1):.1f}% worse than the "
            f"best static configuration (allowed {100 * planner_ceiling:.0f}%)"
        )
    beating_floor = planner.get("min_families_beating_default", 4)
    if planner["families_beating_default"] < beating_floor:
        failures.append(
            f"auto beats the naive default on only "
            f"{planner['families_beating_default']} of {planner['families']} "
            f"families (required {beating_floor})"
        )
    if planner["max_prediction_error"] != 0.0:
        failures.append(
            f"planner predicted-vs-measured error "
            f"{planner['max_prediction_error']} (must be exact)"
        )
    sustained = serving.get("sustained", {})
    throughput_floor = sustained.get("min_requests_per_sec", 150.0)
    if sustained and sustained["requests_per_sec"] < throughput_floor:
        failures.append(
            f"pool throughput {sustained['requests_per_sec']:.0f} req/s "
            f"fell below the asserted floor {throughput_floor:.0f} req/s"
        )
    if sustained and not sustained.get("bit_identical", False):
        failures.append(
            "pooled serving results diverged from single-process execution"
        )
    scaling = serving.get("scaling", {})
    scaling_floor = scaling.get("min_modelled_scaling_4w", 2.0)
    if scaling and scaling["modelled_scaling_4w"] < scaling_floor:
        failures.append(
            f"modelled 4-worker scaling {scaling['modelled_scaling_4w']:.2f}x "
            f"fell below the asserted floor {scaling_floor}x"
        )
    warm = serving.get("warm_start", {})
    if warm:
        warm_ceiling = warm.get("max_warm_vs_hot", 2.0)
        if warm["warm_vs_hot"] > warm_ceiling:
            failures.append(
                f"warm-started first request is {warm['warm_vs_hot']:.2f}x "
                f"the hot request (allowed {warm_ceiling}x)"
            )
        cold_floor = warm.get("min_cold_vs_warm", 10.0)
        if warm["cold_vs_warm"] < cold_floor:
            failures.append(
                f"cold first request is only {warm['cold_vs_warm']:.1f}x the "
                f"warm-started one (expected >= {cold_floor}x)"
            )
    tracing = obs.get("tracing", {})
    if tracing:
        tracing_ceiling = tracing.get("max_overhead", 0.05)
        if tracing["overhead"] > tracing_ceiling:
            failures.append(
                f"tracing costs {100 * tracing['overhead']:.1f}% over "
                f"untraced serving (allowed {100 * tracing_ceiling:.0f}%)"
            )
    energy = obs.get("energy_determinism", {})
    if energy and not energy.get("deterministic", False):
        failures.append(
            "per-request energy attribution varied across identical serves"
        )
    return failures


def trajectory(
    backend: dict,
    hierarchy: dict,
    optimizer: dict,
    planner: dict,
    serving: dict,
    obs: dict,
    wall_s: float,
) -> list[dict]:
    """The cross-PR wall-clock record, carried forward from the last file."""
    points: list[dict] = []
    previous = REPO_ROOT / f"BENCH_pr{PR - 1}.json"
    if not previous.exists():
        print(
            f"WARNING: {previous.name} not found; the cross-PR trajectory "
            "restarts at this PR",
            file=sys.stderr,
        )
    else:
        try:
            record = json.loads(previous.read_text())
            carried = record.get("trajectory")
            if isinstance(carried, list):
                points.extend(point for point in carried if isinstance(point, dict))
            else:
                previous_hierarchy = record.get("hierarchy_scaling", {})
                points.append(
                    {
                        "pr": record.get("pr", PR - 1),
                        "benchmark_wall_clock_s": record.get("benchmark_wall_clock_s"),
                        "hierarchy_wall_clock_s": previous_hierarchy.get("wall_clock_s"),
                    }
                )
        except (json.JSONDecodeError, OSError) as error:
            print(
                f"WARNING: could not read {previous.name} ({error}); the "
                "cross-PR trajectory restarts at this PR",
                file=sys.stderr,
            )
    compiled_rows = backend.get("compiled", {}).get("workloads", {})
    points.append(
        {
            "pr": PR,
            "benchmark_wall_clock_s": wall_s,
            "hierarchy_wall_clock_s": hierarchy["wall_clock_s"],
            "optimizer_sweep_reduction": optimizer["sweep_reduction"],
            "optimizer_makespan_reduction": optimizer["makespan_reduction"],
            "compiled_tier_speedups": {
                name: row["speedup"] for name, row in compiled_rows.items()
            },
            "verified_serving_overhead": backend.get(
                "verified_serving", {}
            ).get("overhead"),
            "planner_worst_auto_vs_best": planner["worst_auto_vs_best"],
            "planner_families_beating_default": planner[
                "families_beating_default"
            ],
            "serving_requests_per_sec": serving.get("sustained", {}).get(
                "requests_per_sec"
            ),
            "serving_modelled_scaling_4w": serving.get("scaling", {}).get(
                "modelled_scaling_4w"
            ),
            "serving_warm_vs_hot": serving.get("warm_start", {}).get(
                "warm_vs_hot"
            ),
            "serving_cold_vs_warm": serving.get("warm_start", {}).get(
                "cold_vs_warm"
            ),
            "tracing_overhead": obs.get("tracing", {}).get("overhead"),
            "energy_pj_per_request": obs.get("energy_determinism", {}).get("energy_pj"),
        }
    )
    return points


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / f"BENCH_pr{PR}.json",
        help="where to write the combined trajectory record",
    )
    arguments = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        (
            backend,
            hierarchy,
            scheduler,
            optimizer,
            planner,
            serving,
            obs,
            wall_s,
        ) = run_benchmarks(Path(tmp))
    failures = gate(backend, hierarchy, scheduler, optimizer, planner, serving, obs)

    record = {
        "pr": PR,
        "benchmark_wall_clock_s": wall_s,
        "backend_speed": backend,
        "hierarchy_scaling": hierarchy,
        "scheduler_speed": scheduler,
        "optimizer_gain": optimizer,
        "planner_gain": planner,
        "serving_throughput": serving,
        "obs_overhead": obs,
        "dispatch_fusion": hierarchy.get("dispatch_fusion", {}),
        "trajectory": trajectory(
            backend, hierarchy, optimizer, planner, serving, obs, wall_s
        ),
        "regressions": failures,
    }
    arguments.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {arguments.output}")
    fusion = hierarchy.get("dispatch_fusion", {})
    print(
        f"backend speedup {backend['speedup']:.1f}x "
        f"(floor {backend.get('min_speedup', 5.0)}x); "
        f"hierarchy gain {hierarchy['hierarchy_gain']:.2f}x "
        f"(floor {hierarchy.get('min_hierarchy_gain', 2.0)}x); "
        f"hierarchy wall {hierarchy['wall_clock_s']:.2f}s "
        f"(budget {hierarchy.get('max_wall_clock_s', 0.53)}s); "
        f"fusion {fusion.get('fusion_speedup', float('nan')):.2f}x "
        f"(floor {fusion.get('min_fusion_speedup', 1.5)}x); "
        f"memoized scheduling {scheduler['memoized_speedup']:.0f}x "
        f"(floor {scheduler.get('min_speedup', 25.0)}x); "
        f"optimizer sweeps -{100 * optimizer['sweep_reduction']:.0f}% "
        f"(floor {100 * optimizer.get('min_sweep_reduction', 0.30):.0f}%), "
        f"makespan -{100 * optimizer['makespan_reduction']:.0f}% "
        f"(floor {100 * optimizer.get('min_makespan_reduction', 0.20):.0f}%)"
    )
    compiled = backend.get("compiled", {})
    if compiled.get("workloads"):
        speedups = "; ".join(
            f"{name} {row['speedup']:.2f}x"
            for name, row in compiled["workloads"].items()
        )
        print(
            f"compiled tier {speedups} "
            f"(floor {compiled.get('min_speedup', 5.0)}x)"
        )
    verified = backend.get("verified_serving", {})
    if verified:
        print(
            f"verified serving {100 * verified['overhead']:+.1f}% "
            f"(ceiling +{100 * verified.get('max_overhead', 0.05):.0f}%)"
        )
    print(
        f"auto-planner worst-vs-best "
        f"{100 * (planner['worst_auto_vs_best'] - 1):+.1f}% "
        f"(ceiling +{100 * planner.get('max_auto_vs_best', 0.05):.0f}%); "
        f"beats default on {planner['families_beating_default']}/"
        f"{planner['families']} families "
        f"(floor {planner.get('min_families_beating_default', 4)}); "
        f"prediction error {planner['max_prediction_error']}"
    )
    sustained = serving.get("sustained", {})
    scaling = serving.get("scaling", {})
    warm = serving.get("warm_start", {})
    if sustained:
        print(
            f"pool throughput {sustained['requests_per_sec']:.0f} req/s "
            f"(floor {sustained.get('min_requests_per_sec', 150.0):.0f}); "
            f"modelled 4-worker scaling "
            f"{scaling.get('modelled_scaling_4w', float('nan')):.2f}x "
            f"(floor {scaling.get('min_modelled_scaling_4w', 2.0)}x); "
            f"warm first {warm.get('warm_vs_hot', float('nan')):.2f}x hot "
            f"(ceiling {warm.get('max_warm_vs_hot', 2.0)}x); "
            f"cold {warm.get('cold_vs_warm', float('nan')):.0f}x warm "
            f"(floor {warm.get('min_cold_vs_warm', 10.0)}x)"
        )
    tracing = obs.get("tracing", {})
    energy = obs.get("energy_determinism", {})
    if tracing:
        print(
            f"tracing overhead {100 * tracing['overhead']:+.1f}% "
            f"(ceiling +{100 * tracing.get('max_overhead', 0.05):.0f}%); "
            f"energy {energy.get('energy_pj', float('nan')):.0f} pJ/request "
            f"over {energy.get('dram_commands', '?')} DRAM commands "
            f"(deterministic={energy.get('deterministic')})"
        )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

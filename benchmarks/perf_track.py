"""Perf-tracking gate: run the speed benchmarks and emit ``BENCH_pr3.json``.

CI's ``perf-track`` job calls this script.  It

1. runs ``benchmarks/test_backend_speed.py`` (vectorized vs functional
   wall-clock) and ``benchmarks/test_hierarchy_scaling.py`` (per-level
   makespan decomposition) through pytest, collecting their JSON payloads;
2. gates on the recorded floors — the vectorized backend must keep its
   asserted ``min_speedup`` over the functional backend, and the rank +
   channel hierarchy levels must keep their ``min_hierarchy_gain`` over
   banks alone — exiting non-zero on a regression so future PRs cannot
   silently lose the fast paths PR 1/PR 2/PR 3 bought;
3. writes the combined trajectory record (wall-clock, modelled latency,
   speedups) to ``BENCH_pr3.json``, which CI uploads as an artifact.

Run locally with:  python benchmarks/perf_track.py
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BENCHMARKS = Path(__file__).resolve().parent


def run_benchmarks(workdir: Path) -> tuple[dict, dict, float]:
    """Run both benchmark files, returning their payloads and wall time."""
    backend_json = workdir / "backend_speed.json"
    hierarchy_json = workdir / "hierarchy_scaling.json"
    env = dict(
        os.environ,
        BACKEND_SPEED_JSON=str(backend_json),
        HIERARCHY_SCALING_JSON=str(hierarchy_json),
    )
    src = str(REPO_ROOT / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    start = time.perf_counter()
    completed = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(BENCHMARKS / "test_backend_speed.py"),
            str(BENCHMARKS / "test_hierarchy_scaling.py"),
            "-q",
        ],
        env=env,
        cwd=REPO_ROOT,
    )
    wall_s = time.perf_counter() - start
    if completed.returncode != 0:
        raise SystemExit(
            f"benchmark run failed with exit code {completed.returncode}"
        )
    return (
        json.loads(backend_json.read_text()),
        json.loads(hierarchy_json.read_text()),
        wall_s,
    )


def gate(backend: dict, hierarchy: dict) -> list[str]:
    """Return regression messages (empty when every floor holds)."""
    failures = []
    backend_floor = backend.get("min_speedup", 5.0)
    if backend["speedup"] < backend_floor:
        failures.append(
            f"backend speedup {backend['speedup']:.1f}x fell below the "
            f"asserted floor {backend_floor}x"
        )
    hierarchy_floor = hierarchy.get("min_hierarchy_gain", 2.0)
    if hierarchy["hierarchy_gain"] < hierarchy_floor:
        failures.append(
            f"hierarchy gain {hierarchy['hierarchy_gain']:.2f}x fell below "
            f"the asserted floor {hierarchy_floor}x"
        )
    for row in hierarchy["rows"]:
        ordered = (
            row["channel_parallel_makespan_ns"]
            <= row["rank_parallel_makespan_ns"]
            <= row["bank_only_makespan_ns"]
            <= row["serial_latency_ns"]
        )
        if not ordered:
            failures.append(
                "per-level makespans not monotone for "
                f"{row['channels']}x{row['ranks']}: {row}"
            )
    return failures


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--output",
        type=Path,
        default=REPO_ROOT / "BENCH_pr3.json",
        help="where to write the combined trajectory record",
    )
    arguments = parser.parse_args()

    with tempfile.TemporaryDirectory() as tmp:
        backend, hierarchy, wall_s = run_benchmarks(Path(tmp))
    failures = gate(backend, hierarchy)

    record = {
        "pr": 3,
        "benchmark_wall_clock_s": wall_s,
        "backend_speed": backend,
        "hierarchy_scaling": hierarchy,
        "regressions": failures,
    }
    arguments.output.write_text(json.dumps(record, indent=2) + "\n")
    print(f"wrote {arguments.output}")
    print(
        f"backend speedup {backend['speedup']:.1f}x "
        f"(floor {backend.get('min_speedup', 5.0)}x); "
        f"hierarchy gain {hierarchy['hierarchy_gain']:.2f}x "
        f"(floor {hierarchy.get('min_hierarchy_gain', 2.0)}x)"
    )
    if failures:
        for failure in failures:
            print(f"REGRESSION: {failure}", file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()

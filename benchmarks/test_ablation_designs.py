"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper figures; they quantify the cost of individual design
decisions so the trade-offs of Section 5 can be inspected directly:

* GSA's destructive reads (per-query LUT reloads) as a function of LUT size.
* Bit-parallel LUT multiplication vs. SIMDRAM-style bit-serial execution.
* The latency penalty of interleaved precharges (BSA) vs. gated designs.
"""

from repro.baselines.prior_pum import SIMDRAM
from repro.core.analytical import PlutoCostModel
from repro.core.designs import PlutoDesign
from repro.dram.energy import DDR4_ENERGY
from repro.dram.timing import DDR4_2400


def _model() -> PlutoCostModel:
    return PlutoCostModel(DDR4_2400, DDR4_ENERGY, 8192, rows_per_subarray=512)


def test_ablation_gsa_reload_overhead(benchmark):
    """How much of GSA's query latency is the destructive-read reload?"""

    def run():
        model = _model()
        overheads = {}
        for entries in (16, 64, 256, 512):
            gsa = model.query_latency_ns(PlutoDesign.GSA, entries)
            sweep_only = model.sweep_latency_ns(PlutoDesign.GSA, entries)
            overheads[entries] = (gsa - sweep_only) / gsa
        return overheads

    overheads = benchmark(run)
    # The reload overhead dominates (>= half the query) at every LUT size.
    assert all(fraction > 0.45 for fraction in overheads.values())


def test_ablation_precharge_elimination(benchmark):
    """GMC's back-to-back activations halve the sweep latency vs. BSA."""

    def run():
        model = _model()
        return {
            entries: model.sweep_latency_ns(PlutoDesign.BSA, entries)
            / model.sweep_latency_ns(PlutoDesign.GMC, entries)
            for entries in (64, 256, 512)
        }

    ratios = benchmark(run)
    for ratio in ratios.values():
        assert 1.7 < ratio <= 2.1


def test_ablation_bit_parallel_vs_bit_serial_multiplication(benchmark):
    """pLUTo's LUT multiplication vs. SIMDRAM's bit-serial latency."""

    def run():
        model = _model()
        results = {}
        for bits in (2, 4, 8):
            nibbles = max(1, -(-bits // 4))
            sweeps = 2 * nibbles * nibbles - 1
            pluto = sweeps * model.query_latency_ns(PlutoDesign.BSA, 256)
            results[bits] = SIMDRAM.multiplication_latency_ns(bits) / pluto
        return results

    ratios = benchmark(run)
    # The bit-serial penalty grows with operand width (quadratic ACT count).
    assert ratios[4] > 1.0
    assert ratios[8] > ratios[2] * 0.5

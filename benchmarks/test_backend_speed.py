"""Benchmark: vectorized vs functional execution of a compiled program.

Times a representative Figure 7 workload (the 8-bit image pipeline:
colour-grade LUT map followed by a binarization LUT map, the IMG workloads'
command mix) through the full compile/controller stack on both execution
backends, asserts the vectorized fast path is at least 5x faster
wall-clock, and emits the numbers as JSON for the bench trajectory
(stdout + ``benchmarks/backend_speed.json``, overridable via the
``BACKEND_SPEED_JSON`` environment variable).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.api.luts import binarize_lut, color_grade_lut
from repro.api.session import PlutoSession
from repro.core.engine import PlutoConfig, PlutoEngine

#: Input size: eight full DDR4 rows of 8-bit pixels.
ELEMENTS = 8 * 8192
MIN_SPEEDUP = 5.0


def _build_session() -> PlutoSession:
    session = PlutoSession()
    pixels = session.pluto_malloc(ELEMENTS, 8, "pixels")
    graded = session.pluto_malloc(ELEMENTS, 8, "graded")
    binary = session.pluto_malloc(ELEMENTS, 8, "binary")
    session.api_pluto_map(color_grade_lut(), pixels, graded)
    session.api_pluto_map(binarize_lut(127), graded, binary)
    return session


def _time_backend(session: PlutoSession, backend: str, inputs, engine) -> float:
    session.backend = backend
    session.run(inputs, engine=engine)  # warm-up: caches, imports
    best = float("inf")
    repeats = 3 if backend == "vectorized" else 1
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.run(inputs, engine=engine)
        best = min(best, time.perf_counter() - start)
    assert result.lut_queries == 2
    return best


def test_vectorized_backend_is_faster():
    session = _build_session()
    inputs = {"pixels": np.arange(ELEMENTS, dtype=np.uint64) % 256}
    engine = PlutoEngine(PlutoConfig())

    functional_s = _time_backend(session, "functional", inputs, engine)
    vectorized_s = _time_backend(session, "vectorized", inputs, engine)
    speedup = functional_s / max(vectorized_s, 1e-12)

    payload = {
        "workload": "image-pipeline (colorgrade8 + binarize8 maps)",
        "elements": ELEMENTS,
        "functional_s": functional_s,
        "vectorized_s": vectorized_s,
        "speedup": speedup,
        # The asserted floor, recorded so the perf-track CI gate reads the
        # same threshold this test enforces.
        "min_speedup": MIN_SPEEDUP,
    }
    print("BACKEND_SPEED_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "BACKEND_SPEED_JSON",
            Path(__file__).resolve().parent / "backend_speed.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized backend is only {speedup:.1f}x faster than functional "
        f"(required {MIN_SPEEDUP}x)"
    )

"""Benchmark: execution-tier speed floors for compiled programs.

Two floors share this file (and the ``backend_speed.json`` payload):

1. ``test_vectorized_backend_is_faster`` — the original PR 2 floor: a
   representative Figure 7 workload (the 8-bit image pipeline) through
   the full compile/controller stack must run at least 5x faster on the
   vectorized backend than on the functional row-sweep oracle.
2. ``test_compiled_tier_floor`` — the PR 6 floor: the whole-program
   compiled tier (one cached NumPy closure per program structure) must
   run 4096-element image and salsa20 serving programs at least 5x
   faster than the per-instruction interpreted vectorized path
   (``PlutoController(..., jit=False)``).  Interpreted and compiled
   rounds are interleaved and the gate uses the median per-round ratio,
   so machine-state drift moves both tiers together instead of skewing
   the ratio.

Results are emitted as JSON for the bench trajectory (stdout +
``benchmarks/backend_speed.json``, overridable via the
``BACKEND_SPEED_JSON`` environment variable).
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.api.luts import binarize_lut, color_grade_lut
from repro.api.session import PlutoSession
from repro.core.engine import PlutoConfig, PlutoEngine

#: Input size: eight full DDR4 rows of 8-bit pixels.
ELEMENTS = 8 * 8192
MIN_SPEEDUP = 5.0

#: The compiled-tier floor: small-element serving programs where
#: per-instruction Python dispatch used to dominate the wall clock.
COMPILED_ELEMENTS = 4096
COMPILED_WORKLOADS = ("image", "salsa20")
MIN_COMPILED_SPEEDUP = 5.0

#: The PR 7 ceiling: serving with the static verifier on
#: (``PlutoConfig(verify="always")``) may cost at most 5% wall-clock
#: over unverified serving — verification reports are memoized on the
#: program structure key, so a warm shape pays one dict hit per run.
MAX_VERIFY_OVERHEAD = 0.05


def _build_session() -> PlutoSession:
    session = PlutoSession()
    pixels = session.pluto_malloc(ELEMENTS, 8, "pixels")
    graded = session.pluto_malloc(ELEMENTS, 8, "graded")
    binary = session.pluto_malloc(ELEMENTS, 8, "binary")
    session.api_pluto_map(color_grade_lut(), pixels, graded)
    session.api_pluto_map(binarize_lut(127), graded, binary)
    return session


def _time_backend(session: PlutoSession, backend: str, inputs, engine) -> float:
    session.backend = backend
    session.run(inputs, engine=engine)  # warm-up: caches, imports
    best = float("inf")
    repeats = 3 if backend == "vectorized" else 1
    for _ in range(repeats):
        start = time.perf_counter()
        result = session.run(inputs, engine=engine)
        best = min(best, time.perf_counter() - start)
    assert result.lut_queries == 2
    return best


def test_vectorized_backend_is_faster():
    session = _build_session()
    inputs = {"pixels": np.arange(ELEMENTS, dtype=np.uint64) % 256}
    engine = PlutoEngine(PlutoConfig())

    functional_s = _time_backend(session, "functional", inputs, engine)
    vectorized_s = _time_backend(session, "vectorized", inputs, engine)
    speedup = functional_s / max(vectorized_s, 1e-12)

    payload = {
        "workload": "image-pipeline (colorgrade8 + binarize8 maps)",
        "elements": ELEMENTS,
        "functional_s": functional_s,
        "vectorized_s": vectorized_s,
        "speedup": speedup,
        # The asserted floor, recorded so the perf-track CI gate reads the
        # same threshold this test enforces.
        "min_speedup": MIN_SPEEDUP,
    }
    print("BACKEND_SPEED_JSON " + json.dumps(payload))
    _merge_payload(payload)

    assert speedup >= MIN_SPEEDUP, (
        f"vectorized backend is only {speedup:.1f}x faster than functional "
        f"(required {MIN_SPEEDUP}x)"
    )


def _merge_payload(fields: dict) -> None:
    """Merge ``fields`` into the shared backend-speed JSON payload.

    Both tests in this file contribute to one record; whichever runs
    second must not clobber the first, so the file is read-modify-write.
    """
    output = Path(
        os.environ.get(
            "BACKEND_SPEED_JSON",
            Path(__file__).resolve().parent / "backend_speed.json",
        )
    )
    payload: dict = {}
    if output.exists():
        try:
            payload = json.loads(output.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload.update(fields)
    output.write_text(json.dumps(payload, indent=2) + "\n")


def _interleaved_speedup(interp, jit, compiled, inputs, key) -> dict:
    """Median per-round compiled-over-interpreted speedup for one program."""
    rounds = 7
    interp_reps = 20
    jit_reps = 150
    jit.execute(compiled, dict(inputs), structure_key=key)  # warm closure
    interp.execute(compiled, dict(inputs), structure_key=key)
    ratios = []
    interp_best = jit_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(interp_reps):
            interp.execute(compiled, dict(inputs), structure_key=key)
        interp_s = (time.perf_counter() - start) / interp_reps
        start = time.perf_counter()
        for _ in range(jit_reps):
            result = jit.execute(compiled, dict(inputs), structure_key=key)
        jit_s = (time.perf_counter() - start) / jit_reps
        assert result.backend == "vectorized"
        interp_best = min(interp_best, interp_s)
        jit_best = min(jit_best, jit_s)
        ratios.append(interp_s / max(jit_s, 1e-12))
    return {
        "interpreted_s": interp_best,
        "compiled_s": jit_best,
        "speedup": statistics.median(ratios),
    }


def test_compiled_tier_floor():
    from repro.api.session import compile_cached_with_key
    from repro.controller.executor import PlutoController
    from repro.workloads.programs import workload_program

    engine = PlutoEngine(PlutoConfig())
    jit = PlutoController(engine, backend="vectorized")
    interp = PlutoController(engine, backend="vectorized", jit=False)

    compiled_payload: dict = {
        "elements": COMPILED_ELEMENTS,
        "min_speedup": MIN_COMPILED_SPEEDUP,
        "workloads": {},
    }
    for name in COMPILED_WORKLOADS:
        workload = workload_program(name, elements=COMPILED_ELEMENTS, seed=0)
        compiled, key = compile_cached_with_key(workload.session.calls)
        assert key is not None
        compiled_payload["workloads"][name] = _interleaved_speedup(
            interp, jit, compiled, workload.inputs, key
        )

    print("COMPILED_SPEED_JSON " + json.dumps(compiled_payload))
    _merge_payload({"compiled": compiled_payload})

    for name, row in compiled_payload["workloads"].items():
        assert row["speedup"] >= MIN_COMPILED_SPEEDUP, (
            f"compiled tier is only {row['speedup']:.2f}x faster than the "
            f"interpreted vectorized path on {name} "
            f"(required {MIN_COMPILED_SPEEDUP}x)"
        )


def test_verified_serving_overhead():
    """Serving with verify="always" stays within 5% of unverified serving.

    Interleaved rounds (like the compiled-tier gate): each round times
    ``reps`` runs under ``verify="off"`` then under ``verify="always"``,
    and the gate uses the median per-round ratio so machine-state drift
    moves both configurations together.
    """
    from repro.workloads.programs import workload_program

    off = PlutoEngine(PlutoConfig(verify="off"))
    on = PlutoEngine(PlutoConfig(verify="always"))
    workload = workload_program("image", elements=COMPILED_ELEMENTS, seed=0)
    session = workload.session
    inputs = workload.inputs

    # Warm everything both paths share (compile/closure caches) plus the
    # verifier memo, so the rounds measure steady-state serving.
    session.run(inputs, engine=off)
    session.run(inputs, engine=on)

    rounds, reps = 7, 30
    ratios = []
    off_best = on_best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for _ in range(reps):
            session.run(inputs, engine=off)
        off_s = (time.perf_counter() - start) / reps
        start = time.perf_counter()
        for _ in range(reps):
            session.run(inputs, engine=on)
        on_s = (time.perf_counter() - start) / reps
        off_best = min(off_best, off_s)
        on_best = min(on_best, on_s)
        ratios.append(on_s / max(off_s, 1e-12))

    overhead = statistics.median(ratios) - 1.0
    payload = {
        "workload": "image",
        "elements": COMPILED_ELEMENTS,
        "unverified_s": off_best,
        "verified_s": on_best,
        "overhead": overhead,
        "max_overhead": MAX_VERIFY_OVERHEAD,
    }
    print("VERIFIED_SERVING_JSON " + json.dumps(payload))
    _merge_payload({"verified_serving": payload})

    assert overhead <= MAX_VERIFY_OVERHEAD, (
        f"verified serving costs {100 * overhead:.1f}% over unverified "
        f"(allowed {100 * MAX_VERIFY_OVERHEAD:.0f}%)"
    )

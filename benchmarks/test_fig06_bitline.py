"""Benchmark: reproduce Figure 6 (bitline reliability Monte-Carlo study)."""

from repro.evaluation.figures import figure06_bitline_reliability


def test_fig06_bitline_reliability(benchmark):
    result = benchmark(figure06_bitline_reliability, 100)
    assert len(result.rows) == 4
    assert all(row["all_settled"] for row in result.rows)
    # Final-voltage disturbance stays below 1 % of VDD (paper: ~0.9 %).
    assert all(row["max_disturbance_fraction"] <= 0.01 for row in result.rows)

"""Benchmark: reproduce Figure 7 (speedup over the CPU baseline)."""

from repro.evaluation.figures import figure07_speedup_over_cpu


def test_fig07_speedup_over_cpu(benchmark, report_scale):
    result = benchmark(figure07_speedup_over_cpu, report_scale)
    gmean = result.rows[-1]
    assert gmean["workload"] == "GMEAN"
    # Ordering: GMC > BSA > GSA, all well above the CPU; GPU comparable to
    # BSA; PnM clearly behind pLUTo (paper: pLUTo-BSA ~18x PnM).
    assert gmean["pLUTo-GMC"] > gmean["pLUTo-BSA"] > gmean["pLUTo-GSA"] > 10
    assert gmean["pLUTo-BSA"] > 50
    assert 0.3 * gmean["GPU"] < gmean["pLUTo-BSA"] < 10 * gmean["GPU"]
    assert gmean["pLUTo-BSA"] > 5 * gmean["PnM"]
    # 3D-stacked variants outperform their DDR4 counterparts (~38 % in the paper).
    for design in ("pLUTo-GSA", "pLUTo-BSA", "pLUTo-GMC"):
        assert gmean[f"{design}-3DS"] > gmean[design]

"""Benchmark: reproduce Figure 8 (speedup per unit area over the CPU)."""

from repro.evaluation.figures import figure08_speedup_per_area


def test_fig08_speedup_per_area(benchmark, report_scale):
    result = benchmark(figure08_speedup_per_area, report_scale)
    gmean = result.rows[-1]
    # Every pLUTo design beats both the CPU and the GPU per unit area, and
    # the 3DS variants are the most area-efficient (Section 8.2.1).
    for design in ("pLUTo-GSA", "pLUTo-BSA", "pLUTo-GMC"):
        assert gmean[design] > 1
        assert gmean[design] > gmean["GPU"]
        assert gmean[f"{design}-3DS"] > gmean[design]

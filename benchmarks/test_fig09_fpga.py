"""Benchmark: reproduce Figure 9 (speedup over the FPGA baseline)."""

from repro.evaluation.figures import figure09_speedup_over_fpga


def test_fig09_speedup_over_fpga(benchmark):
    result = benchmark(figure09_speedup_over_fpga, 0.5)
    by_name = {row["workload"]: row for row in result.rows}
    # pLUTo outperforms the FPGA on every workload; the largest gains come
    # from small-LUT workloads and the smallest from wide-operand ones.
    for row in result.rows:
        assert row["pLUTo-BSA"] > 1
    assert by_name["BC4"]["pLUTo-BSA"] > by_name["MUL16"]["pLUTo-BSA"]
    assert by_name["ADD4"]["pLUTo-BSA"] > by_name["ADD8"]["pLUTo-BSA"]
    assert by_name["GMEAN"]["pLUTo-BSA"] > 10

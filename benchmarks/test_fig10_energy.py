"""Benchmark: reproduce Figure 10 (CPU-normalised energy)."""

from repro.evaluation.figures import figure10_energy_over_cpu


def test_fig10_energy_over_cpu(benchmark, report_scale):
    result = benchmark(figure10_energy_over_cpu, report_scale)
    gmean = result.rows[-1]
    # pLUTo saves orders of magnitude of energy over the CPU and a large
    # factor over the GPU; GMC > BSA > GSA (Section 8.3).
    assert gmean["pLUTo-GMC"] > gmean["pLUTo-BSA"] > gmean["pLUTo-GSA"] > 10
    assert gmean["pLUTo-BSA"] > 100
    assert gmean["pLUTo-BSA"] > 10 * gmean["GPU"]

"""Benchmark: reproduce Figure 11 (LUT loading overhead)."""

from repro.evaluation.figures import figure11_lut_loading


def test_fig11_lut_loading(benchmark):
    result = benchmark(figure11_lut_loading)
    ddr4 = [row for row in result.rows if row["source"] == "DDR4"]
    ssd = [row for row in result.rows if row["source"] == "SSD"]
    # Loading overhead falls quickly with queried volume and is higher when
    # LUTs come from the SSD; at >= 120 MB the DDR4 fraction is a few percent.
    assert all(b["load_fraction"] <= a["load_fraction"] for a, b in zip(ddr4, ddr4[1:]))
    assert ddr4[-1]["load_fraction"] < 0.05
    assert all(s["load_fraction"] >= d["load_fraction"] for s, d in zip(ssd, ddr4))

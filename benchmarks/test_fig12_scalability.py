"""Benchmark: reproduce Figure 12 (LUT-query scalability, multiplication efficiency)."""

from repro.evaluation.figures import figure12_scalability


def test_fig12_scalability(benchmark):
    result = benchmark(figure12_scalability)
    panel_a = [row for row in result.rows if row["panel"] == "a"]
    panel_b = {row["bit_width"]: row for row in result.rows if row["panel"] == "b"}
    # (a) Throughput falls and energy rises with LUT size; GMC is the
    # fastest / most efficient design at every size.
    for row in panel_a:
        assert row["pLUTo-GMC_throughput"] >= row["pLUTo-BSA_throughput"]
        assert row["pLUTo-GMC_energy_j"] <= row["pLUTo-BSA_energy_j"]
    assert panel_a[0]["pLUTo-BSA_throughput"] > panel_a[-1]["pLUTo-BSA_throughput"]
    # (b) pLUTo beats the PnM baseline for low-precision multiplication and
    # loses at 32 bits (the crossover the paper discusses).
    assert panel_b[4]["pLUTo-BSA_ops_per_j"] > panel_b[4]["PnM_ops_per_j"]
    assert panel_b[32]["pLUTo-BSA_ops_per_j"] < panel_b[32]["PnM_ops_per_j"]

"""Benchmark: reproduce Figure 12 (LUT-query scalability, multiplication efficiency)."""

from repro.evaluation.figures import figure12_scalability, figure12_sharded_scaling


def test_fig12_scalability(benchmark):
    result = benchmark(figure12_scalability)
    panel_a = [row for row in result.rows if row["panel"] == "a"]
    panel_b = {row["bit_width"]: row for row in result.rows if row["panel"] == "b"}
    # (a) Throughput falls and energy rises with LUT size; GMC is the
    # fastest / most efficient design at every size.
    for row in panel_a:
        assert row["pLUTo-GMC_throughput"] >= row["pLUTo-BSA_throughput"]
        assert row["pLUTo-GMC_energy_j"] <= row["pLUTo-BSA_energy_j"]
    assert panel_a[0]["pLUTo-BSA_throughput"] > panel_a[-1]["pLUTo-BSA_throughput"]
    # (b) pLUTo beats the PnM baseline for low-precision multiplication and
    # loses at 32 bits (the crossover the paper discusses).
    assert panel_b[4]["pLUTo-BSA_ops_per_j"] > panel_b[4]["PnM_ops_per_j"]
    assert panel_b[32]["pLUTo-BSA_ops_per_j"] < panel_b[32]["PnM_ops_per_j"]


def test_fig12_sharded_scaling(benchmark):
    """Sharded mode: executed bank-parallel programs reproduce the trend."""
    result = benchmark(figure12_sharded_scaling)
    rows = {row["shards"]: row for row in result.rows}
    # Makespan falls monotonically with the number of bank-parallel
    # shards; the summed serial latency does not (LUT loads replicate).
    makespans = [rows[n]["makespan_ns"] for n in (1, 2, 4, 8)]
    assert makespans == sorted(makespans, reverse=True)
    for n in (2, 4, 8):
        assert rows[n]["makespan_ns"] < rows[n]["serial_latency_ns"]
        assert rows[n]["speedup_vs_one_shard"] > 1.0
    # Scaling is sublinear (the paper's Fig. 12 shape): extra banks pay
    # a replicated one-time LUT load.
    assert rows[8]["speedup_vs_one_shard"] < 8.0

"""Benchmark: reproduce Figure 13 (tFAW sensitivity)."""

from repro.evaluation.figures import figure13_sharded_tfaw, figure13_tfaw_sensitivity


def test_fig13_tfaw_sensitivity(benchmark, report_scale):
    result = benchmark(figure13_tfaw_sensitivity, (0.0, 0.5, 1.0), report_scale)
    gmeans = {
        row["tfaw_fraction"]: row["relative_performance"]
        for row in result.rows
        if row["workload"] == "GMEAN"
    }
    # Tighter activation windows reduce performance monotonically, but
    # pLUTo remains well within a usable range at nominal tFAW.
    assert gmeans[0.0] == 1.0
    assert gmeans[1.0] <= gmeans[0.5] <= gmeans[0.0]
    assert gmeans[1.0] > 0.4


def test_fig13_sharded_tfaw(benchmark):
    """Sharded mode: the activation window throttles executed programs."""
    result = benchmark(figure13_sharded_tfaw)
    relatives = {
        row["tfaw_fraction"]: row["relative_performance"] for row in result.rows
    }
    fractions = sorted(relatives)
    assert relatives[fractions[0]] == 1.0
    # Monotone degradation as the window tightens, with a clear hit at
    # the largest stress fraction (Section 8.7).
    ordered = [relatives[fraction] for fraction in fractions]
    assert ordered == sorted(ordered, reverse=True)
    assert relatives[fractions[-1]] < 0.5

"""Benchmark: reproduce Figure 14 (subarray-level parallelism scaling)."""

from repro.evaluation.figures import figure14_salp_scaling


def test_fig14_salp_scaling(benchmark):
    result = benchmark(figure14_salp_scaling, (1, 16, 256, 2048), (512, 8192), 1.0)
    ddr4 = [row for row in result.rows if row["memory"] == "DDR4"]
    threeds = [row for row in result.rows if row["memory"] == "3DS"]
    # Performance scales close to linearly with subarray count for large
    # inputs, for both DDR4 and 3DS memories (Section 8.8).
    ddr4_speedups = [row["pLUTo-BSA"] for row in ddr4]
    assert all(b > a for a, b in zip(ddr4_speedups, ddr4_speedups[1:]))
    assert ddr4_speedups[1] > 6 * ddr4_speedups[0]
    assert threeds[1]["pLUTo-BSA"] > threeds[0]["pLUTo-BSA"]

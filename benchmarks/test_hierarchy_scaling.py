"""Benchmark: per-level makespans of hierarchical dispatch.

Runs the reference 256-entry LUT map through the hierarchical dispatcher
for growing device shapes and asserts the PR's acceptance criteria on the
makespan decomposition:

* per level, enabling more hierarchy never hurts —
  channel-parallel <= rank-parallel <= bank-only <= serial;
* rank- and channel-level parallelism genuinely help at scale — the
  2-channel x 2-rank device beats the single-rank module;
* wall-clock stays bounded (the vectorized backend executes the shards).

The numbers are emitted as JSON for the bench trajectory (stdout +
``benchmarks/hierarchy_scaling.json``, overridable via the
``HIERARCHY_SCALING_JSON`` environment variable); CI's perf-track job
folds them into ``BENCH_pr3.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.evaluation.figures import figure_hierarchy_scaling

ELEMENTS = 65536
#: The full hierarchy must beat banks alone by at least the rank x channel
#: product's worth of headroom on the largest device (2 x 2 = 4, with
#: slack for bus-occupancy serialization).
MIN_HIERARCHY_GAIN = 2.0


def test_hierarchy_levels_scale():
    start = time.perf_counter()
    figure = figure_hierarchy_scaling(elements=ELEMENTS)
    wall_s = time.perf_counter() - start

    by_shape = {(row["channels"], row["ranks"]): row for row in figure.rows}
    for shape, row in by_shape.items():
        assert (
            row["channel_parallel_makespan_ns"]
            <= row["rank_parallel_makespan_ns"]
            <= row["bank_only_makespan_ns"]
            <= row["serial_latency_ns"]
        ), f"per-level makespans not monotone for {shape}: {row}"

    single = by_shape[(1, 1)]
    largest = by_shape[(2, 2)]
    hierarchy_gain = (
        largest["total_speedup"] / largest["bank_speedup"]
    )
    assert largest["total_speedup"] > single["total_speedup"], (
        "adding channels/ranks did not increase the total speedup"
    )
    assert hierarchy_gain >= MIN_HIERARCHY_GAIN, (
        f"rank+channel levels only contribute {hierarchy_gain:.2f}x "
        f"(required {MIN_HIERARCHY_GAIN}x)"
    )

    payload = {
        "workload": "hierarchy-scaling (colorgrade8 map, one shard per bank)",
        "elements": ELEMENTS,
        "wall_clock_s": wall_s,
        "min_hierarchy_gain": MIN_HIERARCHY_GAIN,
        "hierarchy_gain": hierarchy_gain,
        "rows": figure.rows,
    }
    print("HIERARCHY_SCALING_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "HIERARCHY_SCALING_JSON",
            Path(__file__).resolve().parent / "hierarchy_scaling.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

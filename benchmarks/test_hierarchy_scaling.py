"""Benchmark: per-level makespans of hierarchical dispatch.

Runs the reference 256-entry LUT map through the hierarchical dispatcher
for growing device shapes and asserts the PR's acceptance criteria on the
makespan decomposition:

* per level, enabling more hierarchy never hurts —
  channel-parallel <= rank-parallel <= bank-only <= serial;
* rank- and channel-level parallelism genuinely help at scale — the
  2-channel x 2-rank device beats the single-rank module;
* wall-clock stays bounded — PR 4's fused single-pass execution and
  memoized analytic scheduling must keep the whole figure under
  ``MAX_WALL_CLOCK_S`` (PR 3 measured 2.63 s; the fused floor is a
  >= 5x improvement);
* fused dispatch beats the per-shard loop by ``MIN_FUSION_SPEEDUP`` on
  the largest device, with bit-identical outputs and identical
  makespans.

The numbers are emitted as JSON for the bench trajectory (stdout +
``benchmarks/hierarchy_scaling.json``, overridable via the
``HIERARCHY_SCALING_JSON`` environment variable); CI's perf-track job
folds them into ``BENCH_pr4.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.evaluation.figures import figure_hierarchy_scaling

ELEMENTS = 65536
#: The full hierarchy must beat banks alone by at least the rank x channel
#: product's worth of headroom on the largest device (2 x 2 = 4, with
#: slack for bus-occupancy serialization).
MIN_HIERARCHY_GAIN = 2.0
#: Whole-figure wall-clock budget: >= 5x under PR 3's recorded 2.63 s.
MAX_WALL_CLOCK_S = 0.53
#: Fused single-pass execution vs the per-shard loop, warm caches both
#: (so this isolates fusion itself — the memoized scheduling layers are
#: already active on both sides).
MIN_FUSION_SPEEDUP = 1.5


def _fusion_comparison() -> dict:
    """Time fused vs per-shard dispatch of the 64-shard colorgrade map."""
    from repro.api.luts import color_grade_lut
    from repro.api.session import PlutoSession
    from repro.controller.hierarchy import HierarchicalDispatcher
    from repro.core.designs import PlutoDesign
    from repro.core.engine import PlutoConfig, PlutoEngine

    session = PlutoSession()
    source = session.pluto_malloc(ELEMENTS, 8, "pixels")
    out = session.pluto_malloc(ELEMENTS, 8, "graded")
    session.api_pluto_map(color_grade_lut(), source, out)
    inputs = {"pixels": np.arange(ELEMENTS, dtype=np.uint64) % 256}
    engine = PlutoEngine(
        PlutoConfig(design=PlutoDesign.BSA, tfaw_fraction=1.0, channels=2, ranks=2)
    )

    timings = {}
    results = {}
    for label, fused in (("per_shard", False), ("fused", True)):
        dispatcher = HierarchicalDispatcher(engine, fused=fused)
        dispatcher.execute(session.calls, inputs)  # warm-up: caches, compiles
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            results[label] = dispatcher.execute(session.calls, inputs)
            best = min(best, time.perf_counter() - start)
        timings[label] = best

    fused, per_shard = results["fused"], results["per_shard"]
    assert fused.num_shards == per_shard.num_shards == 64
    assert np.array_equal(fused.outputs["graded"], per_shard.outputs["graded"])
    assert fused.makespan_ns == per_shard.makespan_ns
    assert fused.bank_only_makespan_ns == per_shard.bank_only_makespan_ns
    return {
        "shards": fused.num_shards,
        "per_shard_s": timings["per_shard"],
        "fused_s": timings["fused"],
        "fusion_speedup": timings["per_shard"] / max(timings["fused"], 1e-12),
        "min_fusion_speedup": MIN_FUSION_SPEEDUP,
    }


def test_hierarchy_levels_scale():
    start = time.perf_counter()
    figure = figure_hierarchy_scaling(elements=ELEMENTS)
    wall_s = time.perf_counter() - start

    by_shape = {(row["channels"], row["ranks"]): row for row in figure.rows}
    for shape, row in by_shape.items():
        assert (
            row["channel_parallel_makespan_ns"]
            <= row["rank_parallel_makespan_ns"]
            <= row["bank_only_makespan_ns"]
            <= row["serial_latency_ns"]
        ), f"per-level makespans not monotone for {shape}: {row}"

    single = by_shape[(1, 1)]
    largest = by_shape[(2, 2)]
    hierarchy_gain = (
        largest["total_speedup"] / largest["bank_speedup"]
    )
    assert largest["total_speedup"] > single["total_speedup"], (
        "adding channels/ranks did not increase the total speedup"
    )
    assert hierarchy_gain >= MIN_HIERARCHY_GAIN, (
        f"rank+channel levels only contribute {hierarchy_gain:.2f}x "
        f"(required {MIN_HIERARCHY_GAIN}x)"
    )

    fusion = _fusion_comparison()

    payload = {
        "workload": "hierarchy-scaling (colorgrade8 map, one shard per bank)",
        "elements": ELEMENTS,
        "wall_clock_s": wall_s,
        "max_wall_clock_s": MAX_WALL_CLOCK_S,
        "min_hierarchy_gain": MIN_HIERARCHY_GAIN,
        "hierarchy_gain": hierarchy_gain,
        "dispatch_fusion": fusion,
        "rows": figure.rows,
    }
    print("HIERARCHY_SCALING_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "HIERARCHY_SCALING_JSON",
            Path(__file__).resolve().parent / "hierarchy_scaling.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

    assert wall_s <= MAX_WALL_CLOCK_S, (
        f"hierarchy figure took {wall_s:.2f}s "
        f"(fused+memoized budget {MAX_WALL_CLOCK_S}s)"
    )
    assert fusion["fusion_speedup"] >= MIN_FUSION_SPEEDUP, (
        f"fused dispatch is only {fusion['fusion_speedup']:.2f}x faster than "
        f"the per-shard loop (required {MIN_FUSION_SPEEDUP}x)"
    )

"""Benchmark: observability must stay (nearly) free.

Two gates share this file (and the ``obs_overhead.json`` payload,
overridable via the ``OBS_OVERHEAD_JSON`` environment variable):

1. ``test_tracing_overhead_on_serving_path`` — the PR 10 ceiling:
   serving with tracing enabled may cost at most 5% wall-clock over
   serving with tracing disabled.  Interleaved rounds against one
   long-lived service (so loop/service setup, identical either way,
   stays out of the measurement): each round serves the same burst
   with tracing off then on, and the gate compares best-of-rounds
   (``timeit``-style — the minimum filters scheduler/GC hiccups that
   would otherwise dominate a ~4 ms burst) with the median ratio kept
   in the payload as a drift diagnostic.
2. ``test_energy_accounting_determinism`` — the per-request energy
   attribution is a pure function of the program structure: repeated
   serves report bit-identical energy/command numbers, and they match
   the command trace's own totals exactly.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

from repro.obs.metrics import request_accounting
from repro.obs.trace import enable_tracing, tracing_enabled
from repro.workloads.programs import workload_program

ELEMENTS = 4096
REQUESTS_PER_ROUND = 48
ROUNDS = 15
MAX_TRACING_OVERHEAD = 0.05


def _merge_payload(fields: dict) -> None:
    """Merge ``fields`` into the shared obs-overhead JSON payload."""
    output = Path(
        os.environ.get(
            "OBS_OVERHEAD_JSON",
            Path(__file__).resolve().parent / "obs_overhead.json",
        )
    )
    payload: dict = {}
    if output.exists():
        try:
            payload = json.loads(output.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload.update(fields)
    output.write_text(json.dumps(payload, indent=2) + "\n")


async def _serve_burst(program, requests: int) -> list:
    async with program.session.serve(
        max_queue=max(8, requests), max_batch=8
    ) as service:
        return list(
            await asyncio.gather(
                *(
                    service.submit(dict(program.inputs))
                    for _ in range(requests)
                )
            )
        )


async def _measure_interleaved(program) -> tuple[list[float], float, float, list]:
    """Serve interleaved off/on bursts against one long-lived service.

    Keeping the service (and the event loop) alive across rounds measures
    the steady-state serving path itself — service construction and loop
    startup are identical whether tracing is on or off, and at ~7 ms per
    round they would otherwise drown the signal in setup noise.
    """
    ratios: list[float] = []
    off_best = on_best = float("inf")
    served: list = []
    async with program.session.serve(
        max_queue=max(8, REQUESTS_PER_ROUND), max_batch=8
    ) as service:

        async def burst(requests: int) -> list:
            return list(
                await asyncio.gather(
                    *(
                        service.submit(dict(program.inputs))
                        for _ in range(requests)
                    )
                )
            )

        # Warm everything both paths share: compile caches, trace
        # templates, and (traced) the accounting memo + verify-span set.
        await burst(REQUESTS_PER_ROUND)
        enable_tracing(True)
        await burst(REQUESTS_PER_ROUND)
        enable_tracing(False)

        for _ in range(ROUNDS):
            enable_tracing(False)
            start = time.perf_counter()
            await burst(REQUESTS_PER_ROUND)
            off_s = (time.perf_counter() - start) / REQUESTS_PER_ROUND

            enable_tracing(True)
            start = time.perf_counter()
            # Results are deliberately NOT retained here: holding the
            # previous traced round's results would charge their teardown
            # (arrays, traces, spans) to the next traced burst only,
            # skewing the comparison against the untraced rounds.
            await burst(REQUESTS_PER_ROUND)
            on_s = (time.perf_counter() - start) / REQUESTS_PER_ROUND
            enable_tracing(False)

            off_best = min(off_best, off_s)
            on_best = min(on_best, on_s)
            ratios.append(on_s / max(off_s, 1e-12))

        # One untimed traced burst for the "did it actually trace" check.
        enable_tracing(True)
        served = await burst(REQUESTS_PER_ROUND)
        enable_tracing(False)
    return ratios, off_best, on_best, served


def test_tracing_overhead_on_serving_path():
    """Serving with tracing on stays within 5% of tracing off."""
    program = workload_program("image", elements=ELEMENTS, seed=0)
    assert not tracing_enabled()

    try:
        ratios, off_best, on_best, served = asyncio.run(
            _measure_interleaved(program)
        )
    finally:
        enable_tracing(False)

    # The traced rounds must actually have traced: every request carries
    # a span tree summing into its recorded turnaround.
    assert all(item.request_trace is not None for item in served)

    overhead = on_best / max(off_best, 1e-12) - 1.0
    payload = {
        "workload": "image",
        "elements": ELEMENTS,
        "requests_per_round": REQUESTS_PER_ROUND,
        "rounds": ROUNDS,
        "untraced_s": off_best,
        "traced_s": on_best,
        "overhead": overhead,
        "median_round_overhead": statistics.median(ratios) - 1.0,
        "max_overhead": MAX_TRACING_OVERHEAD,
    }
    print("OBS_OVERHEAD_JSON " + json.dumps(payload))
    _merge_payload({"tracing": payload})

    assert overhead <= MAX_TRACING_OVERHEAD, (
        f"tracing costs {100 * overhead:.1f}% over untraced serving "
        f"(allowed {100 * MAX_TRACING_OVERHEAD:.0f}%)"
    )


def test_energy_accounting_determinism():
    """Energy attribution is exact and repeatable, serve after serve."""
    program = workload_program("salsa20", elements=1024, seed=0)
    enable_tracing(True)
    try:
        first = asyncio.run(_serve_burst(program, 4))
        second = asyncio.run(_serve_burst(program, 4))
    finally:
        enable_tracing(False)

    reference = request_accounting(first[0].result.trace)
    deterministic = True
    for item in first + second:
        accounting = request_accounting(item.result.trace)
        if accounting != reference:
            deterministic = False
        assert item.request_trace is not None
        attributes = item.request_trace.attributes
        assert attributes["energy_pj"] == accounting["energy_pj"]
        assert (
            attributes["energy_pj"]
            == item.result.trace.total_energy_nj * 1000.0
        )
        assert attributes["dram_commands"] == accounting["dram_commands"]

    payload = {
        "workload": "salsa20",
        "requests": len(first) + len(second),
        "energy_pj": reference["energy_pj"],
        "dram_commands": reference["dram_commands"],
        "deterministic": deterministic,
    }
    print("OBS_ENERGY_JSON " + json.dumps(payload))
    _merge_payload({"energy_determinism": payload})

    assert deterministic, "energy attribution varied across identical serves"

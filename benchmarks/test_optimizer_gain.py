"""Benchmark: measured gains of the program optimizer.

Runs every registry-family pipeline unoptimized and optimized
(:func:`repro.evaluation.figures.figure_optimizer_gains`) and asserts the
PR's acceptance criteria on the LUT-chain-heavy workloads:

* executed ``ROW_SWEEP`` commands drop by at least
  ``MIN_SWEEP_REDUCTION`` (30 %) on the image and Salsa20 pipelines —
  the static report and the executed trace must agree;
* the bank-parallel scheduler makespan drops measurably
  (``MIN_MAKESPAN_REDUCTION``) on those same workloads;
* outputs are bit-identical (the figure itself raises otherwise), and a
  functional-backend spot check reproduces the optimized outputs on the
  row-sweep oracle path.

The numbers are emitted as JSON (stdout + ``benchmarks/optimizer_gain.json``,
overridable via ``OPTIMIZER_GAIN_JSON``); CI's perf-track job folds them
into ``BENCH_pr5.json`` and gates on the floors.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.evaluation.figures import figure_optimizer_gains

#: Row-sweep reduction floor on the LUT-chain-heavy pipelines.
MIN_SWEEP_REDUCTION = 0.30
#: Scheduler-makespan reduction floor on the same pipelines.
MIN_MAKESPAN_REDUCTION = 0.20
#: The workloads the floors are asserted on (chain-heavy by design).
GATED_WORKLOADS = ("image", "salsa20")


def _functional_spot_check() -> dict:
    """The optimized image pipeline on the functional (oracle) backend."""
    from repro.workloads.programs import workload_program

    program = workload_program("image", elements=256)
    session = program.session
    session.backend = "functional"
    plain = session.run(program.inputs)
    optimized = session.run(program.inputs, optimize=True)
    identical = all(
        np.array_equal(plain.outputs[name], optimized.outputs[name])
        for name in plain.outputs
    )
    assert identical, "functional-backend optimized outputs diverged"
    return {
        "backend": "functional",
        "elements": 256,
        "bit_identical": identical,
        "lut_queries": [plain.lut_queries, optimized.lut_queries],
    }


def test_optimizer_gains_hold():
    start = time.perf_counter()
    figure = figure_optimizer_gains()
    wall_s = time.perf_counter() - start
    by_name = {row["workload"]: row for row in figure.rows}

    for name in GATED_WORKLOADS:
        row = by_name[name]
        assert row["sweep_reduction"] >= MIN_SWEEP_REDUCTION, (
            f"{name}: row sweeps only fell {100 * row['sweep_reduction']:.0f}% "
            f"(floor {100 * MIN_SWEEP_REDUCTION:.0f}%)"
        )
        assert row["makespan_reduction"] >= MIN_MAKESPAN_REDUCTION, (
            f"{name}: makespan only fell {100 * row['makespan_reduction']:.0f}% "
            f"(floor {100 * MIN_MAKESPAN_REDUCTION:.0f}%)"
        )
    for row in figure.rows:
        # Optimization never makes any family worse.
        assert row["row_sweeps_after"] <= row["row_sweeps_before"]
        assert row["makespan_after_ns"] <= row["makespan_before_ns"] * (1 + 1e-9)

    oracle = _functional_spot_check()
    gated = {name: by_name[name]["sweep_reduction"] for name in GATED_WORKLOADS}
    payload = {
        "workload": "optimizer-gain (registry pipelines, shards=8, pLUTo-BSA)",
        "min_sweep_reduction": MIN_SWEEP_REDUCTION,
        "min_makespan_reduction": MIN_MAKESPAN_REDUCTION,
        "gated_workloads": list(GATED_WORKLOADS),
        "sweep_reduction": min(gated.values()),
        "makespan_reduction": min(
            by_name[name]["makespan_reduction"] for name in GATED_WORKLOADS
        ),
        "wall_clock_s": wall_s,
        "functional_spot_check": oracle,
        "rows": figure.rows,
    }
    print("OPTIMIZER_GAIN_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "OPTIMIZER_GAIN_JSON",
            Path(__file__).resolve().parent / "optimizer_gain.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

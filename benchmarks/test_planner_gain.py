"""Benchmark: the cost-based auto-planner against the static grid.

Runs every registry-family pipeline through
:func:`repro.evaluation.figures.figure_auto_planner` — ``plan="auto"``
against the full static shard x optimizer grid on pLUTo-BSA — and
asserts the PR's acceptance criteria:

* the auto-planned makespan is within ``MAX_AUTO_VS_BEST`` (5 %) of the
  best static configuration on **every** family;
* auto strictly beats the naive default (one shard, no optimizer) on at
  least ``MIN_FAMILIES_BEATING_DEFAULT`` of the six families;
* the planner's predicted makespan matches the measured makespan
  exactly (the analytic model prices candidates from the very trace
  templates execution charges);
* outputs are bit-identical (the figure itself raises otherwise), and
  re-planning an equal-structure program is a memo hit.

The numbers are emitted as JSON (stdout + ``benchmarks/planner_gain.json``,
overridable via ``PLANNER_GAIN_JSON``); CI's perf-track job folds them
into ``BENCH_pr8.json`` and gates on the floors.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.evaluation.figures import figure_auto_planner

#: Auto may lose at most this fraction to the best static configuration.
MAX_AUTO_VS_BEST = 0.05
#: Auto must strictly beat the naive default on at least this many of
#: the six registry families.
MIN_FAMILIES_BEATING_DEFAULT = 4


def _memo_hit_check() -> dict:
    """Re-planning an equal-structure program must be a pure cache hit."""
    from repro.plan import clear_planner_cache, plan_program, planner_cache_stats
    from repro.workloads.programs import workload_program

    clear_planner_cache()
    first = workload_program("image", elements=512, seed=0)
    second = workload_program("image", elements=512, seed=1)
    cold = plan_program(first.session.calls)
    warm = plan_program(second.session.calls)
    stats = planner_cache_stats()
    assert not cold.report.cached and warm.report.cached
    assert stats["hits"] == 1 and stats["misses"] == 1
    return {
        "plan": warm.plan.label(),
        "hits": stats["hits"],
        "misses": stats["misses"],
    }


def test_auto_planner_gains_hold():
    start = time.perf_counter()
    figure = figure_auto_planner()
    wall_s = time.perf_counter() - start

    beats_default = 0
    worst_vs_best = 0.0
    for row in figure.rows:
        name = row["workload"]
        assert row["auto_vs_best"] <= 1.0 + MAX_AUTO_VS_BEST, (
            f"{name}: auto-planned makespan is "
            f"{100 * (row['auto_vs_best'] - 1):.1f}% worse than the best "
            f"static configuration (allowed {100 * MAX_AUTO_VS_BEST:.0f}%)"
        )
        assert row["prediction_error"] == 0.0, (
            f"{name}: planner predicted-vs-measured error is "
            f"{row['prediction_error']} (must be exact)"
        )
        worst_vs_best = max(worst_vs_best, row["auto_vs_best"])
        if row["auto_makespan_ns"] < row["default_makespan_ns"]:
            beats_default += 1
    assert beats_default >= MIN_FAMILIES_BEATING_DEFAULT, (
        f"auto beats the naive default on only {beats_default} of "
        f"{len(figure.rows)} families "
        f"(required {MIN_FAMILIES_BEATING_DEFAULT})"
    )

    memo = _memo_hit_check()
    payload = {
        "workload": "auto-planner (registry pipelines, pLUTo-BSA)",
        "max_auto_vs_best": MAX_AUTO_VS_BEST,
        "min_families_beating_default": MIN_FAMILIES_BEATING_DEFAULT,
        "worst_auto_vs_best": worst_vs_best,
        "families_beating_default": beats_default,
        "families": len(figure.rows),
        "max_prediction_error": max(
            row["prediction_error"] for row in figure.rows
        ),
        "memo_hit_check": memo,
        "wall_clock_s": wall_s,
        "rows": figure.rows,
    }
    print("PLANNER_GAIN_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "PLANNER_GAIN_JSON",
            Path(__file__).resolve().parent / "planner_gain.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

"""Benchmark: merge/makespan throughput, event-driven vs memoized+analytic.

Times the three ways the simulator can answer "what is the makespan of
these per-bank command streams":

* the reference event-driven :meth:`CommandScheduler.merge_streams`
  (replays every activation through the Python scheduling loop),
* the memoized path used by the dispatchers
  (:func:`repro.controller.dispatch.merged_makespan_ns` — structural
  signature + cache, bit-identical results),
* the closed-form homogeneous Row-Sweep model
  (:func:`repro.dram.analytic.homogeneous_sweep_makespan_ns` — pure
  tRRD/tFAW arithmetic, no events at all).

Asserts the memoized path answers repeat queries at least
``MIN_SPEEDUP`` times faster than the event-driven merge and emits the
numbers as JSON for the bench trajectory (stdout +
``benchmarks/scheduler_speed.json``, overridable via the
``SCHEDULER_SPEED_JSON`` environment variable); CI's perf-track job
folds them into ``BENCH_pr4.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.controller.dispatch import (
    merged_makespan_ns,
    rank_scheduler,
    sweep_act_interval_ns,
)
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.analytic import clear_merge_cache, homogeneous_sweep_makespan_ns
from repro.dram.commands import Command, CommandType

#: One LUT load + one Row Sweep per bank over a 128-entry LUT.
ROWS = 128
BANKS = 16
#: Repeat makespan queries of one warm structure (the serving pattern).
QUERIES = 200
MIN_SPEEDUP = 25.0


def _streams():
    return [
        [
            Command(CommandType.LISA_RBM, bank=bank, rows=ROWS),
            Command(CommandType.ROW_SWEEP, bank=bank, rows=ROWS),
        ]
        for bank in range(BANKS)
    ]


def test_memoized_scheduling_is_faster():
    engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0))
    streams = _streams()

    # Reference: every query replays the event-driven merge.
    reference = rank_scheduler(engine).merge_streams(streams)
    event_runs = 3
    start = time.perf_counter()
    for _ in range(event_runs):
        rank_scheduler(engine).merge_streams(streams)
    event_s = (time.perf_counter() - start) / event_runs

    # Memoized: the first query computes (exact fast merge), repeats hit
    # the structural-signature cache.
    clear_merge_cache()
    assert merged_makespan_ns(streams, engine) == reference
    start = time.perf_counter()
    for _ in range(QUERIES):
        merged_makespan_ns(streams, engine)
    memoized_s = (time.perf_counter() - start) / QUERIES

    # Analytic: the closed-form homogeneous model, no events at all.
    gap = sweep_act_interval_ns(engine)
    timing = engine.timing.with_tfaw_fraction(engine.config.tfaw_fraction)
    analytic = homogeneous_sweep_makespan_ns(BANKS, 2 * ROWS, gap, timing)
    assert analytic == pytest.approx(reference, rel=1e-9)
    start = time.perf_counter()
    for _ in range(QUERIES):
        homogeneous_sweep_makespan_ns(BANKS, 2 * ROWS, gap, timing)
    analytic_s = (time.perf_counter() - start) / QUERIES

    memoized_speedup = event_s / max(memoized_s, 1e-12)
    analytic_speedup = event_s / max(analytic_s, 1e-12)
    payload = {
        "workload": f"{BANKS} banks x (LUT load + Row Sweep) over {ROWS} rows",
        "streams": BANKS,
        "activations": BANKS * 2 * ROWS,
        "event_driven_s_per_merge": event_s,
        "memoized_s_per_query": memoized_s,
        "analytic_s_per_query": analytic_s,
        "event_driven_merges_per_s": 1.0 / max(event_s, 1e-12),
        "memoized_queries_per_s": 1.0 / max(memoized_s, 1e-12),
        "analytic_queries_per_s": 1.0 / max(analytic_s, 1e-12),
        "memoized_speedup": memoized_speedup,
        "analytic_speedup": analytic_speedup,
        # The asserted floor, recorded so the perf-track CI gate reads
        # the same threshold this test enforces.
        "min_speedup": MIN_SPEEDUP,
    }
    print("SCHEDULER_SPEED_JSON " + json.dumps(payload))
    output = Path(
        os.environ.get(
            "SCHEDULER_SPEED_JSON",
            Path(__file__).resolve().parent / "scheduler_speed.json",
        )
    )
    output.write_text(json.dumps(payload, indent=2) + "\n")

    assert memoized_speedup >= MIN_SPEEDUP, (
        f"memoized scheduling is only {memoized_speedup:.1f}x faster than "
        f"the event-driven merge (required {MIN_SPEEDUP}x)"
    )

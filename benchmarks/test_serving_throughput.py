"""Benchmark: multi-worker serving throughput and warm-start floors.

Three gates share this file (and the ``serving_throughput.json``
payload, overridable via the ``SERVING_THROUGHPUT_JSON`` environment
variable):

1. ``test_sustained_mixed_traffic_throughput`` — sustained mixed
   traffic over all six registry families through a
   :class:`~repro.serve.pool.PlutoWorkerPool` must hold the aggregate
   requests/sec floor, and every result must be bit-identical (CRC32
   digests) to single-process ``session.run``.
2. ``test_worker_scaling_is_near_linear`` — the affinity router must
   spread the six families well enough that the *modelled* device
   throughput (summed per-request DRAM makespan per worker) scales at
   least 2x from 1 worker to 4.  The modelled metric is deterministic,
   so the floor holds on single-core CI runners where wall-clock cannot
   scale; measured wall-clock ratios are recorded alongside (and gated
   only when the machine actually has 4 cores).
3. ``test_warm_start_latency_floors`` — a genuinely cold worker process
   (spawn start method) warm-starting from a shared artifact store must
   serve its first request within 2x of a hot request, while a cold
   worker without the store pays at least 10x more than the warm one.

Scale the sustained-traffic volume with
``SERVING_REQUESTS_PER_FAMILY`` (default 32; the worker-scaling figure
in ``run_all_experiments.py`` pushes far higher).
"""

from __future__ import annotations

import json
import os
import statistics
import time
import zlib
from pathlib import Path

import numpy as np

from repro.serve import PlutoWorkerPool, fan_out
from repro.serve.store import SharedArtifactStore
from repro.workloads.programs import (
    optimizer_workload_programs,
    workload_program,
)

ELEMENTS = 256
REQUESTS_PER_FAMILY = int(os.environ.get("SERVING_REQUESTS_PER_FAMILY", "32"))

#: Aggregate pool throughput floor (requests/second, 6-family mix on a
#: 2-worker pool).  A single CI core measures ~1500-2000 req/s; the
#: floor leaves an order of magnitude for slower machines.
MIN_REQUESTS_PER_SEC = 150.0

#: Modelled device-throughput scaling floor at 4 workers vs 1 — the
#: PR 9 acceptance gate.  Deterministic: derived from per-request
#: modelled DRAM makespans and the router's actual placement.
MIN_MODELLED_SCALING_4W = 2.0

#: Warm-start latency floors: a warm-started worker's first request
#: must sit within 2x of a hot request, and a store-less cold worker's
#: first request must cost at least 10x the warm-started one.
MAX_WARM_VS_HOT = 2.0
MIN_COLD_VS_WARM = 10.0

#: Spawned-pool trials for the latency medians (first-request latency
#: exists once per process, so the median spans processes).
LATENCY_TRIALS = 3


def _merge_payload(fields: dict) -> None:
    """Read-modify-write the shared JSON payload (tests must not clobber)."""
    output = Path(
        os.environ.get(
            "SERVING_THROUGHPUT_JSON",
            Path(__file__).resolve().parent / "serving_throughput.json",
        )
    )
    payload: dict = {}
    if output.exists():
        try:
            payload = json.loads(output.read_text())
        except (json.JSONDecodeError, OSError):
            payload = {}
    payload.update(fields)
    output.write_text(json.dumps(payload, indent=2) + "\n")


def _traffic(families, per_family: int):
    """An interleaved mixed-structure request stream."""
    return [
        (family.session, family.inputs)
        for _ in range(per_family)
        for family in families
    ]


def _reference_digests(families) -> dict[str, dict[str, int]]:
    return {
        family.name: {
            name: zlib.crc32(np.asarray(array).tobytes())
            for name, array in family.session.run(family.inputs).outputs.items()
        }
        for family in families
    }


def _run_pool(families, workers: int, per_family: int):
    """(wall seconds, results, pool) for one sustained-traffic run."""
    jobs = _traffic(families, per_family)
    with PlutoWorkerPool(workers=workers, chunk_size=32) as pool:
        assert pool.wait_ready(120.0)
        start = time.perf_counter()
        results = fan_out(pool, jobs, return_outputs=False)
        wall_s = time.perf_counter() - start
    return wall_s, results, pool


def test_sustained_mixed_traffic_throughput():
    families = optimizer_workload_programs(ELEMENTS, 0)
    references = _reference_digests(families)
    wall_s, results, pool = _run_pool(families, 2, REQUESTS_PER_FAMILY)

    # Bit-identity: every pooled result matches single-process execution.
    jobs = _traffic(families, REQUESTS_PER_FAMILY)
    by_session = {
        id(family.session): family.name for family in families
    }
    for (session, _), result in zip(jobs, results):
        assert result.digests == references[by_session[id(session)]]

    requests_per_sec = len(results) / wall_s
    summary = pool.stats.summary()
    payload = {
        "families": len(families),
        "requests": len(results),
        "wall_clock_s": wall_s,
        "requests_per_sec": requests_per_sec,
        "min_requests_per_sec": MIN_REQUESTS_PER_SEC,
        "latency": summary["latency"],
        "per_worker_served": summary["per_worker_served"],
        "bit_identical": True,
    }
    print("SERVING_THROUGHPUT_JSON " + json.dumps(payload))
    _merge_payload({"sustained": payload})

    assert requests_per_sec >= MIN_REQUESTS_PER_SEC, (
        f"pool served only {requests_per_sec:.0f} requests/sec "
        f"(floor {MIN_REQUESTS_PER_SEC})"
    )


def test_worker_scaling_is_near_linear():
    families = optimizer_workload_programs(ELEMENTS, 0)
    rows = {}
    for workers in (1, 2, 4):
        wall_s, results, pool = _run_pool(families, workers, REQUESTS_PER_FAMILY)
        busy_ns = pool.stats.per_worker_busy_ns
        rows[workers] = {
            "wall_clock_s": wall_s,
            "requests": len(results),
            "per_worker_busy_ns": list(busy_ns),
            "modelled_scaling": sum(busy_ns) / max(busy_ns),
            "programs_per_worker": list(pool._programs_per_worker),
        }
    modelled_4w = rows[4]["modelled_scaling"]
    wall_ratio_4w = rows[1]["wall_clock_s"] / rows[4]["wall_clock_s"]
    cores = os.cpu_count() or 1
    payload = {
        "rows": rows,
        "modelled_scaling_4w": modelled_4w,
        "min_modelled_scaling_4w": MIN_MODELLED_SCALING_4W,
        "wall_clock_ratio_4w": wall_ratio_4w,
        "cpu_cores": cores,
    }
    print("WORKER_SCALING_JSON " + json.dumps(payload))
    _merge_payload({"scaling": payload})

    assert modelled_4w >= MIN_MODELLED_SCALING_4W, (
        f"modelled 4-worker scaling {modelled_4w:.2f}x fell below the "
        f"floor {MIN_MODELLED_SCALING_4W}x"
    )
    if cores >= 4:
        # Wall-clock parallelism is only observable with real cores.
        assert wall_ratio_4w >= 1.3, (
            f"4-worker wall-clock speedup {wall_ratio_4w:.2f}x on a "
            f"{cores}-core machine (floor 1.3x)"
        )


def _first_and_second_execute_s(family, store_path):
    """First- and subsequent-request execute latency of a spawned worker."""
    with PlutoWorkerPool(
        workers=1, store_path=store_path, start_method="spawn"
    ) as pool:
        assert pool.wait_ready(120.0)
        first = pool.submit(
            family.session, family.inputs, return_outputs=False
        ).result(120.0)
        later = [
            pool.submit(
                family.session, family.inputs, return_outputs=False
            ).result(120.0)
            for _ in range(3)
        ]
    return first.execute_s, statistics.median(r.execute_s for r in later)


def test_warm_start_latency_floors(tmp_path):
    family = workload_program("crc", elements=ELEMENTS, seed=0)
    store_path = str(tmp_path / "store")
    SharedArtifactStore(store_path).export(family.session.calls)

    cold_firsts, warm_firsts, hots = [], [], []
    for _ in range(LATENCY_TRIALS):
        cold_first, _ = _first_and_second_execute_s(family, None)
        warm_first, hot = _first_and_second_execute_s(family, store_path)
        cold_firsts.append(cold_first)
        warm_firsts.append(warm_first)
        hots.append(hot)
    cold_first = statistics.median(cold_firsts)
    warm_first = statistics.median(warm_firsts)
    hot = statistics.median(hots)

    payload = {
        "cold_first_s": cold_first,
        "warm_first_s": warm_first,
        "hot_s": hot,
        "warm_vs_hot": warm_first / hot,
        "cold_vs_warm": cold_first / warm_first,
        "max_warm_vs_hot": MAX_WARM_VS_HOT,
        "min_cold_vs_warm": MIN_COLD_VS_WARM,
        "trials": LATENCY_TRIALS,
    }
    print("WARM_START_JSON " + json.dumps(payload))
    _merge_payload({"warm_start": payload})

    assert warm_first <= MAX_WARM_VS_HOT * hot, (
        f"warm-started first request {warm_first * 1e3:.3f}ms exceeds "
        f"{MAX_WARM_VS_HOT}x the hot request {hot * 1e3:.3f}ms"
    )
    assert cold_first >= MIN_COLD_VS_WARM * warm_first, (
        f"cold first request {cold_first * 1e3:.3f}ms is only "
        f"{cold_first / warm_first:.1f}x the warm-started one "
        f"{warm_first * 1e3:.3f}ms (expected >= {MIN_COLD_VS_WARM}x)"
    )

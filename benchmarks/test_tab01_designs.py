"""Benchmark: reproduce Table 1 (design comparison)."""

from repro.evaluation.tables import table01_design_comparison


def test_tab01_design_comparison(benchmark):
    result = benchmark(table01_design_comparison, 256)
    rows = {row["design"]: row for row in result.rows}
    assert rows["pLUTo-GMC"]["query_latency_ns"] < rows["pLUTo-BSA"]["query_latency_ns"]
    assert rows["pLUTo-GSA"]["query_latency_ns"] > rows["pLUTo-BSA"]["query_latency_ns"]
    assert rows["pLUTo-GMC"]["query_energy_nj"] < rows["pLUTo-BSA"]["query_energy_nj"]
    assert rows["pLUTo-GSA"]["lut_load_per_query"]

"""Benchmark: reproduce Table 5 (area breakdown)."""

import pytest

from repro.evaluation.tables import table05_area_breakdown


def test_tab05_area_breakdown(benchmark):
    result = benchmark(table05_area_breakdown)
    overheads = {row["configuration"]: row["Overhead"] for row in result.rows}
    # Paper: +10.2 % (GSA), +16.7 % (BSA), +23.1 % (GMC).
    assert overheads["pLUTo-GSA"] == pytest.approx(0.102, abs=0.01)
    assert overheads["pLUTo-BSA"] == pytest.approx(0.167, abs=0.01)
    assert overheads["pLUTo-GMC"] == pytest.approx(0.231, abs=0.01)

"""Benchmark: reproduce Table 6 (comparison against prior PuM designs)."""

from repro.evaluation.tables import table06_prior_pum_comparison


def test_tab06_prior_pum_comparison(benchmark):
    result = benchmark(table06_prior_pum_comparison)
    by_op = {row["operation"]: row for row in result.rows}
    # pLUTo matches or beats prior PuM designs on bitwise logic and clearly
    # wins complex operations; only pLUTo supports arbitrary LUT queries.
    assert by_op["XOR"]["pLUTo-BSA"] < by_op["XOR"]["Ambit"]
    assert by_op["4-bit Multiplication"]["pLUTo-BSA"] < by_op["4-bit Multiplication"]["SIMDRAM"]
    assert by_op["4-bit Bit Counting"]["pLUTo-BSA"] < by_op["4-bit Bit Counting"]["SIMDRAM"]
    assert by_op["8-bit Exponentiation"]["Ambit"] is None
    assert by_op["8-bit Exponentiation"]["pLUTo-BSA"] is not None
    # The paper notes 4-bit addition is *not* a pLUTo win over every design.
    assert by_op["4-bit Addition"]["pLUTo-BSA"] > by_op["4-bit Addition"]["LAcc"]

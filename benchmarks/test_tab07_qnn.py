"""Benchmark: reproduce Table 7 (quantized LeNet-5 inference)."""

from repro.evaluation.tables import table07_qnn_inference


def test_tab07_qnn_inference(benchmark):
    result = benchmark(table07_qnn_inference)
    for bits in (1, 4):
        rows = {row["system"]: row for row in result.rows if row["bits"] == bits}
        pluto = rows["pLUTo-BSA"]
        # pLUTo-BSA is the fastest and most energy-efficient system for both
        # quantization levels (paper: 10-30x CPU, 2-7x GPU, 6-19x FPGA).
        for system in ("CPU", "GPU", "FPGA"):
            assert pluto["time_us"] < rows[system]["time_us"]
            assert pluto["energy_mj"] < rows[system]["energy_mj"]

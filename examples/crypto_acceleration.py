"""Cryptography example: Salsa20, VMPC, and CRC-32 on pLUTo.

Encrypts packets with the from-scratch Salsa20 and VMPC implementations,
verifies that the LUT-decomposed variants produce identical ciphertext,
computes packet CRCs, and prints the modelled speedups of the three pLUTo
designs over the CPU baseline for each workload.

With ``--optimize`` each cipher family's recorded pipeline (CRC byte-table
chain, Salsa20 add-rotate-xor lane, VMPC nested substitutions) also runs
through the program optimizer (:mod:`repro.opt`), printing the
:class:`~repro.opt.report.OptimizationReport` and verifying bit-identical
ciphertext.

Run with:  python examples/crypto_acceleration.py [--optimize]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import CPU_XEON_5118, ProcessorBaseline
from repro.core import PlutoConfig, PlutoDesign, PlutoEngine
from repro.utils.units import format_time
from repro.workloads import CrcWorkload, Salsa20Workload, VmpcWorkload


def run_optimized_pipelines(engine: PlutoEngine) -> None:
    """Run the recorded crypto pipelines through the pass pipeline."""
    from repro.workloads.programs import workload_program

    for name in ("crc", "salsa20", "vmpc"):
        program = workload_program(name, elements=8192)
        print(f"--- {program.family} pipeline, optimized ---")
        print(f"({program.description})")
        plain = program.session.run(program.inputs, engine=engine)
        optimized = program.session.run(
            program.inputs, engine=engine, optimize=True
        )
        for output in plain.outputs:
            assert np.array_equal(
                plain.outputs[output], optimized.outputs[output]
            ), output
        print(optimized.optimization.summary())
        print(f"modelled latency: {format_time(plain.latency_ns)} -> "
              f"{format_time(optimized.latency_ns)} "
              f"({plain.latency_ns / optimized.latency_ns:.2f}x), "
              "outputs bit-identical")
        print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--optimize", action="store_true",
                        help="also run each family's recorded pipeline "
                             "through the program optimizer")
    arguments = parser.parse_args()
    cpu = ProcessorBaseline(CPU_XEON_5118)
    workloads = [Salsa20Workload(), VmpcWorkload(), CrcWorkload(32)]

    for workload in workloads:
        print(f"--- {workload.name} ---")
        data = workload.generate_input(1024, seed=7)
        reference = workload.reference(data)
        via_luts = workload.lut_reference(data)
        assert np.array_equal(reference, via_luts), "LUT decomposition mismatch"
        if workload.name != "CRC-32":
            # Stream ciphers are involutions: decrypting restores the input.
            assert np.array_equal(workload.reference(reference), data)
        print(f"verified {data.size} bytes through the LUT decomposition")

        recipe = workload.recipe
        elements = workload.default_elements
        cpu_cost = cpu.evaluate(recipe, elements)
        print(f"CPU latency for {elements} bytes: {format_time(cpu_cost.latency_ns)}")
        for design in (PlutoDesign.GSA, PlutoDesign.BSA, PlutoDesign.GMC):
            engine = PlutoEngine(PlutoConfig(design=design))
            report = engine.execute(recipe, elements)
            total = report.total_latency_ns + recipe.serial_fraction * cpu_cost.latency_ns
            print(f"  {design.display_name:10s}: {format_time(total)}"
                  f"  ({cpu_cost.latency_ns / total:6.0f}x over CPU)")
        print()

    if arguments.optimize:
        run_optimized_pipelines(PlutoEngine(PlutoConfig(design=PlutoDesign.BSA)))


if __name__ == "__main__":
    main()

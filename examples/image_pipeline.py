"""Image-processing example: in-DRAM binarization and colour grading.

Generates a synthetic photograph-like image (the paper evaluates a
936,000-pixel, 3-channel image), runs the ImgBin and ColorGrade workloads
functionally through a pLUTo-enabled subarray, verifies the outputs against
the host references, and compares the modelled pLUTo execution time and
energy against the CPU and GPU baselines.

With ``--optimize`` the example additionally records the whole pipeline
(grade -> threshold -> invert) as one API program and runs it through the
program optimizer (:mod:`repro.opt`): the three chained 256-entry maps
fuse into a single composed LUT query with bit-identical outputs, and the
:class:`~repro.opt.report.OptimizationReport` is printed.

Run with:  python examples/image_pipeline.py [--pixels N] [--optimize]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import CPU_XEON_5118, GPU_RTX_3080TI, ProcessorBaseline
from repro.core import PlutoConfig, PlutoDesign, PlutoEngine
from repro.utils.units import format_energy, format_time
from repro.workloads import ColorGrading, ImageBinarization


def run_workload(workload, elements: int, engine: PlutoEngine) -> None:
    print(f"--- {workload.name} ---")
    # Functional check on a row-sized slice through the real LUT-query path.
    data = workload.generate_input(min(elements, 4096), seed=1)
    subarray = engine.create_subarray(workload._lut)  # noqa: SLF001 - example introspection
    sample = data[: subarray.elements_per_query()]
    in_dram = subarray.query_indices(sample.astype(np.uint64))
    expected = workload.reference(sample)
    assert np.array_equal(in_dram, expected), "in-DRAM result differs from reference"
    print(f"functional check  : {sample.size} pixels match the host reference")

    # Cost comparison at the full image size.
    recipe = workload.recipe
    report = engine.execute(recipe, elements)
    cpu = ProcessorBaseline(CPU_XEON_5118).evaluate(recipe, elements)
    gpu = ProcessorBaseline(GPU_RTX_3080TI).evaluate(recipe, elements)
    print(f"pLUTo-BSA latency : {format_time(report.total_latency_ns)}"
          f"  energy {format_energy(report.total_energy_nj)}")
    print(f"CPU latency       : {format_time(cpu.latency_ns)}"
          f"  energy {format_energy(cpu.energy_nj)}")
    print(f"GPU latency       : {format_time(gpu.latency_ns)}"
          f"  energy {format_energy(gpu.energy_nj)}")
    print(f"speedup over CPU  : {cpu.latency_ns / report.total_latency_ns:.0f}x, "
          f"energy saving {cpu.energy_nj / report.total_energy_nj:.0f}x")
    print()


def run_optimized_pipeline(engine: PlutoEngine) -> None:
    """Record the full image pipeline and show the optimizer's savings."""
    from repro.workloads.programs import workload_program

    print("--- optimized pipeline (grade -> threshold -> invert) ---")
    program = workload_program("image", elements=16384)
    plain = program.session.run(program.inputs, engine=engine)
    optimized = program.session.run(program.inputs, engine=engine, optimize=True)
    for name in plain.outputs:
        assert np.array_equal(plain.outputs[name], optimized.outputs[name]), name
    print(optimized.optimization.summary())
    print(f"modelled latency  : {format_time(plain.latency_ns)} -> "
          f"{format_time(optimized.latency_ns)} "
          f"({plain.latency_ns / optimized.latency_ns:.2f}x)")
    print(f"outputs           : bit-identical across {plain.outputs['inverted'].size} "
          "pixels")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pixels", type=int, default=936_000,
                        help="number of pixels (3 channel values each)")
    parser.add_argument("--optimize", action="store_true",
                        help="also run the recorded pipeline through the "
                             "program optimizer and print its report")
    arguments = parser.parse_args()
    elements = arguments.pixels * 3

    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    run_workload(ImageBinarization(), elements, engine)
    run_workload(ColorGrading(), elements, engine)
    if arguments.optimize:
        run_optimized_pipeline(engine)


if __name__ == "__main__":
    main()

"""Image-processing example: in-DRAM binarization and colour grading.

Generates a synthetic photograph-like image (the paper evaluates a
936,000-pixel, 3-channel image), runs the ImgBin and ColorGrade workloads
functionally through a pLUTo-enabled subarray, verifies the outputs against
the host references, and compares the modelled pLUTo execution time and
energy against the CPU and GPU baselines.

Run with:  python examples/image_pipeline.py [--pixels N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import CPU_XEON_5118, GPU_RTX_3080TI, ProcessorBaseline
from repro.core import PlutoConfig, PlutoDesign, PlutoEngine
from repro.utils.units import format_energy, format_time
from repro.workloads import ColorGrading, ImageBinarization


def run_workload(workload, elements: int, engine: PlutoEngine) -> None:
    print(f"--- {workload.name} ---")
    # Functional check on a row-sized slice through the real LUT-query path.
    data = workload.generate_input(min(elements, 4096), seed=1)
    subarray = engine.create_subarray(workload._lut)  # noqa: SLF001 - example introspection
    sample = data[: subarray.elements_per_query()]
    in_dram = subarray.query_indices(sample.astype(np.uint64))
    expected = workload.reference(sample)
    assert np.array_equal(in_dram, expected), "in-DRAM result differs from reference"
    print(f"functional check  : {sample.size} pixels match the host reference")

    # Cost comparison at the full image size.
    recipe = workload.recipe
    report = engine.execute(recipe, elements)
    cpu = ProcessorBaseline(CPU_XEON_5118).evaluate(recipe, elements)
    gpu = ProcessorBaseline(GPU_RTX_3080TI).evaluate(recipe, elements)
    print(f"pLUTo-BSA latency : {format_time(report.total_latency_ns)}"
          f"  energy {format_energy(report.total_energy_nj)}")
    print(f"CPU latency       : {format_time(cpu.latency_ns)}"
          f"  energy {format_energy(cpu.energy_nj)}")
    print(f"GPU latency       : {format_time(gpu.latency_ns)}"
          f"  energy {format_energy(gpu.energy_nj)}")
    print(f"speedup over CPU  : {cpu.latency_ns / report.total_latency_ns:.0f}x, "
          f"energy saving {cpu.energy_nj / report.total_energy_nj:.0f}x")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--pixels", type=int, default=936_000,
                        help="number of pixels (3 channel values each)")
    arguments = parser.parse_args()
    elements = arguments.pixels * 3

    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    run_workload(ImageBinarization(), elements, engine)
    run_workload(ColorGrading(), elements, engine)


if __name__ == "__main__":
    main()

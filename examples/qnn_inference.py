"""Quantized neural network example (the Table 7 case study).

Builds 1-bit and 4-bit quantized LeNet-5 networks, calibrates them on the
synthetic MNIST-like dataset, reports their classification accuracy, and
prints the Table 7 reproduction: inference time and energy on the CPU, GPU,
FPGA, and pLUTo-BSA.

Run with:  python examples/qnn_inference.py
"""

from __future__ import annotations

from repro.evaluation import render_result, table07_qnn_inference
from repro.nn import LeNet5, synthetic_mnist


def main() -> None:
    train_images, train_labels = synthetic_mnist(300, seed=11)
    test_images, test_labels = synthetic_mnist(100, seed=12)

    for bits in (1, 4):
        network = LeNet5(weight_bits=bits)
        network.calibrate(train_images, train_labels)
        accuracy = network.accuracy(test_images, test_labels)
        print(f"{bits}-bit LeNet-5: {network.macs_per_image} MACs/inference, "
              f"synthetic-MNIST accuracy {accuracy:.0%}")
    print()
    print(render_result(table07_qnn_inference()))


if __name__ == "__main__":
    main()

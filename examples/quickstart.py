"""Quickstart: the paper's Figure 5 multiply-and-add, end to end.

Builds a pLUTo API program with the Library (``pluto_malloc`` +
``api_pluto_mul`` / ``api_pluto_add``), compiles it to pLUTo ISA, executes
it through the controller on both execution backends — the vectorized
NumPy fast path and the bit-exact subarray row-sweep path — verifies that
the outputs match the host reference and that the two backends produce
identical latency/energy traces, and prints the ISA listing plus the
modelled costs and the wall-clock speedup of the fast path.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import PlutoSession
from repro.core import PlutoConfig, PlutoDesign, PlutoEngine
from repro.utils.units import format_energy, format_time


def main() -> None:
    n = 256
    rng = np.random.default_rng(42)
    a = rng.integers(0, 4, n)       # 2-bit operand vector A
    b = rng.integers(0, 4, n)       # 2-bit operand vector B
    c = rng.integers(0, 16, n)      # 4-bit operand vector C

    # 1) Express out = A * B + C with the pLUTo Library (Figure 5 b).
    session = PlutoSession()
    va = session.pluto_malloc(n, 2, "A")
    vb = session.pluto_malloc(n, 2, "B")
    vc = session.pluto_malloc(n, 4, "C")
    tmp = session.pluto_malloc(n, 4, "tmp")
    out = session.pluto_malloc(n, 8, "out")
    session.api_pluto_mul(va, vb, tmp, bit_width=2)
    session.api_pluto_add(vc, tmp, out, bit_width=4)

    # 2) Compile to pLUTo ISA (Figure 5 c/d); session.run reuses this
    #    exact program through the structure-keyed compile cache.
    compiled = session.compile()
    print("Compiled pLUTo ISA program:")
    print(compiled.program.listing())
    print()

    # 3) Execute on the pLUTo-GMC engine (Figure 5 e) on both backends.
    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.GMC))
    inputs = {"A": a, "B": b, "C": c}
    expected = a * b + c

    timings = {}
    results = {}
    for backend in ("vectorized", "functional"):
        session.backend = backend
        session.run(inputs, engine=engine)  # warm-up: imports + program cache
        start = time.perf_counter()
        result = session.run(inputs, engine=engine)
        timings[backend] = time.perf_counter() - start
        results[backend] = result
        assert np.array_equal(result.outputs["out"], expected), "mismatch vs. host reference"

    fast, slow = results["vectorized"], results["functional"]
    assert fast.latency_ns == slow.latency_ns, "traces diverged across backends"
    assert fast.energy_nj == slow.energy_nj, "traces diverged across backends"

    print(f"Result verified for {n} elements on both backends: out = A*B + C")
    print(f"pLUTo LUT queries executed : {fast.lut_queries}")
    print(f"Modelled latency           : {format_time(fast.latency_ns)}")
    print(f"Modelled DRAM energy       : {format_energy(fast.energy_nj)}")
    print(
        f"Wall-clock                 : functional {timings['functional'] * 1e3:.2f} ms, "
        f"vectorized {timings['vectorized'] * 1e3:.2f} ms "
        f"({timings['functional'] / max(timings['vectorized'], 1e-9):.0f}x faster, "
        "identical traces)"
    )


if __name__ == "__main__":
    main()

"""Quickstart: the paper's Figure 5 multiply-and-add, end to end.

Builds a pLUTo API program with the Library (``pluto_malloc`` +
``api_pluto_mul`` / ``api_pluto_add``), compiles it to pLUTo ISA, executes
it on the functional pLUTo-GMC engine through the controller, verifies the
result bit-exactly, and prints the ISA listing plus the modelled latency
and energy.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.api import PlutoSession
from repro.compiler import PlutoCompiler
from repro.controller import PlutoController
from repro.core import PlutoConfig, PlutoDesign, PlutoEngine
from repro.utils.units import format_energy, format_time


def main() -> None:
    n = 256
    rng = np.random.default_rng(42)
    a = rng.integers(0, 4, n)       # 2-bit operand vector A
    b = rng.integers(0, 4, n)       # 2-bit operand vector B
    c = rng.integers(0, 16, n)      # 4-bit operand vector C

    # 1) Express out = A * B + C with the pLUTo Library (Figure 5 b).
    session = PlutoSession()
    va = session.pluto_malloc(n, 2, "A")
    vb = session.pluto_malloc(n, 2, "B")
    vc = session.pluto_malloc(n, 4, "C")
    tmp = session.pluto_malloc(n, 4, "tmp")
    out = session.pluto_malloc(n, 8, "out")
    session.api_pluto_mul(va, vb, tmp, bit_width=2)
    session.api_pluto_add(vc, tmp, out, bit_width=4)

    # 2) Compile to pLUTo ISA (Figure 5 c/d).
    compiled = PlutoCompiler().compile(session.calls)
    print("Compiled pLUTo ISA program:")
    print(compiled.program.listing())
    print()

    # 3) Execute on the functional pLUTo-GMC engine (Figure 5 e).
    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.GMC))
    result = PlutoController(engine).execute(compiled, {"A": a, "B": b, "C": c})

    expected = a * b + c
    assert np.array_equal(result.outputs["out"], expected), "mismatch vs. host reference"
    print(f"Result verified for {n} elements: out = A*B + C")
    print(f"pLUTo LUT queries executed : {result.lut_queries}")
    print(f"Modelled latency           : {format_time(result.latency_ns)}")
    print(f"Modelled DRAM energy       : {format_energy(result.energy_nj)}")


if __name__ == "__main__":
    main()

"""Regenerate every figure and table of the paper's evaluation.

Runs the full evaluation harness (Figures 6-14 and Tables 1, 5, 6, 7),
prints each reproduced result, and rewrites ``EXPERIMENTS.md`` with the
paper-reported versus measured values.

Run with:  python examples/run_all_experiments.py [--scale 0.25] [--output EXPERIMENTS.md]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.evaluation import (
    figure06_bitline_reliability,
    figure07_speedup_over_cpu,
    figure08_speedup_per_area,
    figure09_speedup_over_fpga,
    figure10_energy_over_cpu,
    figure11_lut_loading,
    figure12_scalability,
    figure12_sharded_scaling,
    figure13_sharded_tfaw,
    figure_auto_planner,
    figure_execution_tiers,
    figure_hierarchy_scaling,
    figure_latency_breakdown,
    figure_optimizer_gains,
    figure_static_verification,
    figure_worker_scaling,
    figure13_tfaw_sensitivity,
    figure14_salp_scaling,
    render_markdown_table,
    render_result,
    table01_design_comparison,
    table05_area_breakdown,
    table06_prior_pum_comparison,
    table07_qnn_inference,
)

#: Paper-reported headline numbers used for the comparison column.
PAPER_HEADLINES = {
    "Figure 7": (
        "pLUTo-GSA/BSA/GMC speedups over CPU: 357x / 713x / 1413x (GMEAN); "
        "GPU ~ BSA/1.2; PnM ~ BSA/18"
    ),
    "Figure 8": (
        "All pLUTo designs beat CPU and GPU per unit area; "
        "3DS variants most area-efficient"
    ),
    "Figure 9": "pLUTo-GSA/BSA/GMC outperform the FPGA by 160x / 274x / 459x (GMEAN)",
    "Figure 10": "pLUTo-GSA/BSA/GMC save 1362x / 1855x / 3071x energy vs CPU; ~29-65x vs GPU",
    "Figure 11": (
        "LUT load time equals query time at ~1.9 MB (DDR4); ~2% of time at 120 MB"
    ),
    "Figure 12": (
        "High throughput / low energy for small LUTs; "
        "pLUTo beats PnM below ~8-bit precision"
    ),
    "Figure 12 (sharded)": (
        "Bank-parallel makespan falls with shard count; "
        "sublinear from replicated LUT loads"
    ),
    "Figure 13": "~10% performance loss at tFAW=50%, ~20% at nominal tFAW",
    "Figure 13 (sharded)": "Tight tFAW windows throttle 16-bank sharded execution",
    "Figure 14": "Speedup scales ~linearly with subarray-level parallelism",
    "Hierarchy scaling": (
        "(beyond the paper) Channel/rank/bank levels compose "
        "multiplicatively once tFAW binds within a rank"
    ),
    "Optimizer gains": (
        "(beyond the paper) LUT chains are closed under composition, so "
        "fusion/CSE/DCE cut executed row sweeps with bit-identical outputs"
    ),
    "Auto-planner gains": (
        "(beyond the paper) The cost-based planner prices shard counts, "
        "placements, optimizer, and tier from the analytic makespan model "
        "and matches the best static configuration exactly (zero "
        "predicted-vs-measured error, bit-identical outputs)"
    ),
    "Execution tiers": (
        "(beyond the paper) Whole-program compiled closures remove the "
        "per-instruction Python dispatch of the simulator (>=5x over the "
        "interpreted walk on serving programs, bit-identical outputs)"
    ),
    "Worker scaling": (
        "(beyond the paper) A dispatcher with structure-key affinity "
        "routing spreads the six program families across worker "
        "processes; modelled device throughput scales near-linearly "
        "(>=2x at 4 workers, gated in benchmarks/) and the shared "
        "artifact store warm-starts fresh workers to hot-path latency"
    ),
    "Latency breakdown": (
        "(beyond the paper) End-to-end tracing splits every served "
        "request's wall-clock into submit / queue-wait / execute spans and "
        "attributes modelled DRAM commands, energy (pJ), and refresh "
        "overhead to each request; tracing overhead is gated <5% in "
        "benchmarks/test_obs_overhead.py"
    ),
    "Static verification": (
        "(beyond the paper) Every registry workload verifies clean — zero "
        "errors, zero warnings — both as recorded and after the optimizer "
        "pipeline; regenerate with `python -m repro.analyze --all-workloads`"
    ),
    "Table 1": "GMC fastest & most efficient, GSA smallest area, BSA balanced",
    "Table 5": "Area overheads: +10.2% (GSA), +16.7% (BSA), +23.1% (GMC)",
    "Table 6": (
        "pLUTo-BSA matches/beats prior PuM on bitwise ops and wins complex ops; "
        "only pLUTo supports LUT queries"
    ),
    "Table 7": "pLUTo-BSA beats CPU 10-30x, GPU 2-7x, FPGA 6-19x in inference time",
}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25,
                        help="input-size scale factor for the CPU-relative figures")
    parser.add_argument("--output", type=Path, default=Path("EXPERIMENTS.md"))
    arguments = parser.parse_args()
    scale = arguments.scale

    experiments = [
        lambda: figure06_bitline_reliability(),
        lambda: figure07_speedup_over_cpu(scale),
        lambda: figure08_speedup_per_area(scale),
        lambda: figure09_speedup_over_fpga(max(scale, 0.5)),
        lambda: figure10_energy_over_cpu(scale),
        lambda: figure11_lut_loading(),
        lambda: figure12_scalability(),
        lambda: figure12_sharded_scaling(),
        lambda: figure13_tfaw_sensitivity(scale=scale),
        lambda: figure13_sharded_tfaw(),
        lambda: figure14_salp_scaling(scale=1.0),
        lambda: figure_hierarchy_scaling(),
        lambda: figure_optimizer_gains(),
        lambda: figure_auto_planner(),
        lambda: figure_execution_tiers(),
        lambda: figure_static_verification(),
        lambda: figure_worker_scaling(),
        lambda: figure_latency_breakdown(),
        lambda: table01_design_comparison(),
        lambda: table05_area_breakdown(),
        lambda: table06_prior_pum_comparison(),
        lambda: table07_qnn_inference(),
    ]

    results = []
    timings: dict[str, float] = {}
    total_start = time.perf_counter()
    for experiment in experiments:
        start = time.perf_counter()
        result = experiment()
        elapsed = time.perf_counter() - start
        timings[result.name] = elapsed
        print(f"[{result.name}] regenerated in {elapsed:.2f} s")
        results.append(result)
    total_elapsed = time.perf_counter() - total_start
    print(f"[all] {len(results)} experiments regenerated in {total_elapsed:.2f} s")

    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `examples/run_all_experiments.py`.",
        "",
        "Every figure and table of the paper's evaluation is regenerated by the",
        "analytical/functional models in this repository.  Absolute numbers differ",
        "from the paper (our baselines are first-order roofline models rather than",
        "measured hardware, and our CPU baseline is more optimistic than the paper's",
        "measured CPU implementations), but the orderings and rough factors the paper",
        "argues from are preserved; the benchmark suite under `benchmarks/` asserts",
        "them on every run.  Known deviations: (1) CPU-normalised speedups and energy",
        "savings are ~4-8x smaller than the paper's because of the baseline",
        "calibration above; (2) Figure 12b shows SIMDRAM closer to pLUTo than the",
        "paper does because we do not charge SIMDRAM for bit-layout transposition;",
        "(3) the tFAW penalty in Figure 13 is larger than the paper's ~20%.",
        "",
    ]
    for result in results:
        print(render_result(result))
        lines.append(f"## {result.name} — {result.description}")
        lines.append("")
        headline = PAPER_HEADLINES.get(result.name)
        if headline:
            lines.append(f"**Paper:** {headline}")
            lines.append("")
        lines.append(f"**Measured** (regenerated in {timings[result.name]:.2f} s):")
        lines.append("")
        lines.append(render_markdown_table(result.rows))
        lines.append("")

    arguments.output.write_text("\n".join(lines))
    print(f"wrote {arguments.output}")


if __name__ == "__main__":
    main()

"""Serving demo: the async frontend over the hierarchical dispatcher.

Simulates a small burst of traffic against one pLUTo module:

1. builds two programs — an 8-bit image-pipeline LUT map and a 4-bit
   multiply-add — and starts a :class:`~repro.api.PlutoService` bound to
   the first;
2. fires a mixed stream of requests at the bounded queue (the two program
   shapes interleave, so the worker's structure-key coalescing has to
   split batches);
3. demonstrates backpressure by overfilling the queue with
   ``submit_nowait`` and counting rejections;
4. re-runs the same traffic through a *hierarchical* service on a
   2-channel x 2-rank engine and prints the per-level speedup
   decomposition of one request.

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from repro.api import PlutoSession
from repro.api.luts import binarize_lut, color_grade_lut
from repro.core import PlutoConfig, PlutoEngine
from repro.errors import ServiceOverloadError
from repro.obs import enable_tracing, render_stage_breakdown
from repro.plan import ExecutionPlan
from repro.utils.units import format_time

ELEMENTS = 4096
REQUESTS = 24


def image_pipeline() -> PlutoSession:
    """Colour-grade + binarize, the IMG workload's command mix."""
    session = PlutoSession()
    pixels = session.pluto_malloc(ELEMENTS, 8, "pixels")
    graded = session.pluto_malloc(ELEMENTS, 8, "graded")
    binary = session.pluto_malloc(ELEMENTS, 8, "binary")
    session.api_pluto_map(color_grade_lut(), pixels, graded)
    session.api_pluto_map(binarize_lut(127), graded, binary)
    return session


def multiply_add() -> PlutoSession:
    """The Figure 5 multiply-and-add over 4-bit operands."""
    session = PlutoSession()
    a = session.pluto_malloc(ELEMENTS, 2, "a")
    b = session.pluto_malloc(ELEMENTS, 2, "b")
    c = session.pluto_malloc(ELEMENTS, 4, "c")
    tmp = session.pluto_malloc(ELEMENTS, 4, "tmp")
    out = session.pluto_malloc(ELEMENTS, 8, "out")
    session.api_pluto_mul(a, b, tmp, bit_width=2)
    session.api_pluto_add(c, tmp, out, bit_width=4)
    return session


def request_stream(rng: np.random.Generator):
    """REQUESTS requests alternating between the two program shapes."""
    image, mac = image_pipeline(), multiply_add()
    for index in range(REQUESTS):
        if index % 3 == 2:
            yield mac, {
                "a": rng.integers(0, 4, ELEMENTS),
                "b": rng.integers(0, 4, ELEMENTS),
                "c": rng.integers(0, 16, ELEMENTS),
            }
        else:
            yield image, {"pixels": rng.integers(0, 256, ELEMENTS)}


async def serve_mixed_traffic() -> None:
    rng = np.random.default_rng(2022)
    image = image_pipeline()
    start = time.perf_counter()
    async with image.serve(max_queue=8, max_batch=8) as service:
        results = await asyncio.gather(
            *(
                service.submit(inputs, session=session)
                for session, inputs in request_stream(rng)
            )
        )
        wall = time.perf_counter() - start
        stats = service.stats
        print(f"Served {stats.served} requests in {wall * 1e3:.1f} ms wall-clock")
        print(
            f"Batches: {stats.batches} "
            f"(coalesced {stats.coalesced} requests; "
            f"mean batch {stats.mean_batch_size:.1f}; "
            f"peak queue depth {stats.max_queue_depth})"
        )
        print(
            f"Mean queue wait {stats.mean_queue_wait_s * 1e3:.2f} ms; "
            f"modelled DRAM time {format_time(stats.total_latency_ns)}"
        )
        slowest = max(results, key=lambda served: served.turnaround_s)
        print(
            f"Slowest request #{slowest.request_id}: "
            f"{slowest.turnaround_s * 1e3:.2f} ms turnaround in a "
            f"batch of {slowest.batch_size}"
        )
        for name, quantiles in stats.summary()["latency"].items():
            print(
                f"  {name:>10}: p50 {quantiles['p50_s'] * 1e3:.3f} ms  "
                f"p95 {quantiles['p95_s'] * 1e3:.3f} ms  "
                f"p99 {quantiles['p99_s'] * 1e3:.3f} ms"
            )
        caches = stats.cache_stats()
        merges = caches["scheduler_merges"]
        print(
            f"Memo effectiveness: {caches['programs']['size']} compiled "
            f"programs; trace templates "
            f"{caches['trace_templates']['hits']} hits / "
            f"{caches['trace_templates']['misses']} misses; "
            f"scheduler merges {merges['hits']} hits / "
            f"{merges['misses']} misses"
        )

        # The span trees attached to every served request break the
        # wall-clock down by pipeline stage and attribute the modelled
        # DRAM energy to each request.
        traces = [
            served.request_trace
            for served in results
            if served.request_trace is not None
        ]
        if traces:
            print()
            print(render_stage_breakdown(traces, title="Per-stage latency"))
            energies = [
                trace.attributes["energy_pj"]
                for trace in traces
                if "energy_pj" in trace.attributes
            ]
            commands = [
                trace.attributes["dram_commands"]
                for trace in traces
                if "dram_commands" in trace.attributes
            ]
            print(
                f"Energy per request: mean {np.mean(energies) / 1e3:.1f} nJ "
                f"(total {np.sum(energies) / 1e6:.2f} uJ over "
                f"{len(energies)} requests; "
                f"mean {np.mean(commands):.0f} DRAM commands each)"
            )


async def demonstrate_backpressure() -> None:
    image = image_pipeline()
    rng = np.random.default_rng(7)
    async with image.serve(max_queue=2, max_batch=2) as service:
        pending, rejected = [], 0
        for _ in range(12):
            try:
                pending.append(
                    service.submit_nowait({"pixels": rng.integers(0, 256, ELEMENTS)})
                )
            except ServiceOverloadError:
                rejected += 1
                # A real client would retry with backoff; here we yield so
                # the worker can drain the queue.
                await asyncio.sleep(0)
        await asyncio.gather(*pending)
        print(
            f"Backpressure: {service.stats.served} served, "
            f"{rejected} rejected by the bounded queue "
            f"(max_queue={service.max_queue})"
        )


async def serve_hierarchically() -> None:
    engine = PlutoEngine(PlutoConfig(tfaw_fraction=1.0, channels=2, ranks=2))
    image = image_pipeline()
    rng = np.random.default_rng(13)
    async with image.serve(
        engine=engine, plan=ExecutionPlan(hierarchical=True)
    ) as service:
        served = await service.submit({"pixels": rng.integers(0, 256, ELEMENTS)})
        decomposition = served.result.speedup_decomposition
        print(
            "Hierarchical request on 2 channels x 2 ranks: "
            f"{served.result.num_shards} shards, "
            f"makespan {format_time(served.latency_ns)} "
            f"(serial {format_time(served.result.serial_latency_ns)})"
        )
        print(
            "Speedup decomposition: "
            + " x ".join(
                f"{level} {decomposition[level]:.2f}"
                for level in ("bank", "rank", "channel")
            )
            + f" = {decomposition['total']:.2f} total"
        )


def serve_with_worker_pool() -> None:
    """The multi-worker tier: affinity routing + shared warm-start store."""
    import tempfile

    from repro.serve import PlutoWorkerPool, fan_out

    rng = np.random.default_rng(29)
    store_path = tempfile.mkdtemp(prefix="pluto-artifacts-")
    start = time.perf_counter()
    with PlutoWorkerPool(workers=2, store_path=store_path) as pool:
        pool.wait_ready(60.0)
        fan_out(pool, request_stream(rng), return_outputs=False)
        wall = time.perf_counter() - start
        summary = pool.stats.summary()
        print(
            f"Worker pool ({pool.workers} workers): "
            f"{summary['completed']} requests in {wall * 1e3:.0f} ms; "
            f"per-worker served {summary['per_worker_served']} "
            "(structure-key affinity)"
        )
        end_to_end = summary["latency"]["end_to_end"]
        print(
            f"  end-to-end: p50 {end_to_end['p50_s'] * 1e3:.2f} ms  "
            f"p95 {end_to_end['p95_s'] * 1e3:.2f} ms  "
            f"p99 {end_to_end['p99_s'] * 1e3:.2f} ms"
        )
    # A fresh pool warm-starts from what the first one exported.
    with PlutoWorkerPool(workers=1, store_path=store_path) as pool:
        pool.wait_ready(60.0)
        report = pool.warm_reports[0] or {}
        print(
            f"Fresh worker warm-started {report.get('installed', 0)} "
            f"program(s) from the shared store in "
            f"{report.get('load_time_s', 0.0) * 1e3:.1f} ms"
        )


def main() -> None:
    enable_tracing(True)
    asyncio.run(serve_mixed_traffic())
    asyncio.run(demonstrate_backpressure())
    asyncio.run(serve_hierarchically())
    serve_with_worker_pool()


if __name__ == "__main__":
    main()

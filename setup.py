"""Setuptools entry point.

Carries the full packaging metadata (rather than delegating to
``pyproject.toml``'s ``[project]`` table) so that editable installs work on
environments with older setuptools/pip combinations (no ``wheel`` package
available for PEP 660 builds).  ``pyproject.toml`` holds the build-system
pin and the ruff configuration CI lints with.

CI installs the package as ``pip install -e .[test]``; the ``test`` extra
matches exactly what the workflow jobs need to run the tier-1 suite and
the benchmarks.
"""

from setuptools import find_packages, setup

setup(
    name="pluto-repro",
    version="0.3.0",
    description=(
        "Reproduction of pLUTo: enabling massively parallel computation "
        "in DRAM via lookup tables (MICRO 2022)"
    ),
    packages=find_packages(where="src"),
    package_dir={"": "src"},
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        "test": [
            "pytest",
            "pytest-benchmark",
            "hypothesis",
        ],
        "lint": ["ruff"],
    },
)

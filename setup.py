"""Setuptools shim.

Kept alongside ``pyproject.toml`` so that editable installs work on
environments with older setuptools/pip combinations (no ``wheel`` package
available for PEP 660 builds).
"""

from setuptools import setup

setup()

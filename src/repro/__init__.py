"""pLUTo reproduction: LUT-based Processing-using-Memory in DRAM.

This package is a behavioural and analytical reproduction of

    "pLUTo: Enabling Massively Parallel Computation in DRAM via Lookup
    Tables" (Ferreira et al., MICRO 2022).

The public API is organised by subsystem:

``repro.dram``
    DRAM organisation, timing, energy, and a functional (bit-accurate)
    model of subarrays, banks, and modules.
``repro.inmem``
    Prior Processing-using-Memory primitives pLUTo builds on: RowClone,
    LISA-RBM, Ambit bulk bitwise operations, DRISA shifting, and
    subarray-level parallelism.
``repro.circuit``
    The SPICE-substitute bitline circuit model used to reproduce the
    reliability study (Figure 6).
``repro.core``
    The pLUTo contribution itself: the three designs (BSA, GSA, GMC),
    the match logic, the pLUTo Row Sweep, the functional LUT-query
    engine, and the analytical throughput/energy/area models.
``repro.isa`` / ``repro.api`` / ``repro.compiler`` / ``repro.controller``
    The system-integration stack of Section 6.
``repro.opt``
    The program optimizer: a pass pipeline (LUT-chain fusion, common
    subexpression elimination, dead-op elimination, LUT deduplication)
    that rewrites recorded API programs before compilation with
    bit-identical outputs and strictly fewer row sweeps.
``repro.backend``
    Pluggable execution backends for compiled programs: the bit-exact
    subarray row-sweep path and the vectorized NumPy fast path, both
    producing identical command traces.
``repro.baselines``
    Analytical CPU, GPU, FPGA, PnM, SIMDRAM, Ambit, DRISA, and LAcc
    models used for the comparative evaluation.
``repro.workloads`` / ``repro.nn``
    The eleven evaluated workloads and the quantized LeNet-5 case study.
``repro.evaluation``
    One experiment class per paper figure/table.
"""

from repro.version import __version__

__all__ = ["__version__"]

"""Static analysis for pLUTo programs: dataflow core + IR verifier.

Every fast tier built so far — the optimizer's rewrites, the compiled
closures' guard elimination, the serving tier's structure-key caches —
assumes pLUTo programs are well-formed.  This package checks those
invariants independently, the way production compiler stacks verify
their IR between passes:

* :mod:`repro.analyze.dataflow` — the shared forward
  abstract-interpretation pass over a
  :class:`~repro.compiler.lowering.CompiledProgram`: per-register value
  bounds (interval domain) and bit-width facts, plus the structural
  summary (first read/write events, rebinding, fused-execution
  legality) that :mod:`repro.backend.compiled` lowers against.
* :mod:`repro.analyze.verifier` — structural and dataflow invariant
  checks returning structured :class:`Diagnostic` records instead of
  raising: def-before-use, register-file capacity, LUT bindings and
  index ranges, output-width narrowing, RowClone legality, shard-slice
  aliasing, and the optimizer's pass invariants.
* :mod:`repro.analyze.cli` — ``python -m repro.analyze`` lints every
  registry workload program through the verifier.

Front doors elsewhere: :meth:`repro.api.session.PlutoSession.verify`,
verify-on-submit in :class:`repro.api.service.PlutoService`, and
``PlutoConfig(verify="always"|"debug"|"off")`` on the execution paths.
"""

from repro.analyze.dataflow import (
    DataflowSummary,
    InstructionFacts,
    analyze_dataflow,
)
from repro.analyze.diagnostics import (
    Diagnostic,
    Severity,
    VerificationReport,
)
from repro.analyze.verifier import (
    VERIFY_MODES,
    VerificationError,
    check_pass_invariants,
    clear_verifier_cache,
    narrow_output_diagnostic,
    operand_width_diagnostic,
    shards_overcommit_diagnostic,
    verification_enabled,
    verifier_cache_stats,
    verify_cached,
    verify_calls,
    verify_compiled,
    verify_program,
    verify_shard_plans,
)

__all__ = [
    "DataflowSummary",
    "InstructionFacts",
    "analyze_dataflow",
    "Diagnostic",
    "Severity",
    "VerificationReport",
    "VERIFY_MODES",
    "VerificationError",
    "check_pass_invariants",
    "clear_verifier_cache",
    "narrow_output_diagnostic",
    "operand_width_diagnostic",
    "shards_overcommit_diagnostic",
    "verification_enabled",
    "verifier_cache_stats",
    "verify_cached",
    "verify_calls",
    "verify_compiled",
    "verify_program",
    "verify_shard_plans",
]

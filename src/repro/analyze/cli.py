"""``python -m repro.analyze`` — lint registry workload programs.

Runs the static verifier over the recorded API pipelines of the
workload registry (:mod:`repro.workloads.programs`), both as recorded
and after the optimizer pipeline rewrites them, and prints one line per
program (plus every diagnostic, if any).  Exit status is non-zero when
any verified program carries an error-severity finding, so CI can gate
on a clean registry with::

    python -m repro.analyze --all-workloads
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.analyze.verifier import verify_program
from repro.errors import ReproError

__all__ = ["main"]


def _registry_names() -> list[str]:
    from repro.workloads.programs import _BUILDERS

    return sorted(_BUILDERS)


def _lint_one(
    name: str, elements: int, seed: int, *, optimize: bool, verbose: bool
) -> int:
    """Verify one workload program; return the number of errors found."""
    from repro.opt.pipeline import optimize_cached
    from repro.workloads.programs import workload_program

    program = workload_program(name, elements=elements, seed=seed)
    calls = list(program.session.calls)
    stage = "recorded"
    if optimize:
        calls = list(optimize_cached(calls).calls)
        stage = "optimized"
    report = verify_program(calls, subject=f"{name} ({stage})")
    status = "clean" if report.clean else (
        "OK with warnings" if report.ok else "FAILED"
    )
    print(
        f"{name:>12} [{stage}]: {status} "
        f"({len(calls)} calls, {len(report.errors)} errors, "
        f"{len(report.warnings)} warnings)"
    )
    if report.diagnostics and (verbose or not report.ok):
        for diagnostic in report.diagnostics:
            print(f"    {diagnostic.render()}")
    return len(report.errors)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analyze",
        description="Statically verify pLUTo registry workload programs.",
    )
    parser.add_argument(
        "workloads",
        nargs="*",
        metavar="WORKLOAD",
        help=f"registry program names to lint (available: {', '.join(_registry_names())})",
    )
    parser.add_argument(
        "--all-workloads",
        action="store_true",
        help="lint every registry workload family",
    )
    parser.add_argument(
        "--elements",
        type=int,
        default=256,
        help="element count for the recorded programs (default: 256)",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="input RNG seed (default: 0)"
    )
    parser.add_argument(
        "--no-optimized",
        action="store_true",
        help="lint only the recorded programs, not the optimizer's rewrites",
    )
    parser.add_argument(
        "--verbose",
        action="store_true",
        help="print warnings even when a program verifies without errors",
    )
    args = parser.parse_args(argv)

    names = list(args.workloads)
    if args.all_workloads or not names:
        names = _registry_names()
    available = set(_registry_names())
    unknown = [name for name in names if name not in available]
    if unknown:
        parser.error(
            f"unknown workloads {unknown}; available: {sorted(available)}"
        )

    errors = 0
    for name in names:
        stages = [False] if args.no_optimized else [False, True]
        for optimize in stages:
            try:
                errors += _lint_one(
                    name,
                    args.elements,
                    args.seed,
                    optimize=optimize,
                    verbose=args.verbose,
                )
            except ReproError as error:
                print(f"{name:>12}: FAILED to build/verify: {error}")
                errors += 1
    if errors:
        print(f"\n{errors} error(s) across {len(names)} workload(s)")
        return 1
    print(f"\nall {len(names)} workload(s) verify clean")
    return 0

"""The shared forward abstract-interpretation pass over compiled programs.

One walk over a straight-line :class:`~repro.compiler.lowering.CompiledProgram`
computes, per row-register slot:

* an **interval (value-bound) domain** — a provable upper bound on the
  uint64 values the slot can hold at each program point (the lower bound
  is always 0).  LUT results are bounded by the table's actual maximum,
  bitwise/shift results by the mask they apply, moves propagate their
  source's bound; and
* a **bit-width / structural domain** — declared widths and sizes from
  the allocs, whether the first reference to a slot reads it (so it must
  start zeroed) or writes it, whether a slot is ever rebound by a plain
  assignment, and whether the program is legal under stacked
  ``(shards, size)`` fused execution (a partial-row move is not).

This analysis started life as a private pass inside
:mod:`repro.backend.compiled`, where it powers LUT bounds-check
elimination in the generated closures; it is promoted here so the IR
verifier (:mod:`repro.analyze.verifier`) and the optimizer reason from
the *same* source of truth the code generator lowers against.

``assume_external_width`` selects the input contract.  ``True`` models
callers that validate every external's *converted* uint64 values against
its declared width mask (the generated serve entry point does exactly
that before running the fast body); ``False`` models callers that only
width-check on the caller's dtype — a signed ``-1`` passes and wraps
huge as uint64 — so every seedable slot is unbounded.  The program is
straight-line, so a single forward pass gives exact bounds under either
contract; the analysis also models the runtime LUT guards the code
generator emits (``guard_needed``), refining a guarded source's bound to
``entries - 1`` exactly as the generated check does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ExecutionError
from repro.isa.instructions import (
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.utils.bitops import mask_of

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.compiler.lowering import CompiledProgram

__all__ = ["InstructionFacts", "DataflowSummary", "analyze_dataflow"]

#: Upper bound of an unconstrained uint64 slot.
_UINT64_MAX = mask_of(64)


@dataclass(frozen=True)
class InstructionFacts:
    """Dataflow facts at one instruction, under one input contract.

    ``operand_bounds`` are the provable upper bounds of the row operands
    *read* by the instruction, before it executes, in operand order
    (for a partial-width move the overwritten destination is read too,
    and appears after the source).  ``result_bound`` is the written
    slot's bound after execution, ``None`` for instructions that write
    no row register (allocs).  ``guard_needed`` is meaningful for
    ``pluto_op`` only: whether a runtime LUT bounds check is required
    because the source's provable bound reaches the table size.
    """

    index: int
    operand_slots: tuple[int, ...] = ()
    operand_bounds: tuple[int, ...] = ()
    result_slot: int | None = None
    result_bound: int | None = None
    guard_needed: bool = False


@dataclass(frozen=True)
class DataflowSummary:
    """Everything one forward pass proves about a compiled program."""

    #: The input contract the value bounds hold under.
    assume_external_width: bool
    #: Per-instruction facts, aligned with the program's instructions.
    facts: tuple[InstructionFacts, ...]
    #: Row slot -> provable upper bound after the last instruction.
    final_bounds: dict[int, int]
    #: Row slot -> declared element count (from ``pluto_row_alloc``).
    sizes: dict[int, int]
    #: Row slot -> declared bit width (from ``pluto_row_alloc``).
    widths: dict[int, int]
    #: Row slot -> ``"read"``/``"write"``: whether the first reference
    #: consumes the prior value (the slot must start zeroed) or replaces
    #: it.
    first_event: dict[int, str]
    #: Slots rebound by a plain assignment (their final array is created
    #: by the program, never aliased to a caller-seeded input).
    rebound: frozenset[int]
    #: Subarray slot -> maximum value stored in its bound table.
    table_max: dict[int, int]
    #: Whether stacked ``(shards, size)`` execution is legal: a move
    #: into a wider row is a 1-D slice write with no stacked equivalent.
    supports_fused: bool
    #: Number of ``pluto_op`` instructions.
    lut_queries: int
    #: Total instruction count.
    instructions: int

    @property
    def row_slots(self) -> tuple[int, ...]:
        """Allocated row slots, ascending."""
        return tuple(sorted(self.sizes))

    def zero_specs(self) -> tuple[tuple[int, int], ...]:
        """``(slot, size)`` for every slot that must start zeroed.

        A slot whose first event is not a write is read before any write
        (or never written): unless the caller seeds it, it must hold the
        zeros the interpreted path creates at allocation.
        """
        return tuple(
            (slot, self.sizes[slot])
            for slot in self.row_slots
            if self.first_event.get(slot) != "write"
        )


def analyze_dataflow(
    compiled: "CompiledProgram", *, assume_external_width: bool = True
) -> DataflowSummary:
    """Run the forward value-bound / structure pass over ``compiled``.

    Raises :class:`~repro.errors.ExecutionError` on instruction kinds
    the straight-line IR does not contain (the same condition that makes
    a program unlowerable); the verifier catches this case and reports
    it as a diagnostic instead.
    """
    vector_slots = {
        register.index for register in compiled.vector_bindings.values()
    }
    external_limits = {
        compiled.vector_bindings[vector.name].index: mask_of(
            min(64, vector.bit_width)
        )
        for vector in compiled.external_inputs
        if vector.name in compiled.vector_bindings
    }

    bounds: dict[int, int] = {}
    sizes: dict[int, int] = {}
    widths: dict[int, int] = {}
    first_event: dict[int, str] = {}
    rebound: set[int] = set()
    table_max: dict[int, int] = {}
    facts: list[InstructionFacts] = []
    supports_fused = True
    lut_queries = 0

    def read(slot: int) -> int:
        """Note a read of ``slot`` and return its current upper bound."""
        first_event.setdefault(slot, "read")
        bound = bounds.get(slot)
        if bound is None:
            # First touch is a read: any vector-bound slot can be seeded
            # by the caller.  Externals are width-bounded only under the
            # validated-input contract; everything else seedable is
            # unbounded there too (the serve path zero-inits it, but the
            # bound must stay sound for *any* caller of the safe body).
            if slot in vector_slots:
                if assume_external_width:
                    bound = external_limits.get(slot, _UINT64_MAX)
                else:
                    bound = _UINT64_MAX
            else:
                bound = 0
            bounds[slot] = bound
        return bound

    def write(slot: int, bound: int) -> int:
        first_event.setdefault(slot, "write")
        rebound.add(slot)
        bounds[slot] = bound
        return bound

    for index, instruction in enumerate(compiled.program):
        if isinstance(instruction, PlutoRowAlloc):
            slot = instruction.destination.index
            sizes[slot] = instruction.size_elements
            widths[slot] = instruction.bit_width
            facts.append(InstructionFacts(index=index))
        elif isinstance(instruction, PlutoSubarrayAlloc):
            lut_slot = instruction.destination.index
            table = compiled.lut_bindings.get(lut_slot)
            if table is not None:
                table_max[lut_slot] = (
                    max(table.values) if table.values else 0
                )
            facts.append(InstructionFacts(index=index))
        elif isinstance(instruction, PlutoOp):
            lut_queries += 1
            source_slot = instruction.source.index
            source_bound = read(source_slot)
            lut_slot = instruction.lut_subarray.index
            table = compiled.lut_bindings.get(lut_slot)
            entries = (
                table.num_entries if table is not None else instruction.lut_size
            )
            # The runtime guard the code generator emits when the
            # source's provable bound can reach the table size; after
            # the guard, surviving values are provably in range.
            guard_needed = source_bound >= entries
            if guard_needed:
                bounds[source_slot] = entries - 1
            result_bound = table_max.get(lut_slot, 0)
            destination = instruction.destination.index
            write(destination, result_bound)
            facts.append(
                InstructionFacts(
                    index=index,
                    operand_slots=(source_slot,),
                    operand_bounds=(source_bound,),
                    result_slot=destination,
                    result_bound=result_bound,
                    guard_needed=guard_needed,
                )
            )
        elif isinstance(instruction, PlutoBitwise):
            operand_slots = [instruction.source1.index]
            if instruction.source2 is not None:
                operand_slots.append(instruction.source2.index)
            operand_bounds = tuple(read(slot) for slot in operand_slots)
            destination = instruction.destination.index
            result_bound = mask_of(min(64, instruction.destination.bit_width))
            write(destination, result_bound)
            facts.append(
                InstructionFacts(
                    index=index,
                    operand_slots=tuple(operand_slots),
                    operand_bounds=operand_bounds,
                    result_slot=destination,
                    result_bound=result_bound,
                )
            )
        elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
            amount = instruction.amount
            if isinstance(instruction, PlutoByteShift):
                amount *= 8
            slot = instruction.target.index
            bound = read(slot)
            if instruction.direction is ShiftDirection.LEFT:
                result_bound = mask_of(min(64, instruction.target.bit_width))
            elif amount < 64:  # a wider shift is not a defined uint64 op
                result_bound = bound >> amount
            else:
                result_bound = bound
            write(slot, result_bound)
            facts.append(
                InstructionFacts(
                    index=index,
                    operand_slots=(slot,),
                    operand_bounds=(bound,),
                    result_slot=slot,
                    result_bound=result_bound,
                )
            )
        elif isinstance(instruction, PlutoMove):
            source_slot = instruction.source.index
            source_bound = read(source_slot)
            destination = instruction.destination.index
            if (
                instruction.destination.size_elements
                > instruction.source.size_elements
            ):
                # Partial overwrite keeps the destination's tail: the
                # destination is read as well as written, it is not
                # rebound (the write is an in-place slice assignment),
                # and stacked fused execution has no equivalent.
                destination_bound = read(destination)
                result_bound = max(destination_bound, source_bound)
                bounds[destination] = result_bound
                supports_fused = False
                facts.append(
                    InstructionFacts(
                        index=index,
                        operand_slots=(source_slot, destination),
                        operand_bounds=(source_bound, destination_bound),
                        result_slot=destination,
                        result_bound=result_bound,
                    )
                )
            else:
                write(destination, source_bound)
                facts.append(
                    InstructionFacts(
                        index=index,
                        operand_slots=(source_slot,),
                        operand_bounds=(source_bound,),
                        result_slot=destination,
                        result_bound=source_bound,
                    )
                )
        else:
            raise ExecutionError(
                f"unsupported instruction {type(instruction).__name__}"
            )

    return DataflowSummary(
        assume_external_width=assume_external_width,
        facts=tuple(facts),
        final_bounds=dict(bounds),
        sizes=sizes,
        widths=widths,
        first_event=first_event,
        rebound=frozenset(rebound),
        table_max=table_max,
        supports_fused=supports_fused,
        lut_queries=lut_queries,
        instructions=len(facts),
    )

"""Structured diagnostics: what the verifier reports instead of raising.

A :class:`Diagnostic` is one finding — severity, stable machine-readable
code, the instruction (or call) index it anchors to, a human message,
and a fix hint.  A :class:`VerificationReport` aggregates the findings
of one verification run; callers that need an exception (the session and
service front doors) use :meth:`VerificationReport.raise_if_errors`,
which raises :class:`~repro.errors.VerificationError` carrying the
error-severity diagnostics, so the message a user sees is built from the
same records the tests assert on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from repro.errors import VerificationError

__all__ = ["Severity", "Diagnostic", "VerificationReport"]


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings make a program unexecutable or silently wrong
    (the front doors reject on them); ``WARNING`` findings are legal but
    suspicious — e.g. a value bound that *can* reach past a LUT, which
    the backends guard at runtime instead of miscomputing.
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Diagnostic:
    """One verifier finding.

    ``code`` is the stable identifier tests and tooling match on (e.g.
    ``"use-before-def"``); ``instruction`` is the index of the offending
    instruction or API call, or ``None`` for program-level findings.
    """

    severity: Severity
    code: str
    message: str
    instruction: int | None = None
    hint: str = ""

    @property
    def is_error(self) -> bool:
        """Whether this finding blocks execution."""
        return self.severity is Severity.ERROR

    def render(self) -> str:
        """One-line human rendering: ``error[code] @3: message (hint)``."""
        where = f" @{self.instruction}" if self.instruction is not None else ""
        hint = f" ({self.hint})" if self.hint else ""
        return f"{self.severity.value}[{self.code}]{where}: {self.message}{hint}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class VerificationReport:
    """Every finding of one verification run, in program order."""

    diagnostics: tuple[Diagnostic, ...] = ()
    #: What was verified (a workload name, ``"calls"``, ``"compiled"``).
    subject: str = "program"

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        """The error-severity findings (what front doors reject on)."""
        return tuple(d for d in self.diagnostics if d.is_error)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        """The warning-severity findings."""
        return tuple(d for d in self.diagnostics if not d.is_error)

    @property
    def ok(self) -> bool:
        """Whether the program verified without errors."""
        return not self.errors

    @property
    def clean(self) -> bool:
        """Whether the program verified without any finding at all."""
        return not self.diagnostics

    def codes(self) -> frozenset[str]:
        """The set of finding codes, for coarse assertions."""
        return frozenset(d.code for d in self.diagnostics)

    def merged(self, other: "VerificationReport") -> "VerificationReport":
        """This report and ``other`` as one (keeps this subject)."""
        return VerificationReport(
            diagnostics=self.diagnostics + other.diagnostics,
            subject=self.subject,
        )

    def render(self) -> str:
        """Multi-line human rendering of every finding."""
        if not self.diagnostics:
            return f"{self.subject}: clean"
        lines = [d.render() for d in self.diagnostics]
        return f"{self.subject}:\n" + "\n".join(f"  {line}" for line in lines)

    def raise_if_errors(self) -> "VerificationReport":
        """Raise :class:`VerificationError` when any finding is an error.

        Returns ``self`` otherwise, so call sites can chain on it.
        """
        errors = self.errors
        if errors:
            raise VerificationError(errors, subject=self.subject)
        return self

"""The pLUTo IR verifier: structural invariants as structured diagnostics.

Every fast tier assumes well-formed programs; this module *checks* those
assumptions and reports violations as :class:`Diagnostic` records
(severity, instruction index, message, fix hint) instead of raising, so
callers choose the policy: the CLI prints them, the serving front doors
reject with :class:`~repro.errors.VerificationError`, tests assert on
the stable codes.

Two levels are verified, matching the two program representations:

* :func:`verify_calls` — the recorded API program: unknown operations,
  arity, single assignment, LUT presence, operand/output widths, and
  dependency cycles (the conditions :mod:`repro.api.session` used to
  check ad hoc — its checks now build the same diagnostics via the
  ``*_diagnostic`` helpers here, so the messages stay consistent).
* :func:`verify_compiled` — the lowered ISA program: def-before-use,
  register-file capacity, LUT bindings/sizes, output-width narrowing,
  RowClone (``pluto_move``) legality, and — via the shared dataflow pass
  of :mod:`repro.analyze.dataflow` — value bounds that can reach past a
  LUT (a warning: the backends guard those queries at runtime).

:func:`verify_program` chains both; :func:`verify_cached` memoizes whole
reports on the program structure key (the identity every other warm
layer uses), so verify-on-submit in the serving tier costs a dict hit
per repeated request shape.  :func:`verify_shard_plans` checks dispatch
plans for slice aliasing and bank placement, and
:func:`check_pass_invariants` is the optimizer's hook: it re-verifies a
pass's output and raises on errors or dropped preserved outputs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable, Sequence

from repro.analyze.dataflow import DataflowSummary, analyze_dataflow
from repro.analyze.diagnostics import Diagnostic, Severity, VerificationReport
from repro.errors import (
    CompilationError,
    ConfigurationError,
    ExecutionError,
    ReproError,
    VerificationError,
)
from repro.isa.instructions import (
    Instruction,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
)
from repro.isa.registers import RowRegister
from repro.utils.memo import BoundedMemo

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.handles import ApiCall, PlutoVector
    from repro.compiler.lowering import CompiledProgram
    from repro.core.lut import LookupTable

__all__ = [
    "VERIFY_MODES",
    "verification_enabled",
    "narrow_output_diagnostic",
    "operand_width_diagnostic",
    "shards_overcommit_diagnostic",
    "verify_calls",
    "verify_compiled",
    "verify_program",
    "verify_cached",
    "seed_verifier_cache",
    "verify_shard_plans",
    "check_pass_invariants",
    "verifier_cache_stats",
    "clear_verifier_cache",
]

#: The ``PlutoConfig(verify=...)`` / ``PassManager(verify=...)`` modes.
VERIFY_MODES = ("always", "debug", "off")

#: Operations the compiler can lower (anything ``*_lut`` is a binary LUT
#: routine — the recorded bitwise-as-LUT calls and the optimizer's fused
#: chains both use that suffix).
_BASE_OPERATIONS = frozenset(
    {"add", "mul", "map", "shift", "move", "not", "and", "or", "xor",
     "xnor", "nand", "nor"}
)


def verification_enabled(mode: str) -> bool:
    """Whether a verify mode is active in this interpreter.

    ``"always"`` verifies unconditionally, ``"debug"`` only under
    ``__debug__`` (i.e. not with ``python -O`` — the test default),
    ``"off"`` never.
    """
    if mode == "always":
        return True
    if mode == "debug":
        return __debug__
    if mode == "off":
        return False
    raise ConfigurationError(
        f"unknown verify mode {mode!r}; expected one of {list(VERIFY_MODES)}"
    )


# ---------------------------------------------------------------------- #
# Shared diagnostic builders (the API layer raises from these too)
# ---------------------------------------------------------------------- #
def narrow_output_diagnostic(
    out: "PlutoVector", lut: "LookupTable", *, instruction: int | None = None
) -> Diagnostic | None:
    """The narrow-output finding, or ``None`` when the widths fit.

    One builder serves both the verifier and the session-layer
    ``api_pluto_*`` checks, so the message is identical wherever the
    condition is caught.
    """
    if out.bit_width >= lut.element_bits:
        return None
    return Diagnostic(
        severity=Severity.ERROR,
        code="narrow-output",
        message=(
            f"output vector {out.name!r} is {out.bit_width}-bit wide but LUT "
            f"{lut.name!r} stores {lut.element_bits}-bit elements"
        ),
        instruction=instruction,
        hint=f"widen {out.name!r} to at least {lut.element_bits} bits",
    )


def operand_width_diagnostic(
    vector: "PlutoVector", bit_width: int, *, instruction: int | None = None
) -> Diagnostic | None:
    """The narrow-operand finding, or ``None`` when the vector is wide enough."""
    if vector.bit_width >= bit_width:
        return None
    return Diagnostic(
        severity=Severity.ERROR,
        code="operand-width",
        message=(
            f"vector {vector.name!r} is {vector.bit_width}-bit wide but the "
            f"routine operates on {bit_width}-bit operands"
        ),
        instruction=instruction,
        hint=f"allocate {vector.name!r} with at least {bit_width} bits",
    )


def shards_overcommit_diagnostic(
    shards: int, num_banks: int
) -> Diagnostic | None:
    """The shards-beyond-banks finding, or ``None`` when the plan fits."""
    if shards <= num_banks:
        return None
    return Diagnostic(
        severity=Severity.ERROR,
        code="shards-overcommit",
        message=(
            f"cannot run {shards} shards bank-parallel on a module with "
            f"{num_banks} banks"
        ),
        hint=f"use at most {num_banks} shards, or a larger module",
    )


# ---------------------------------------------------------------------- #
# API-level verification
# ---------------------------------------------------------------------- #
def verify_calls(
    calls: "Sequence[ApiCall]", *, subject: str = "program"
) -> VerificationReport:
    """Verify a recorded API program (diagnostics index = call index)."""
    diagnostics: list[Diagnostic] = []
    if not calls:
        return VerificationReport(
            (
                Diagnostic(
                    severity=Severity.ERROR,
                    code="empty-program",
                    message="the API program records no calls",
                    hint="record at least one api_pluto_* call before running",
                ),
            ),
            subject=subject,
        )

    producers: dict[str, int] = {}
    for index, call in enumerate(calls):
        operation = call.operation
        is_lut_routine = operation in ("add", "mul") or operation.endswith("_lut")
        if operation not in _BASE_OPERATIONS and not operation.endswith("_lut"):
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="unknown-operation",
                    message=f"unsupported API operation {operation!r}",
                    instruction=index,
                    hint=f"use one of {sorted(_BASE_OPERATIONS)} or a *_lut routine",
                )
            )
            continue

        previous = producers.get(call.output.name)
        if previous is not None:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="multiple-assignment",
                    message=(
                        f"vector {call.output.name!r} is produced by call "
                        f"{previous} and again by call {index}"
                    ),
                    instruction=index,
                    hint="give each computation a distinct output vector",
                )
            )
        else:
            producers[call.output.name] = index

        if is_lut_routine:
            diagnostics.extend(_check_binary_lut_call(call, index))
        elif operation == "map":
            diagnostics.extend(_check_map_call(call, index))
        elif operation == "not":
            if len(call.inputs) != 1:
                diagnostics.append(_arity(call, index, 1))
        elif operation in ("and", "or", "xor", "xnor", "nand", "nor"):
            if len(call.inputs) != 2:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="arity",
                        message=f"bitwise {operation!r} needs two inputs",
                        instruction=index,
                        hint="pass both operand vectors",
                    )
                )
        elif operation == "shift":
            diagnostics.extend(_check_shift_call(call, index))
        elif operation == "move":
            if len(call.inputs) != 1:
                diagnostics.append(_arity(call, index, 1))

    diagnostics.extend(_check_dependencies(calls))
    return VerificationReport(tuple(diagnostics), subject=subject)


def _arity(call: "ApiCall", index: int, expected: int) -> Diagnostic:
    noun = "input" if expected == 1 else "inputs"
    return Diagnostic(
        severity=Severity.ERROR,
        code="arity",
        message=(
            f"API call {call.operation!r} needs exactly {expected} {noun}, "
            f"got {len(call.inputs)}"
        ),
        instruction=index,
        hint="check the routine's operand list",
    )


def _check_binary_lut_call(call: "ApiCall", index: int) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    if call.lut is None:
        found.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-lut",
                message=(
                    f"API call {call.operation!r} is LUT-backed but carries "
                    "no LUT"
                ),
                instruction=index,
                hint="record the call through the session routines",
            )
        )
        return found
    if len(call.inputs) != 2:
        found.append(_arity(call, index, 2))
    bit_width = call.parameters.get("bit_width")
    if isinstance(bit_width, int) and bit_width > 0:
        for vector in call.inputs:
            diagnostic = operand_width_diagnostic(
                vector, bit_width, instruction=index
            )
            if diagnostic is not None:
                found.append(diagnostic)
    narrow = narrow_output_diagnostic(call.output, call.lut, instruction=index)
    if narrow is not None:
        found.append(narrow)
    return found


def _check_map_call(call: "ApiCall", index: int) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    if call.lut is None:
        found.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="missing-lut",
                message="API call 'map' is LUT-backed but carries no LUT",
                instruction=index,
                hint="pass the lookup table to api_pluto_map",
            )
        )
        return found
    if len(call.inputs) != 1:
        found.append(_arity(call, index, 1))
    source = call.inputs[0]
    if source.bit_width < call.lut.index_bits:
        found.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="lut-index-width",
                message=(
                    f"vector {source.name!r} ({source.bit_width}-bit) cannot "
                    f"index a {call.lut.num_entries}-entry LUT"
                ),
                instruction=index,
                hint=(
                    f"the LUT needs {call.lut.index_bits}-bit indices; widen "
                    "the source or shrink the table"
                ),
            )
        )
    narrow = narrow_output_diagnostic(call.output, call.lut, instruction=index)
    if narrow is not None:
        found.append(narrow)
    return found


def _check_shift_call(call: "ApiCall", index: int) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    if len(call.inputs) != 1:
        found.append(_arity(call, index, 1))
    direction = call.parameters.get("direction", "l")
    if direction not in ("l", "r"):
        found.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="shift-direction",
                message=f"shift direction must be 'l' or 'r', got {direction!r}",
                instruction=index,
                hint="pass direction='l' or 'r'",
            )
        )
    bits = call.parameters.get("bits", 0)
    if isinstance(bits, int) and bits < 0:
        found.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="shift-amount",
                message=f"shift amount must be non-negative, got {bits}",
                instruction=index,
                hint="shift by 0 or more bits",
            )
        )
    return found


def _check_dependencies(calls: "Sequence[ApiCall]") -> list[Diagnostic]:
    """Detect dependency cycles via the compiler's own ordering pass."""
    from repro.opt.analysis import topological_calls

    try:
        topological_calls(list(calls))
    except CompilationError as error:
        return [
            Diagnostic(
                severity=Severity.ERROR,
                code="dependency-cycle",
                message=str(error),
                hint="break the cycle with an intermediate vector",
            )
        ]
    return []


# ---------------------------------------------------------------------- #
# ISA-level verification
# ---------------------------------------------------------------------- #
def verify_compiled(
    compiled: "CompiledProgram", *, subject: str = "compiled program"
) -> VerificationReport:
    """Verify a lowered program (diagnostics index = instruction index)."""
    diagnostics: list[Diagnostic] = []
    summary = _try_dataflow(compiled, diagnostics)
    register_file = compiled.register_file
    defined_rows: set[int] = set()
    defined_subarrays: set[int] = set()
    row_allocs = 0
    subarray_allocs = 0

    def require_row(
        register: RowRegister, index: int, instruction: Instruction
    ) -> None:
        if register.index not in defined_rows:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="use-before-def",
                    message=(
                        f"{instruction.render()}: row register {register.name} "
                        "used before allocation"
                    ),
                    instruction=index,
                    hint=f"emit pluto_row_alloc {register.name} first",
                )
            )

    for index, instruction in enumerate(compiled.program):
        if isinstance(instruction, PlutoRowAlloc):
            slot = instruction.destination.index
            row_allocs += 1
            if slot in defined_rows:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="duplicate-alloc",
                        message=(
                            f"row register {instruction.destination.name} is "
                            "allocated twice"
                        ),
                        instruction=index,
                        hint="allocate each register once",
                    )
                )
            defined_rows.add(slot)
            if slot >= register_file.max_row_registers:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="register-overcommit",
                        message=(
                            f"row register {instruction.destination.name} "
                            "exceeds the register file "
                            f"({register_file.max_row_registers} row registers)"
                        ),
                        instruction=index,
                        hint="split the program or enlarge the register file",
                    )
                )
        elif isinstance(instruction, PlutoSubarrayAlloc):
            slot = instruction.destination.index
            subarray_allocs += 1
            if slot in defined_subarrays:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="duplicate-alloc",
                        message=(
                            "subarray register "
                            f"{instruction.destination.name} is allocated twice"
                        ),
                        instruction=index,
                        hint="allocate each register once",
                    )
                )
            defined_subarrays.add(slot)
            if slot >= register_file.max_subarray_registers:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="register-overcommit",
                        message=(
                            f"subarray register {instruction.destination.name} "
                            "exceeds the register file "
                            f"({register_file.max_subarray_registers} subarray "
                            "registers)"
                        ),
                        instruction=index,
                        hint="split the program or enlarge the register file",
                    )
                )
            table = compiled.lut_bindings.get(slot)
            if table is None:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="unbound-lut",
                        message=(
                            f"subarray register {instruction.destination.name} "
                            "has no lookup table bound to it"
                        ),
                        instruction=index,
                        hint="bind the LUT in CompiledProgram.lut_bindings",
                    )
                )
            elif instruction.num_rows != table.num_entries:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="lut-size-mismatch",
                        message=(
                            f"{instruction.render()}: allocates "
                            f"{instruction.num_rows} rows but LUT "
                            f"{table.name!r} has {table.num_entries} entries"
                        ),
                        instruction=index,
                        hint="allocate exactly one row per LUT entry",
                    )
                )
        elif isinstance(instruction, PlutoOp):
            require_row(instruction.source, index, instruction)
            require_row(instruction.destination, index, instruction)
            if instruction.lut_subarray.index not in defined_subarrays:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="use-before-def",
                        message=(
                            f"{instruction.render()}: subarray register "
                            f"{instruction.lut_subarray.name} used before "
                            "allocation"
                        ),
                        instruction=index,
                        hint=(
                            "emit pluto_subarray_alloc "
                            f"{instruction.lut_subarray.name} first"
                        ),
                    )
                )
            diagnostics.extend(_check_pluto_op(compiled, instruction, index, summary))
        elif isinstance(instruction, PlutoBitwise):
            require_row(instruction.source1, index, instruction)
            if instruction.source2 is not None:
                require_row(instruction.source2, index, instruction)
            require_row(instruction.destination, index, instruction)
        elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
            require_row(instruction.target, index, instruction)
        elif isinstance(instruction, PlutoMove):
            require_row(instruction.source, index, instruction)
            require_row(instruction.destination, index, instruction)
            if instruction.destination.index == instruction.source.index:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="move-self-copy",
                        message=(
                            f"{instruction.render()}: source and destination "
                            "are the same row register; RowClone cannot copy "
                            "a row onto itself"
                        ),
                        instruction=index,
                        hint="drop the move or copy through a scratch register",
                    )
                )
            elif (
                instruction.destination.size_elements
                < instruction.source.size_elements
            ):
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="move-shrink",
                        message=(
                            f"{instruction.render()}: destination holds "
                            f"{instruction.destination.size_elements} elements "
                            f"but the source holds "
                            f"{instruction.source.size_elements}"
                        ),
                        instruction=index,
                        hint="moves may widen but never truncate a row",
                    )
                )

    diagnostics.extend(_check_bindings(compiled))
    diagnostics.sort(
        key=lambda d: (d.instruction if d.instruction is not None else -1)
    )
    return VerificationReport(tuple(diagnostics), subject=subject)


def _try_dataflow(
    compiled: "CompiledProgram", diagnostics: list[Diagnostic]
) -> DataflowSummary | None:
    try:
        return analyze_dataflow(compiled, assume_external_width=True)
    except ExecutionError as error:
        diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="unsupported-instruction",
                message=str(error),
                hint="only Table 2 pLUTo instructions are executable",
            )
        )
        return None


def _check_pluto_op(
    compiled: "CompiledProgram",
    instruction: PlutoOp,
    index: int,
    summary: DataflowSummary | None,
) -> list[Diagnostic]:
    found: list[Diagnostic] = []
    table = compiled.lut_bindings.get(instruction.lut_subarray.index)
    if table is not None:
        if instruction.lut_size != table.num_entries:
            found.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="lut-size-mismatch",
                    message=(
                        f"{instruction.render()}: declares a "
                        f"{instruction.lut_size}-entry LUT but {table.name!r} "
                        f"has {table.num_entries} entries"
                    ),
                    instruction=index,
                    hint="re-lower the program against the bound table",
                )
            )
        if instruction.destination.bit_width < table.element_bits:
            found.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="narrow-output",
                    message=(
                        f"{instruction.render()}: destination "
                        f"{instruction.destination.name} is "
                        f"{instruction.destination.bit_width}-bit wide but LUT "
                        f"{table.name!r} stores {table.element_bits}-bit "
                        "elements"
                    ),
                    instruction=index,
                    hint=(
                        "widen the destination to at least "
                        f"{table.element_bits} bits"
                    ),
                )
            )
    if summary is not None and summary.facts[index].guard_needed:
        entries = (
            table.num_entries if table is not None else instruction.lut_size
        )
        bound = summary.facts[index].operand_bounds[0]
        found.append(
            Diagnostic(
                severity=Severity.WARNING,
                code="lut-index-range",
                message=(
                    f"{instruction.render()}: source "
                    f"{instruction.source.name}'s provable value bound "
                    f"{bound} reaches the {entries}-entry LUT; out-of-range "
                    "queries are rejected at runtime"
                ),
                instruction=index,
                hint=(
                    "mask the source below the table size to elide the "
                    "runtime guard"
                ),
            )
        )
    return found


def _check_bindings(compiled: "CompiledProgram") -> list[Diagnostic]:
    """Every external/output vector must be bound to a matching register."""
    found: list[Diagnostic] = []
    seen: set[str] = set()
    for role, vectors in (
        ("external input", compiled.external_inputs),
        ("output", compiled.outputs),
    ):
        for vector in vectors:
            if vector.name in seen:
                continue
            seen.add(vector.name)
            register = compiled.vector_bindings.get(vector.name)
            if register is None:
                found.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="unbound-vector",
                        message=(
                            f"{role} vector {vector.name!r} is not bound to "
                            "any row register"
                        ),
                        hint="bind it in CompiledProgram.vector_bindings",
                    )
                )
            elif (
                register.size_elements != vector.size
                or register.bit_width != vector.bit_width
            ):
                found.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="binding-mismatch",
                        message=(
                            f"{role} vector {vector.name!r} "
                            f"({vector.size} x {vector.bit_width}-bit) is "
                            f"bound to {register.name} "
                            f"({register.size_elements} x "
                            f"{register.bit_width}-bit)"
                        ),
                        hint="re-bind the vector to a matching register",
                    )
                )
    return found


# ---------------------------------------------------------------------- #
# Whole-program verification (API + compiled) and its memo
# ---------------------------------------------------------------------- #
def verify_program(
    calls: "Sequence[ApiCall]", *, subject: str = "program"
) -> VerificationReport:
    """Verify a recorded program at both levels.

    API-level errors make the program uncompilable, so compilation (and
    the ISA-level walk) only runs on an error-free call list; compile
    failures the call checks did not predict surface as a
    ``compile-failed`` diagnostic rather than an exception.
    """
    report = verify_calls(calls, subject=subject)
    if not report.ok:
        return report
    from repro.api.session import compile_cached

    try:
        compiled = compile_cached(list(calls))
    except ReproError as error:
        return report.merged(
            VerificationReport(
                (
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="compile-failed",
                        message=str(error),
                        hint="the compiler rejected the program outright",
                    ),
                ),
                subject=subject,
            )
        )
    return report.merged(verify_compiled(compiled, subject=subject))


#: Structure key -> VerificationReport (whole-program verification).
_VERIFY_MEMO: BoundedMemo[VerificationReport] = BoundedMemo(512)

#: Sentinel distinguishing "compute the key" from "known unhashable".
_KEY_UNSET: object = object()


def verify_cached(
    calls: "Sequence[ApiCall]",
    *,
    subject: str = "program",
    key: "tuple | None | object" = _KEY_UNSET,
) -> VerificationReport:
    """:func:`verify_program`, memoized on the program structure key.

    The same identity the compile/optimize/trace-template memos use, so
    serving-tier verify-on-submit costs one dict hit per repeated
    request shape.  Unhashable structures bypass the memo (counted as
    ``uncached``).  The cached report keeps its original subject; it is
    re-labelled when the caller asks for a different one.

    ``key`` lets the execution front doors pass the structure key they
    already computed for the compile cache (``None`` meaning "known
    unhashable"), so the hot path builds the key once per run.
    """
    if key is _KEY_UNSET:
        from repro.compiler.lowering import program_structure_key

        try:
            key = program_structure_key(list(calls))
            # The key tuple builds fine around unhashable parameter
            # values and only fails at hash time — probe before touching
            # the memo.
            hash(key)
        except TypeError:
            key = None
    if key is None:
        _VERIFY_MEMO.note_uncached()
        return verify_program(calls, subject=subject)
    report = _VERIFY_MEMO.get(key)
    if report is None:
        report = verify_program(calls, subject=subject)
        _VERIFY_MEMO.put(key, report)
    if report.subject != subject:
        report = VerificationReport(report.diagnostics, subject=subject)
    return report


def seed_verifier_cache(key: tuple, report: VerificationReport) -> None:
    """Install a verification report under its structure key (warm start).

    Used by the shared artifact store (:mod:`repro.serve.store`) so a
    fresh process's verify-on-submit of a known shape is a memo hit.
    """
    _VERIFY_MEMO.put(key, report)


def verifier_cache_stats() -> dict[str, int]:
    """Hit/miss counters and size of the memoized-verification cache."""
    return _VERIFY_MEMO.stats()


def clear_verifier_cache() -> None:
    """Drop every memoized verification report and reset the counters."""
    _VERIFY_MEMO.clear()


# ---------------------------------------------------------------------- #
# Shard-plan verification
# ---------------------------------------------------------------------- #
def verify_shard_plans(
    plans: Sequence[Any],
    *,
    num_banks: int | None = None,
    subject: str = "shard plan",
) -> VerificationReport:
    """Verify dispatch plans: slice aliasing, bank placement, coverage.

    ``plans`` is any sequence of plan objects with ``index`` / ``bank`` /
    ``start`` / ``stop`` attributes (bank-parallel and hierarchical
    planners both produce them); the diagnostic ``instruction`` field
    carries the shard index.  Overlapping element slices are errors —
    two shards writing one output region is the silent-corruption case
    sharded execution must never reach; gaps are warnings (legal, but
    the concatenated outputs will not cover the program's vectors).
    """
    diagnostics: list[Diagnostic] = []
    if num_banks is not None:
        overcommit = shards_overcommit_diagnostic(len(plans), num_banks)
        if overcommit is not None:
            diagnostics.append(overcommit)
    banks_seen: dict[int, int] = {}
    for plan in plans:
        if plan.start >= plan.stop:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="empty-shard",
                    message=(
                        f"shard {plan.index} covers the empty slice "
                        f"[{plan.start}, {plan.stop})"
                    ),
                    instruction=plan.index,
                    hint="plan fewer shards than elements",
                )
            )
        if num_banks is not None and not 0 <= plan.bank < num_banks:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="bank-out-of-range",
                    message=(
                        f"shard {plan.index} is placed in bank {plan.bank} "
                        f"of a {num_banks}-bank module"
                    ),
                    instruction=plan.index,
                    hint=f"banks are numbered 0..{num_banks - 1}",
                )
            )
        previous = banks_seen.get(plan.bank)
        if previous is not None:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="duplicate-bank",
                    message=(
                        f"shards {previous} and {plan.index} share bank "
                        f"{plan.bank} and will serialize"
                    ),
                    instruction=plan.index,
                    hint="place each shard in its own bank for overlap",
                )
            )
        else:
            banks_seen[plan.bank] = plan.index

    ordered = sorted(plans, key=lambda plan: (plan.start, plan.stop))
    for before, after in zip(ordered, ordered[1:]):
        if after.start < before.stop:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="aliased-slices",
                    message=(
                        f"shards {before.index} and {after.index} alias: "
                        f"slices [{before.start}, {before.stop}) and "
                        f"[{after.start}, {after.stop}) overlap"
                    ),
                    instruction=after.index,
                    hint="shard slices must be disjoint",
                )
            )
        elif after.start > before.stop:
            diagnostics.append(
                Diagnostic(
                    severity=Severity.WARNING,
                    code="slice-gap",
                    message=(
                        f"elements [{before.stop}, {after.start}) are covered "
                        f"by no shard (between shards {before.index} and "
                        f"{after.index})"
                    ),
                    instruction=after.index,
                    hint="make the slices contiguous to cover every element",
                )
            )
    return VerificationReport(tuple(diagnostics), subject=subject)


# ---------------------------------------------------------------------- #
# The optimizer's pass-invariant hook
# ---------------------------------------------------------------------- #
def check_pass_invariants(
    calls: "Sequence[ApiCall]",
    *,
    preserved: Iterable[str] | None = None,
    pass_name: str = "pipeline",
) -> VerificationReport:
    """Re-verify an optimizer pass's output; raise on broken invariants.

    Checks the rewritten call list with :func:`verify_calls` and — when
    ``preserved`` names the outputs the optimization promised to keep —
    that every one of them is still produced.  Raises
    :class:`~repro.errors.VerificationError` carrying the error
    diagnostics, so a broken rewrite is caught at the pass that
    introduced it instead of at execution.
    """
    subject = f"optimizer pass {pass_name!r} output"
    report = verify_calls(calls, subject=subject)
    diagnostics = list(report.diagnostics)
    if preserved is not None:
        produced = {call.output.name for call in calls}
        for name in sorted(frozenset(preserved) - produced):
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="output-dropped",
                    message=(
                        f"preserved output {name!r} is no longer produced by "
                        "any call"
                    ),
                    hint="passes must keep every preserved output",
                )
            )
    report = VerificationReport(tuple(diagnostics), subject=subject)
    report.raise_if_errors()
    return report

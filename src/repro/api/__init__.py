"""The pLUTo Library (Section 6.2): LUT builders and high-level routines."""

from repro.api.handles import ApiCall, PlutoVector
from repro.api.luts import (
    add_lut,
    binarize_lut,
    bitcount_lut,
    bitwise_lut,
    color_grade_lut,
    crc8_lut,
    crc16_lut,
    crc32_lut,
    exponentiation_lut,
    identity_lut,
    multiply_lut,
    permutation_lut,
    quantize_lut,
    relu_lut,
    sign_lut,
)
from repro.api.session import PlutoSession

__all__ = [
    "ApiCall",
    "PlutoVector",
    "PlutoSession",
    "add_lut",
    "binarize_lut",
    "bitcount_lut",
    "bitwise_lut",
    "color_grade_lut",
    "crc8_lut",
    "crc16_lut",
    "crc32_lut",
    "exponentiation_lut",
    "identity_lut",
    "multiply_lut",
    "permutation_lut",
    "quantize_lut",
    "relu_lut",
    "sign_lut",
]

"""The pLUTo Library (Section 6.2): LUT builders and high-level routines."""

from repro.api.handles import ApiCall, PlutoVector
from repro.api.luts import (
    add_lut,
    binarize_lut,
    bitcount_lut,
    bitwise_lut,
    color_grade_lut,
    crc8_lut,
    crc16_lut,
    crc32_lut,
    exponentiation_lut,
    identity_lut,
    multiply_lut,
    permutation_lut,
    quantize_lut,
    relu_lut,
    sign_lut,
)
from repro.api.session import (
    BatchResult,
    PlutoSession,
    clear_program_cache,
    execute_batch,
    program_cache_size,
    program_structure_key,
)

__all__ = [
    "ApiCall",
    "PlutoVector",
    "PlutoSession",
    "BatchResult",
    "execute_batch",
    "program_structure_key",
    "clear_program_cache",
    "program_cache_size",
    "add_lut",
    "binarize_lut",
    "bitcount_lut",
    "bitwise_lut",
    "color_grade_lut",
    "crc8_lut",
    "crc16_lut",
    "crc32_lut",
    "exponentiation_lut",
    "identity_lut",
    "multiply_lut",
    "permutation_lut",
    "quantize_lut",
    "relu_lut",
    "sign_lut",
]

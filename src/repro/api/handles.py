"""Handles used by the pLUTo Library: vectors and API calls.

``pluto_malloc`` returns a :class:`PlutoVector` handle; the library
routines (``api_pluto_add`` etc.) record :class:`ApiCall` objects that the
pLUTo Compiler later lowers to ISA instructions.  Keeping the API layer
symbolic (handles + calls) is what allows the compiler to analyse data
dependences and insert alignment operations (Section 6.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.lut import LookupTable
from repro.errors import ConfigurationError

__all__ = ["PlutoVector", "ApiCall"]


@dataclass(frozen=True)
class PlutoVector:
    """A handle to a pLUTo-resident vector (one or more DRAM rows)."""

    name: str
    size: int
    bit_width: int

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ConfigurationError(f"vector {self.name!r} must have positive size")
        if self.bit_width <= 0:
            raise ConfigurationError(
                f"vector {self.name!r} must have a positive bit width"
            )

    @property
    def total_bits(self) -> int:
        """Total payload size in bits."""
        return self.size * self.bit_width


@dataclass(frozen=True)
class ApiCall:
    """One recorded pLUTo Library call.

    Attributes
    ----------
    operation:
        Routine name, e.g. ``"add"``, ``"mul"``, ``"map"``, ``"and"``.
    inputs:
        Input vector handles, in operand order.
    output:
        Output vector handle.
    lut:
        For LUT-backed routines, the lookup table to query.
    parameters:
        Extra routine-specific parameters (e.g. shift amounts).
    """

    operation: str
    inputs: tuple[PlutoVector, ...]
    output: PlutoVector
    lut: LookupTable | None = None
    parameters: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.operation:
            raise ConfigurationError("API calls need a non-empty operation name")
        if not self.inputs:
            raise ConfigurationError(
                f"API call {self.operation!r} needs at least one input vector"
            )
        sizes = {vector.size for vector in self.inputs} | {self.output.size}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"API call {self.operation!r}: all operands must have the same "
                f"element count, got sizes {sorted(sizes)}"
            )

    @property
    def is_lut_query(self) -> bool:
        """Whether lowering this call produces a ``pluto_op``."""
        return self.lut is not None

"""Standard LUT builders used by the pLUTo Library routines and workloads.

Every builder returns a :class:`repro.core.lut.LookupTable`.  Binary
operations (addition, multiplication, bitwise logic) are tabulated over the
concatenation of their operands, matching the operand-merging convention of
the pLUTo compiler (``index = (left << right_bits) | right``).

Builders are memoized on their arguments (builder + operand bits +
parameters): tabulating a 256+-entry table walks nested Python loops, and
the library routines rebuild the same tables on every call otherwise.
:class:`LookupTable` is immutable, so sharing one instance is safe — and
it makes the compiled-program cache and the vectorized backend's gather
cache hit naturally, since equal LUT requests now return the *same*
object.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Callable, Sequence

from repro.core.lut import LookupTable, concat_binary_lut, lut_from_function, sequence_lut
from repro.errors import LUTError
from repro.utils.bitops import mask_of

__all__ = [
    "BITWISE_OPERATIONS",
    "identity_lut",
    "add_lut",
    "multiply_lut",
    "bitwise_lut",
    "bitcount_lut",
    "exponentiation_lut",
    "binarize_lut",
    "color_grade_lut",
    "crc8_lut",
    "crc16_lut",
    "crc32_lut",
    "permutation_lut",
    "sign_lut",
    "relu_lut",
    "quantize_lut",
]


@lru_cache(maxsize=None)
def identity_lut(bits: int) -> LookupTable:
    """LUT mapping every value to itself (used in tests and data movement)."""
    return lut_from_function(lambda x: x, bits, bits, name=f"identity{bits}")


@lru_cache(maxsize=None)
def add_lut(operand_bits: int) -> LookupTable:
    """Addition LUT for two ``operand_bits``-wide operands.

    The numerical result needs ``operand_bits + 1`` bits, but the stored
    element width equals the index width (``2 * operand_bits``) because the
    LUT element width must be at least the comparator width (footnote 5 of
    the paper); e.g. the 4-bit addition uses a 256-entry LUT with 8-bit
    elements.
    """
    return concat_binary_lut(
        lambda a, b: a + b,
        operand_bits,
        operand_bits,
        2 * operand_bits,
        name=f"add{operand_bits}",
    )


@lru_cache(maxsize=None)
def multiply_lut(operand_bits: int) -> LookupTable:
    """Multiplication LUT for two ``operand_bits``-wide operands."""
    return concat_binary_lut(
        lambda a, b: a * b,
        operand_bits,
        operand_bits,
        2 * operand_bits,
        name=f"mul{operand_bits}",
    )


#: Truth functions of the binary bitwise operations, taking the two
#: operands plus the operand width (for the complementing operations).
_BITWISE_FUNCTIONS: dict[str, Callable[[int, int, int], int]] = {
    "and": lambda a, b, bits: a & b,
    "or": lambda a, b, bits: a | b,
    "xor": lambda a, b, bits: a ^ b,
    "nand": lambda a, b, bits: (~(a & b)) & mask_of(bits),
    "nor": lambda a, b, bits: (~(a | b)) & mask_of(bits),
    "xnor": lambda a, b, bits: (~(a ^ b)) & mask_of(bits),
}

#: Binary bitwise operations every bitwise entry point accepts — derived
#: from the LUT builder's own function table, and validated against by
#: ``api_pluto_bitwise`` and ``api_pluto_bitwise_lut``, so the accepted
#: sets of the two session routines can never drift apart again.
BITWISE_OPERATIONS: frozenset[str] = frozenset(_BITWISE_FUNCTIONS)


@lru_cache(maxsize=None)
def bitwise_lut(operation: str, operand_bits: int = 1) -> LookupTable:
    """LUT for a bitwise operation over concatenated operands.

    The paper's "row-level bitwise logic" workload uses 4-entry LUTs
    (1-bit operands).
    """
    operation = operation.lower()
    function = _BITWISE_FUNCTIONS.get(operation)
    if function is None:
        raise LUTError(
            f"unsupported bitwise LUT operation {operation!r}; expected one of "
            f"{sorted(BITWISE_OPERATIONS)}"
        )
    return concat_binary_lut(
        lambda a, b: function(a, b, operand_bits),
        operand_bits,
        operand_bits,
        2 * operand_bits,
        name=f"{operation}{operand_bits}",
    )


@lru_cache(maxsize=None)
def bitcount_lut(bits: int) -> LookupTable:
    """Population-count LUT (the BC-4 / BC-8 workloads).

    The element width matches the index width so the LUT can be queried by
    a ``pluto_op`` directly (element width >= comparator width).
    """
    return lut_from_function(
        lambda x: bin(x).count("1"), bits, bits, name=f"bitcount{bits}"
    )


@lru_cache(maxsize=None)
def exponentiation_lut(bits: int, base: float = math.e, scale: float | None = None) -> LookupTable:
    """Exponentiation LUT: ``f(x) = round(scale * base**(x / 2**bits))``.

    The input is treated as a fixed-point fraction in [0, 1); the output is
    an unsigned ``bits``-wide integer.  This is the "8-bit exponentiation"
    entry of Table 6.
    """
    if scale is None:
        scale = (mask_of(bits)) / (base ** 1.0)

    def _exp(x: int) -> int:
        value = scale * (base ** (x / float(1 << bits)))
        return min(mask_of(bits), int(round(value)))

    return lut_from_function(_exp, bits, bits, name=f"exp{bits}")


@lru_cache(maxsize=None)
def binarize_lut(threshold: int, bits: int = 8) -> LookupTable:
    """Image binarization LUT: 1 if the pixel exceeds ``threshold`` else 0.

    The paper binarizes 8-bit pixels against a 50 % threshold; the output is
    stored as an 8-bit element (0 or 255) so it remains a displayable image.
    """
    if not 0 <= threshold <= mask_of(bits):
        raise LUTError(f"threshold {threshold} outside the {bits}-bit pixel range")
    return lut_from_function(
        lambda x: mask_of(bits) if x > threshold else 0,
        bits,
        bits,
        name=f"binarize{bits}_t{threshold}",
    )


def color_grade_lut(
    curve: Callable[[float], float] | None = None, bits: int = 8
) -> LookupTable:
    """Colour-grading LUT: an 8-bit-to-8-bit tone curve (Final Cut style).

    The default curve is a smooth S-curve (gamma lift in the shadows, roll
    off in the highlights), the classic "cinematic" grade.  Caching is
    keyed on the tabulated values (not the curve callable's identity), so
    equal curves share one LookupTable even when passed as fresh lambdas.
    """
    full_scale = mask_of(bits)

    def _default_curve(x: float) -> float:
        # Smoothstep-based S-curve on normalised intensity.
        return x * x * (3.0 - 2.0 * x)

    curve = curve or _default_curve
    values = tuple(
        int(round(min(1.0, max(0.0, curve(x / full_scale))) * full_scale))
        for x in range(full_scale + 1)
    )
    return _color_grade_lut_cached(values, bits)


@lru_cache(maxsize=128)
def _color_grade_lut_cached(values: tuple[int, ...], bits: int) -> LookupTable:
    return LookupTable(
        values=values, index_bits=bits, element_bits=bits, name=f"colorgrade{bits}"
    )


# --------------------------------------------------------------------- #
# CRC byte tables (standard table-driven CRC, Hacker's Delight style)
# --------------------------------------------------------------------- #
def _crc_table(width: int, polynomial: int, reflected: bool) -> list[int]:
    table = []
    top_bit = 1 << (width - 1)
    for byte in range(256):
        if reflected:
            crc = byte
            for _ in range(8):
                crc = (crc >> 1) ^ (polynomial if crc & 1 else 0)
        else:
            crc = byte << (width - 8)
            for _ in range(8):
                crc = ((crc << 1) ^ polynomial) if crc & top_bit else (crc << 1)
            crc &= mask_of(width)
        table.append(crc & mask_of(width))
    return table


@lru_cache(maxsize=None)
def crc8_lut(polynomial: int = 0x07) -> LookupTable:
    """Byte-indexed CRC-8 table (SMBus polynomial by default)."""
    return LookupTable(
        values=tuple(_crc_table(8, polynomial, reflected=False)),
        index_bits=8,
        element_bits=8,
        name="crc8",
    )


@lru_cache(maxsize=None)
def crc16_lut(polynomial: int = 0x1021) -> LookupTable:
    """Byte-indexed CRC-16 table (CCITT polynomial by default)."""
    return LookupTable(
        values=tuple(_crc_table(16, polynomial, reflected=False)),
        index_bits=8,
        element_bits=16,
        name="crc16",
    )


@lru_cache(maxsize=None)
def crc32_lut(polynomial: int = 0xEDB88320) -> LookupTable:
    """Byte-indexed CRC-32 table (reflected IEEE 802.3 polynomial)."""
    return LookupTable(
        values=tuple(_crc_table(32, polynomial, reflected=True)),
        index_bits=8,
        element_bits=32,
        name="crc32",
    )


def permutation_lut(permutation: Sequence[int], bits: int = 8, name: str = "sbox") -> LookupTable:
    """Substitution-table LUT from an explicit permutation (VMPC S-box style)."""
    return _permutation_lut_cached(tuple(int(v) for v in permutation), bits, name)


@lru_cache(maxsize=128)
def _permutation_lut_cached(permutation: tuple[int, ...], bits: int, name: str) -> LookupTable:
    if len(permutation) != (1 << bits):
        raise LUTError(
            f"permutation length {len(permutation)} does not match {bits}-bit domain"
        )
    if sorted(permutation) != list(range(1 << bits)):
        raise LUTError("permutation must contain every value exactly once")
    return sequence_lut(list(permutation), bits, name=name)


# --------------------------------------------------------------------- #
# Quantized-neural-network LUTs (Section 9)
# --------------------------------------------------------------------- #
@lru_cache(maxsize=None)
def sign_lut(bits: int = 8) -> LookupTable:
    """Binarization/sign activation for 1-bit networks: 1 if x >= midpoint."""
    midpoint = 1 << (bits - 1)
    return lut_from_function(
        lambda x: 1 if x >= midpoint else 0, bits, bits, name=f"sign{bits}"
    )


@lru_cache(maxsize=None)
def relu_lut(bits: int = 8) -> LookupTable:
    """ReLU on two's-complement ``bits``-wide values."""
    sign_bit = 1 << (bits - 1)
    return lut_from_function(
        lambda x: 0 if x & sign_bit else x, bits, bits, name=f"relu{bits}"
    )


@lru_cache(maxsize=None)
def quantize_lut(input_bits: int, output_bits: int) -> LookupTable:
    """Requantization LUT: drop the least-significant bits of an accumulator."""
    if output_bits > input_bits:
        raise LUTError("cannot quantize to a wider format")
    shift = input_bits - output_bits
    return lut_from_function(
        lambda x: x >> shift, input_bits, input_bits, name=f"quant{input_bits}to{output_bits}"
    )

"""Async serving frontend for pLUTo programs.

The ROADMAP's north star is a system that serves heavy traffic, not a
one-shot script, so this module puts an :mod:`asyncio` service above the
execution stack:

* a **bounded request queue** — :meth:`PlutoService.submit` applies
  backpressure by awaiting a queue slot, and
  :meth:`PlutoService.submit_nowait` raises
  :class:`~repro.errors.ServiceOverloadError` immediately when the queue
  is full, so callers can shed load instead of buffering without bound;
* **compiled-program cache reuse** — requests compile through the
  process-wide structure-keyed cache (:func:`repro.api.session.compile_cached`),
  so a million structurally identical requests compile once;
* **batch coalescing** — the worker drains the queue and groups
  consecutive requests with the same program structure into one batch
  executed on one warm controller (shared backend LUT gather arrays);
* **per-request latency accounting** — every :class:`ServedResult` carries
  the wall-clock queue wait and execution time next to the modelled DRAM
  latency of its program;
* **warm memo caches** — repeat requests hit the process-wide compiled
  program, trace-template, and scheduler-makespan memos (hierarchical
  requests re-merge nothing), and
  :meth:`ServiceStats.cache_stats` reports their effectiveness;
* **program optimization** — with ``optimize=True`` every request runs
  through the pass pipeline of :mod:`repro.opt` (memoized on program
  structure) before compilation, and batches coalesce on the
  *post-optimization* structure key, so all downstream memo layers work
  on the rewritten, cheaper program.

How each request executes is governed by one
:class:`~repro.plan.ExecutionPlan` (the service-wide ``plan=``): the plain
controller for unsharded plans, the bank-parallel
:class:`~repro.controller.dispatch.ParallelDispatcher` for sharded plans,
or the :class:`~repro.controller.hierarchy.HierarchicalDispatcher` for
hierarchical plans.  With ``plan="auto"`` the cost-based planner
(:func:`repro.plan.plan_program`) prices the candidate configurations per
distinct request structure — memoized, so a coalesced batch plans once —
and each :class:`ServedResult` carries the chosen plan and its
:class:`~repro.plan.PlannerReport`.
"""

from __future__ import annotations

import asyncio
import time
import warnings
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Mapping, Sequence

import numpy as np

from repro.api.session import _LEGACY_UNSET
from repro.errors import ServiceClosedError, ServiceOverloadError
from repro.obs.metrics import record_served_request, request_accounting
from repro.obs.trace import (
    RequestTrace,
    Span,
    activate,
    deactivate,
    new_trace,
    span_of,
)
from repro.serve.stats import LatencyBreakdown

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.api.session import PlutoSession
    from repro.controller.executor import ExecutionResult
    from repro.core.engine import PlutoEngine
    from repro.opt.report import OptimizationReport
    from repro.plan.execution_plan import ExecutionPlan
    from repro.plan.planner import PlannerReport

__all__ = ["PlutoService", "ServedResult", "ServiceStats"]


@dataclass
class ServedResult:
    """One served request: outputs plus latency accounting."""

    request_id: int
    outputs: dict[str, np.ndarray]
    #: Modelled DRAM latency of the program (makespan when hierarchical).
    latency_ns: float
    #: Modelled DRAM energy of the program.
    energy_nj: float
    #: Wall-clock seconds spent queued before execution started.
    queue_wait_s: float
    #: Wall-clock seconds spent executing.
    execute_s: float
    #: Number of requests coalesced into the batch this one ran in.
    batch_size: int
    #: Execution backend that produced the outputs.
    backend: str
    #: The full execution result (trace, registers, per-shard results).
    result: "ExecutionResult"
    #: Program-optimizer report for this request (None when unoptimized).
    optimization: "OptimizationReport | None" = None
    #: The concrete plan this request executed under.
    execution_plan: "ExecutionPlan | None" = None
    #: Planner report when the plan came from ``plan="auto"``.
    planner: "PlannerReport | None" = None
    #: Span tree of this request's trip through the stack
    #: (``None`` unless :func:`repro.obs.enable_tracing` is on).
    request_trace: "RequestTrace | None" = None

    @property
    def turnaround_s(self) -> float:
        """Wall-clock seconds from submission to completion."""
        return self.queue_wait_s + self.execute_s


@dataclass
class ServiceStats:
    """Aggregate counters over the lifetime of one service."""

    served: int = 0
    failed: int = 0
    rejected: int = 0
    batches: int = 0
    coalesced: int = 0
    max_queue_depth: int = 0
    total_queue_wait_s: float = 0.0
    total_execute_s: float = 0.0
    total_latency_ns: float = 0.0
    #: Requests run through the program optimizer before compilation.
    optimized: int = 0
    #: Optimizer savings summed over every optimized request
    #: (:meth:`repro.opt.report.OptimizationReport.counters`).
    optimizer_ops_saved: int = 0
    optimizer_lut_queries_saved: int = 0
    optimizer_swept_rows_saved: int = 0
    optimizer_lut_loads_saved: int = 0
    #: Streaming latency distributions (queue wait, execute, end-to-end):
    #: mergeable log-bucketed histograms, so p50/p95/p99 are available at
    #: any point in the service's life and worker-pool dispatchers can
    #: fold per-worker stats into pool-wide percentiles.
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)

    def summary(self) -> dict:
        """Counters plus p50/p95/p99 latency percentiles (picklable).

        The reporting shape of the serving tier: every counter of this
        dataclass, with the three latency distributions rendered as
        :meth:`~repro.serve.stats.LatencyHistogram.summary` snapshots.
        """
        return {
            "served": self.served,
            "failed": self.failed,
            "rejected": self.rejected,
            "batches": self.batches,
            "coalesced": self.coalesced,
            "max_queue_depth": self.max_queue_depth,
            "mean_queue_wait_s": self.mean_queue_wait_s,
            "mean_batch_size": self.mean_batch_size,
            "total_latency_ns": self.total_latency_ns,
            "optimized": self.optimized,
            "latency": self.latency.summary(),
        }

    @property
    def mean_queue_wait_s(self) -> float:
        """Average wall-clock queue wait per served request."""
        return self.total_queue_wait_s / self.served if self.served else 0.0

    @property
    def mean_batch_size(self) -> float:
        """Average number of requests executed per coalesced batch."""
        return self.served / self.batches if self.batches else 0.0

    @staticmethod
    def cache_stats() -> dict[str, dict]:
        """Memo effectiveness of the execution stack serving the requests.

        A snapshot of the process-wide caches (compiled programs, trace
        templates, scheduler makespan memo, hierarchical schedules,
        per-engine helpers, LUT gather arrays) — repeat requests for the
        same program structure should show the hit counters climbing
        while the miss counters stay put.
        """
        from repro.api.session import cache_stats

        return cache_stats()


@dataclass
class _PendingRequest:
    request_id: int
    calls: list
    inputs: dict[str, np.ndarray]
    #: Backend selection of the session this request came from.
    backend: object
    enqueued_at: float
    future: "asyncio.Future[ServedResult]"
    #: Structure key of ``calls`` (post-optimization when optimized);
    #: ``None`` is the single unhashable-structure sentinel, used both to
    #: keep such requests out of coalesced batches and to skip the
    #: structure-keyed memo layers.
    structure_key: tuple | None = field(default=None)
    #: Whether ``calls`` went through the program optimizer.
    optimized: bool = False
    #: The optimizer's report for this request, when optimized.
    optimization: "OptimizationReport | None" = None
    #: The concrete plan this request executes under (auto plans are
    #: resolved by the planner at submission time).
    plan: "ExecutionPlan | None" = None
    #: Planner report when the service plans automatically.
    planner: "PlannerReport | None" = None
    #: Request trace collecting per-stage spans (``None`` when tracing is off).
    trace: "RequestTrace | None" = None

    @property
    def backend_key(self) -> object:
        """Hashable identity of the backend (names share, instances don't)."""
        return self.backend if isinstance(self.backend, str) else id(self.backend)

    @property
    def coalesce_key(self) -> object:
        """Batch identity: requests coalesce iff these keys are equal.

        Optimized requests carry their *post-optimization* structure key,
        and the concrete :class:`~repro.plan.ExecutionPlan` is part of
        the key, so requests only share a batch when they run the same
        program the same way (an optimized and an unoptimized recording
        of the same program never coalesce).  Requests with unhashable
        structure get an identity key and run alone.
        """
        if self.structure_key is None:
            return (id(self),)
        return (self.structure_key, self.backend_key, self.plan)


class PlutoService:
    """An asyncio frontend that serves pLUTo programs from a queue.

    ``session`` fixes the default program every request runs (requests may
    override it by passing their own session to :meth:`submit`).  Use as an
    async context manager::

        async with session.serve(max_queue=128) as service:
            results = await asyncio.gather(
                *(service.submit(inputs) for inputs in request_stream)
            )

    ``max_queue`` bounds the number of queued requests (backpressure);
    ``max_batch`` caps how many structurally identical requests one batch
    coalesces.  ``plan`` is the service-wide
    :class:`~repro.plan.ExecutionPlan` (or ``"auto"``) every request
    executes under — sharding, hierarchy placement, optimizer, and
    execution tier, exactly as in :meth:`PlutoSession.run`; with
    ``"auto"`` the cost-based planner resolves a concrete plan per
    distinct request structure (memoized, so one planning pass serves a
    whole coalesced batch).  A plan with ``optimize=True`` runs every
    request's program through the optimizer (:mod:`repro.opt`) before
    compilation — memoized on program structure, with the batch
    coalescing then keyed on the *post-optimization* structure so the
    compile, trace-template, and makespan caches all hit on the
    rewritten program.  The deprecated ``hierarchical=`` / ``shards=`` /
    ``optimize=`` keywords build the equivalent plan with a
    ``DeprecationWarning``.
    ``verify=True`` (the default) statically verifies every request's
    program at submission and rejects malformed ones with
    :class:`~repro.errors.VerificationError` carrying the structured
    diagnostics — *before* the request takes a queue slot, so a bad
    program cannot crash the warm worker loop.  Verification reports
    are memoized on the program structure key, so repeated request
    shapes cost one dict hit.
    """

    def __init__(
        self,
        session: "PlutoSession",
        *,
        engine: "PlutoEngine | None" = None,
        max_queue: int = 64,
        max_batch: int = 16,
        plan: "ExecutionPlan | str | None" = None,
        hierarchical: object = _LEGACY_UNSET,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
        verify: bool = True,
    ) -> None:
        from repro.errors import ConfigurationError
        from repro.plan.execution_plan import ExecutionPlan, resolve_plan

        if max_queue <= 0:
            raise ConfigurationError("max_queue must be positive")
        if max_batch <= 0:
            raise ConfigurationError("max_batch must be positive")
        legacy: dict[str, object] = {}
        if hierarchical is not _LEGACY_UNSET:
            legacy["hierarchical"] = hierarchical
        if shards is not _LEGACY_UNSET:
            legacy["shards"] = shards
        if optimize is not _LEGACY_UNSET:
            legacy["optimize"] = optimize
        if legacy:
            if plan is not None:
                raise ConfigurationError(
                    "PlutoService got both plan= and the deprecated "
                    f"{sorted(legacy)} keyword(s); pass only plan="
                )
            names = ", ".join(f"{name}=" for name in sorted(legacy))
            warnings.warn(
                f"PlutoService({names}) is deprecated; pass "
                "plan=ExecutionPlan(...) (or plan='auto') instead",
                DeprecationWarning,
                stacklevel=3,
            )
            wants_hierarchy = bool(legacy.get("hierarchical", False))
            plan = ExecutionPlan(
                hierarchical=wants_hierarchy,
                # The legacy shards= knob only ever applied to
                # hierarchical dispatch; plain services ignored it.
                shards=legacy.get("shards") if wants_hierarchy else None,  # type: ignore[arg-type]
                optimize=legacy.get("optimize"),  # type: ignore[arg-type]
            )
        if plan is None and engine is not None:
            plan = engine.config.plan
        self.session = session
        self.engine = engine
        self.max_queue = max_queue
        self.max_batch = max_batch
        self.plan = resolve_plan(plan)
        self.verify = verify
        self.stats = ServiceStats()
        self._queue: asyncio.Queue[_PendingRequest] | None = None
        self._worker: asyncio.Task | None = None
        #: A drained-but-unprocessed request: the first one whose program
        #: structure did not match its batch leader's.  It leads the next
        #: batch (arrival order is preserved).
        self._pending: _PendingRequest | None = None
        self._next_id = 0
        #: Warm executors, keyed on backend selection plus the plan
        #: facets that shape the executor (tier, placement).
        self._controllers: dict[object, object] = {}
        self._dispatchers: dict[object, object] = {}
        #: Structure keys this service has already verified: repeat shapes
        #: skip the per-request verify span (the memoized check itself still
        #: runs), keeping the traced hot path under the overhead gate.
        self._verified_keys: set = set()
        #: Coalesce wall-clock of the batch currently being executed,
        #: stashed by the worker loop for the coalesce span.
        self._coalesce_ns = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    @property
    def running(self) -> bool:
        """Whether the worker loop is accepting requests."""
        return self._worker is not None and not self._worker.done()

    async def __aenter__(self) -> "PlutoService":
        self.start()
        return self

    async def __aexit__(self, *exc_info: object) -> None:
        await self.close()

    def start(self) -> None:
        """Start the worker loop (idempotent)."""
        if self.running:
            return
        self._queue = asyncio.Queue(maxsize=self.max_queue)
        self._worker = asyncio.get_running_loop().create_task(self._run())
        self._worker.add_done_callback(self._on_worker_done)

    def _on_worker_done(self, worker: "asyncio.Task") -> None:
        """If the worker loop died, fail queued requests immediately.

        Without this, a crashed worker would leave submitters awaiting
        until :meth:`close` — retrieving the exception here also keeps
        asyncio from logging it as never-retrieved.
        """
        if worker.cancelled():
            return
        error = worker.exception()
        if error is not None:
            self._fail_pending(error)

    async def close(self) -> None:
        """Drain the queue, stop the worker, and reject new submissions.

        Requests that never ran — because the worker died, or because a
        producer slipped one in during shutdown — get
        :class:`~repro.errors.ServiceClosedError` (or the worker's crash)
        set on their futures, so no caller is left awaiting forever.
        """
        worker, queue = self._worker, self._queue
        self._worker = None
        crash: BaseException | None = None
        if worker is not None:
            if not worker.done() and queue is not None:
                # Drain gracefully, but stop waiting if the worker dies
                # first (its queue would never empty).
                join = asyncio.ensure_future(queue.join())
                await asyncio.wait(
                    {join, worker}, return_when=asyncio.FIRST_COMPLETED
                )
                if not join.done():
                    join.cancel()
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass
            except Exception as error:  # the worker loop crashed
                crash = error
        self._fail_pending(
            crash
            if crash is not None
            else ServiceClosedError("service closed before the request ran")
        )

    def _fail_pending(self, error: BaseException) -> None:
        """Resolve every request that will never execute with ``error``."""
        leftovers: list[_PendingRequest] = []
        if self._pending is not None:
            leftovers.append(self._pending)
            self._pending = None
        if self._queue is not None:
            while not self._queue.empty():
                leftovers.append(self._queue.get_nowait())
        for request in leftovers:
            self.stats.failed += 1
            if not request.future.done():
                request.future.set_exception(error)

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    async def submit(
        self,
        inputs: Mapping[str, np.ndarray],
        *,
        session: "PlutoSession | None" = None,
        plan: "ExecutionPlan | str | None" = None,
        optimize: bool | None = None,
    ) -> ServedResult:
        """Queue one request and await its result.

        Blocks (asynchronously) while the bounded queue is full — this is
        the service's backpressure: a flood of producers is slowed to the
        rate the executor drains, instead of buffering without bound.
        ``plan`` overrides the service-wide execution plan for this
        request; the deprecated ``optimize=`` keyword adjusts only the
        plan's optimizer flag (with a ``DeprecationWarning``).
        """
        request = self._make_request(inputs, session, plan, optimize)
        queue = self._require_queue()
        await queue.put(request)
        self._note_depth(queue)
        return await request.future

    async def submit_many(
        self,
        inputs_list: "Sequence[Mapping[str, np.ndarray]]",
        *,
        session: "PlutoSession | None" = None,
        plan: "ExecutionPlan | str | None" = None,
    ) -> "list[ServedResult]":
        """Queue a bulk of requests and await every result, in order.

        The bulk client helper: submissions enter the queue together, so
        consecutive same-structure requests coalesce into fused batches,
        and the bounded queue's backpressure applies exactly as for
        :meth:`submit`.  The first failed request re-raises its error
        after every submission has settled (no request is abandoned
        mid-queue).
        """
        results = await asyncio.gather(
            *(
                self.submit(inputs, session=session, plan=plan)
                for inputs in inputs_list
            ),
            return_exceptions=True,
        )
        for result in results:
            if isinstance(result, BaseException):
                raise result
        return results  # type: ignore[return-value]

    def submit_nowait(
        self,
        inputs: Mapping[str, np.ndarray],
        *,
        session: "PlutoSession | None" = None,
        plan: "ExecutionPlan | str | None" = None,
        optimize: bool | None = None,
    ) -> "asyncio.Future[ServedResult]":
        """Enqueue without waiting; shed load when the queue is full.

        Synchronous on purpose: the enqueue-or-reject decision happens at
        call time, so a producer can catch
        :class:`~repro.errors.ServiceOverloadError` and back off
        immediately.  Returns a future resolving to the
        :class:`ServedResult`.  ``plan`` / ``optimize`` as in
        :meth:`submit`.
        """
        request = self._make_request(inputs, session, plan, optimize)
        queue = self._require_queue()
        try:
            queue.put_nowait(request)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise ServiceOverloadError(
                f"request queue is full ({self.max_queue} pending requests)"
            ) from None
        self._note_depth(queue)
        return request.future

    def _request_plan(
        self, plan: "ExecutionPlan | str | None", optimize: bool | None
    ) -> "ExecutionPlan":
        """The effective plan for one request: override or service-wide.

        The deprecated per-request ``optimize=`` keyword keeps its old
        meaning — it adjusts only the optimizer flag of the service-wide
        plan (auto plans search with the flag pinned).
        """
        from repro.errors import ConfigurationError
        from repro.plan.execution_plan import resolve_plan

        if optimize is not None:
            if plan is not None:
                raise ConfigurationError(
                    "submit() got both plan= and the deprecated optimize= "
                    "keyword; pass only plan="
                )
            warnings.warn(
                "submit(optimize=) is deprecated; pass "
                "plan=ExecutionPlan(optimize=...) (or plan='auto') instead",
                DeprecationWarning,
                stacklevel=4,
            )
            return replace(self.plan, optimize=bool(optimize))
        if plan is None:
            return self.plan
        return resolve_plan(plan)

    def _make_request(
        self,
        inputs: Mapping[str, np.ndarray],
        session: "PlutoSession | None",
        plan: "ExecutionPlan | str | None" = None,
        optimize: bool | None = None,
    ) -> _PendingRequest:
        if not self.running:
            raise ServiceClosedError(
                "service is not running; use 'async with session.serve()' "
                "or call start() first"
            )
        source = session if session is not None else self.session
        request_plan = self._request_plan(plan, optimize)
        calls = list(source.calls)
        planner_report: "PlannerReport | None" = None
        trace = new_trace("service", request_id=self._next_id)
        token = activate(trace)
        try:
            with span_of(trace, "submit"):
                if request_plan.is_auto:
                    from repro.backend.base import resolve_backend
                    from repro.plan.planner import plan_program

                    with span_of(trace, "plan") as plan_span:
                        planned = plan_program(
                            calls,
                            self.engine,
                            request=request_plan,
                            modes=("single", "banks", "hierarchy"),
                            supports_batched=resolve_backend(
                                source.backend
                            ).supports_batched,
                            subject="request",
                        )
                        request_plan, planner_report = planned.plan, planned.report
                        plan_span.set(cached=planner_report.cached)
                optimized = request_plan.optimize
                if optimized is None:
                    optimized = (
                        self.engine is not None and self.engine.config.optimize
                    )
                report = None
                if optimized:
                    from repro.opt.pipeline import optimize_cached

                    with span_of(trace, "optimize"):
                        program = optimize_cached(calls)
                        calls = list(program.calls)
                        report = program.report
                structure_key = self._structure_key(calls)
                if self.verify:
                    # Reject malformed programs at submission —
                    # synchronously, before the request takes a queue slot
                    # — with the structured diagnostics on the raised
                    # VerificationError.  Memoized on the program structure
                    # key (reusing the coalescing key computed above), so
                    # repeat shapes cost a dict hit.
                    from repro.analyze.verifier import verify_cached

                    if structure_key in self._verified_keys:
                        verify_cached(
                            calls, subject="request", key=structure_key
                        ).raise_if_errors()
                    else:
                        with span_of(trace, "verify"):
                            verify_cached(
                                calls, subject="request", key=structure_key
                            ).raise_if_errors()
                        if structure_key is not None:
                            self._verified_keys.add(structure_key)
        finally:
            deactivate(token)
        request = _PendingRequest(
            request_id=self._next_id,
            calls=calls,
            inputs={name: np.asarray(data) for name, data in inputs.items()},
            backend=source.backend,
            enqueued_at=time.monotonic(),
            future=asyncio.get_running_loop().create_future(),
            structure_key=structure_key,
            optimized=optimized,
            optimization=report,
            plan=request_plan,
            planner=planner_report,
            trace=trace,
        )
        self._next_id += 1
        return request

    @staticmethod
    def _structure_key(calls: list) -> tuple | None:
        """The program structure key, or ``None`` when unhashable.

        The key tuple builds fine around unhashable parameter values
        (e.g. lists) and only fails at hash time, so hashability is
        probed here — downstream the key is both compared (coalescing)
        and hashed (compile/trace-template memos).
        """
        from repro.api.session import program_structure_key

        try:
            key = program_structure_key(calls)
            hash(key)
            return key
        except TypeError:
            return None

    def _require_queue(self) -> "asyncio.Queue[_PendingRequest]":
        if self._queue is None:
            raise ServiceClosedError("service has no queue; call start() first")
        return self._queue

    def _note_depth(self, queue: "asyncio.Queue[_PendingRequest]") -> None:
        self.stats.max_queue_depth = max(self.stats.max_queue_depth, queue.qsize())

    # ------------------------------------------------------------------ #
    # Worker loop
    # ------------------------------------------------------------------ #
    async def _run(self) -> None:
        queue = self._require_queue()
        while True:
            if self._pending is not None:
                leader, self._pending = self._pending, None
            else:
                leader = await queue.get()
            batch = [leader]
            try:
                coalesce_start = time.perf_counter_ns()
                self._coalesce_into(batch, queue)
                # Stashed on the instance (not passed as an argument) so
                # _execute_batch keeps its original batch-only signature.
                self._coalesce_ns = time.perf_counter_ns() - coalesce_start
                self._execute_batch(batch)
            except BaseException as error:
                # The loop itself failed (per-request execution errors are
                # handled inside _execute_batch): resolve the in-flight
                # requests before the worker dies, so no submitter hangs.
                for request in batch:
                    if not request.future.done():
                        self.stats.failed += 1
                        request.future.set_exception(error)
                raise
            finally:
                # One task_done per drained request (the held-over
                # ``_pending`` request is acknowledged with *its* batch,
                # so ``queue.join()`` waits for it to actually run).
                for _ in batch:
                    queue.task_done()
            # Yield so producers blocked on the bounded queue make progress
            # before the next batch is drained.
            await asyncio.sleep(0)

    def _coalesce_into(
        self,
        batch: "list[_PendingRequest]",
        queue: "asyncio.Queue[_PendingRequest]",
    ) -> None:
        """Pull queued requests with the same program structure into ``batch``.

        Only *consecutive* structurally identical requests coalesce, so
        results keep arrival order; the first request for a different
        program is parked in ``_pending`` and leads the next batch.
        Keys are computed at submission time (post-optimization for
        optimized requests); requests with unhashable structure carry
        the ``None`` sentinel and never coalesce.
        """
        leader_key = batch[0].coalesce_key
        while len(batch) < self.max_batch and not queue.empty():
            candidate = queue.get_nowait()
            if candidate.coalesce_key != leader_key:
                self._pending = candidate
                break
            batch.append(candidate)

    @staticmethod
    def _note_queue_wait(
        request: _PendingRequest,
        queue_wait_s: float,
        coalesce_ns: int,
        batch: int,
        shared_coalesce: "Span | None" = None,
    ) -> None:
        """Record the explicit queue-wait span (with its coalesce slice).

        Built directly (one timer read, no scope machinery): this runs per
        request on the traced hot path, and no span scope is open on the
        request's own trace here, so the spans attach at the top level.
        ``shared_coalesce`` lets the fused batch path reuse one coalesce
        child (identical timing/attributes for every member) across the
        whole batch — surviving span allocations are what drive extra GC
        work in traced serving, so batches share where values coincide.
        """
        if request.trace is None:
            return
        if shared_coalesce is None:
            now = time.perf_counter_ns()
            shared_coalesce = Span(
                "coalesce", now - coalesce_ns, coalesce_ns, {"batch_size": batch}
            )
        else:
            now = shared_coalesce.end_ns
        wait_ns = int(queue_wait_s * 1e9)
        wait = Span("queue_wait", now - wait_ns, wait_ns)
        wait.children = [shared_coalesce]
        request.trace.spans.append(wait)

    def _execute_batch(self, batch: "list[_PendingRequest]") -> None:
        coalesce_ns = self._coalesce_ns
        self.stats.batches += 1
        self.stats.coalesced += len(batch) - 1
        # Only plain single-bank plans fuse into one batched pass;
        # sharded and hierarchical plans go through their dispatchers.
        leader_plan = batch[0].plan
        simple = leader_plan is None or (
            not leader_plan.hierarchical and leader_plan.effective_shards == 1
        )
        if (
            len(batch) > 1
            and simple
            and self._execute_batch_fused(batch, coalesce_ns)
        ):
            return
        for request in batch:
            begin = time.monotonic()
            self._note_queue_wait(
                request, begin - request.enqueued_at, coalesce_ns, len(batch)
            )
            token = activate(request.trace)
            try:
                with span_of(request.trace, "execute"):
                    result = self._execute(request)
            except Exception as error:  # surface on the caller's future
                self.stats.failed += 1
                if not request.future.cancelled():
                    request.future.set_exception(error)
                continue
            finally:
                deactivate(token)
            finish = time.monotonic()
            served = ServedResult(
                request_id=request.request_id,
                outputs=result.outputs,
                latency_ns=result.latency_ns,
                energy_nj=result.energy_nj,
                # Everything before *this request's* execution counts as
                # queueing — including earlier requests of its own batch —
                # so turnaround_s is true submission-to-completion time.
                queue_wait_s=begin - request.enqueued_at,
                execute_s=finish - begin,
                batch_size=len(batch),
                backend=result.backend,
                result=result,
                optimization=request.optimization,
                execution_plan=request.plan,
                planner=(
                    request.planner.with_measured(result.latency_ns)
                    if request.planner is not None
                    else None
                ),
                request_trace=request.trace,
            )
            self._account_served(request, served)
            if not request.future.cancelled():
                request.future.set_result(served)

    def _account_served(self, request: _PendingRequest, served: ServedResult) -> None:
        """Fold one successfully executed request into the aggregates.

        Optimizer savings are counted here — not at submission — so
        load-shed or never-run requests cannot inflate the counters.
        """
        self.stats.served += 1
        self.stats.total_queue_wait_s += served.queue_wait_s
        self.stats.total_execute_s += served.execute_s
        self.stats.total_latency_ns += served.latency_ns
        self.stats.latency.observe_result(served)
        # Per-request hardware attribution: DRAM command counts, energy in
        # picojoules, and refresh overhead, memoized on the (shared, for
        # warm JIT requests) command trace so the hot path pays a dict hit.
        command_trace = getattr(served.result, "trace", None)
        accounting = (
            request_accounting(command_trace) if command_trace is not None else None
        )
        if served.request_trace is not None and accounting is not None:
            attributes = served.request_trace.attributes
            attributes.update(accounting)
            attributes["latency_ns"] = served.latency_ns
            attributes["backend"] = served.backend
            attributes["batch_size"] = served.batch_size
        record_served_request(
            path="service",
            end_to_end_s=served.turnaround_s,
            queue_wait_s=served.queue_wait_s,
            execute_s=served.execute_s,
            energy_nj=served.energy_nj,
            commands=(
                accounting["dram_commands_by_type"] if accounting is not None else None
            ),
        )
        report = request.optimization
        if request.optimized and report is not None:
            self.stats.optimized += 1
            self.stats.optimizer_ops_saved += report.ops_saved
            self.stats.optimizer_lut_queries_saved += report.lut_queries_saved
            self.stats.optimizer_swept_rows_saved += report.swept_rows_saved
            self.stats.optimizer_lut_loads_saved += report.lut_loads_saved

    def _execute_batch_fused(
        self, batch: "list[_PendingRequest]", coalesce_ns: int = 0
    ) -> bool:
        """Run a coalesced batch in one fused controller pass.

        The batch shares one program structure by construction, so the
        per-request input sets stack into a ``(requests, elements)`` array
        and execute as a single pass
        (:meth:`~repro.controller.executor.PlutoController.execute_fused`)
        — one gather per LUT query for the whole batch, with each
        request's trace synthesized from the shared template.  Returns
        ``False`` (leaving the batch untouched) when the backend cannot
        batch or the inputs do not stack; the per-request loop then
        surfaces any individual errors.
        """
        controller = self._controller_for(batch[0])
        if not controller.backend.supports_batched:
            return False
        from repro.api.session import compile_cached

        names = set(batch[0].inputs)
        if any(set(request.inputs) != names for request in batch[1:]):
            # Differing provided-input sets seed different registers; the
            # per-request loop handles them individually.
            return False
        # The unified sentinel: ``None`` structure keys (unhashable
        # programs) simply skip the trace-template memo.
        structure_key = batch[0].structure_key
        leader = batch[0]
        begin = time.monotonic()
        # The fused pass runs once for the whole batch: the leader's trace
        # is context-active so inner stages (compile, backend) attach their
        # spans to it; followers get explicit evenly-attributed spans below.
        token = activate(leader.trace)
        fused_span: Span | None = None
        try:
            with span_of(
                leader.trace, "execute", fused=True, batch_size=len(batch)
            ) as opened:
                if isinstance(opened, Span):
                    fused_span = opened
                compiled = compile_cached(batch[0].calls)
                stacked = {
                    name: np.stack([request.inputs[name] for request in batch])
                    for name in batch[0].inputs
                }
                results = controller.execute_fused(
                    compiled,
                    stacked,
                    banks=[0] * len(batch),
                    structure_key=structure_key,
                )
        except Exception:
            # The per-request fallback loop will record its own execute
            # span; drop the aborted fused one so stage sums stay honest.
            if fused_span is not None and leader.trace is not None:
                if fused_span in leader.trace.spans:
                    leader.trace.spans.remove(fused_span)
            return False
        finally:
            deactivate(token)
        finish = time.monotonic()
        # The pass ran once for everyone: attribute the wall-clock evenly.
        execute_s = (finish - begin) / len(batch)
        execute_ns = int(execute_s * 1e9)
        finish_ns = time.perf_counter_ns()
        if fused_span is not None:
            # Shrink the leader's span to its even share too, keeping the
            # full batch wall-clock as an attribute, so every request's
            # top-level spans sum to its own recorded turnaround.
            fused_span.set(batch_wall_ns=fused_span.duration_ns)
            fused_span.duration_ns = execute_ns
        # Shared across the batch's traces (identical values; treated as
        # read-only) to keep surviving allocations per traced request low.
        shared_coalesce: Span | None = None
        execute_attrs = {"fused": True, "batch_size": len(batch)}
        for request, result in zip(batch, results):
            if request.trace is not None and shared_coalesce is None:
                now_ns = time.perf_counter_ns()
                shared_coalesce = Span(
                    "coalesce",
                    now_ns - coalesce_ns,
                    coalesce_ns,
                    {"batch_size": len(batch)},
                )
            self._note_queue_wait(
                request,
                begin - request.enqueued_at,
                coalesce_ns,
                len(batch),
                shared_coalesce,
            )
            if request is not leader and request.trace is not None:
                # Built directly (shared timer read) — per-request hot path.
                request.trace.spans.append(
                    Span("execute", finish_ns - execute_ns, execute_ns, execute_attrs)
                )
            served = ServedResult(
                request_id=request.request_id,
                outputs=result.outputs,
                latency_ns=result.latency_ns,
                energy_nj=result.energy_nj,
                queue_wait_s=begin - request.enqueued_at,
                execute_s=execute_s,
                batch_size=len(batch),
                backend=result.backend,
                result=result,
                optimization=request.optimization,
                execution_plan=request.plan,
                planner=(
                    request.planner.with_measured(result.latency_ns)
                    if request.planner is not None
                    else None
                ),
                request_trace=request.trace,
            )
            self._account_served(request, served)
            if not request.future.cancelled():
                request.future.set_result(served)
        return True

    @staticmethod
    def _wants_jit(request: _PendingRequest) -> bool:
        return request.plan is None or request.plan.tier != "interpreted"

    def _controller_for(self, request: _PendingRequest):
        """The warm :class:`PlutoController` for a request's backend/tier."""
        jit = self._wants_jit(request)
        key = (request.backend_key, jit)
        controller = self._controllers.get(key)
        if controller is None:
            from repro.controller.executor import PlutoController

            controller = PlutoController(
                self.engine, backend=request.backend, jit=jit
            )
            self._controllers[key] = controller
        return controller

    def _execute(self, request: _PendingRequest) -> "ExecutionResult":
        """Run one request on a warm executor for *its* backend and plan.

        Executors are cached per backend selection plus the plan facets
        that shape them (tier, hierarchy placement), so a request that
        arrived with an overriding session (e.g. a functional-backend
        session on a vectorized service) runs on the backend that session
        chose, while same-backend requests keep sharing LUT caches.
        ``request.calls`` is already post-optimization, so sharded and
        hierarchical dispatch never re-optimizes.
        """
        from repro.api.session import compile_cached

        plan = request.plan
        jit = self._wants_jit(request)
        if plan is not None and plan.hierarchical:
            key = ("hierarchy", request.backend_key, plan.channels, plan.ranks, jit)
            dispatcher = self._dispatchers.get(key)
            if dispatcher is None:
                from repro.controller.hierarchy import HierarchicalDispatcher

                dispatcher = HierarchicalDispatcher(
                    self.engine,
                    backend=request.backend,
                    jit=jit,
                    channels=plan.channels,
                    ranks=plan.ranks,
                )
                self._dispatchers[key] = dispatcher
            return dispatcher.execute(
                request.calls, request.inputs, shards=plan.shards
            )
        if plan is not None and plan.effective_shards > 1:
            key = ("banks", request.backend_key, jit)
            dispatcher = self._dispatchers.get(key)
            if dispatcher is None:
                from repro.controller.dispatch import ParallelDispatcher

                dispatcher = ParallelDispatcher(
                    self.engine, backend=request.backend, jit=jit
                )
                self._dispatchers[key] = dispatcher
            return dispatcher.execute(
                request.calls, request.inputs, shards=plan.effective_shards
            )
        controller = self._controller_for(request)
        return controller.execute(
            compile_cached(request.calls),
            dict(request.inputs),
            structure_key=request.structure_key,
        )

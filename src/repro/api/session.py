"""The pLUTo Library session: ``pluto_malloc`` and the ``api_pluto_*`` routines.

A :class:`PlutoSession` records the program a user expresses with library
calls (Figure 5 b).  The session only builds the symbolic call list; the
pLUTo Compiler turns it into ISA instructions and the pLUTo Controller
executes those on the functional engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.handles import ApiCall, PlutoVector
from repro.api.luts import add_lut, bitwise_lut, multiply_lut
from repro.core.lut import LookupTable
from repro.errors import ConfigurationError

__all__ = ["PlutoSession"]


@dataclass
class PlutoSession:
    """Builds a pLUTo API program: allocations plus recorded library calls."""

    vectors: list[PlutoVector] = field(default_factory=list)
    calls: list[ApiCall] = field(default_factory=list)
    _counter: int = 0

    # ------------------------------------------------------------------ #
    # Memory allocation (Section 6.2, "Memory Allocation")
    # ------------------------------------------------------------------ #
    def pluto_malloc(self, size: int, bit_width: int, name: str | None = None) -> PlutoVector:
        """Allocate a pLUTo-resident vector of ``size`` ``bit_width``-bit elements."""
        if name is None:
            name = f"v{self._counter}"
            self._counter += 1
        if any(vector.name == name for vector in self.vectors):
            raise ConfigurationError(f"a vector named {name!r} already exists")
        vector = PlutoVector(name=name, size=size, bit_width=bit_width)
        self.vectors.append(vector)
        return vector

    # ------------------------------------------------------------------ #
    # Computation routines (Section 6.2, "Computation")
    # ------------------------------------------------------------------ #
    def _record(self, call: ApiCall) -> ApiCall:
        self.calls.append(call)
        return call

    def api_pluto_add(
        self, in1: PlutoVector, in2: PlutoVector, out: PlutoVector, bit_width: int
    ) -> ApiCall:
        """Element-wise addition via a concatenated-operand LUT query."""
        self._check_operand_width(in1, in2, bit_width)
        return self._record(
            ApiCall(
                operation="add",
                inputs=(in1, in2),
                output=out,
                lut=add_lut(bit_width),
                parameters={"bit_width": bit_width},
            )
        )

    def api_pluto_mul(
        self, in1: PlutoVector, in2: PlutoVector, out: PlutoVector, bit_width: int
    ) -> ApiCall:
        """Element-wise multiplication via a concatenated-operand LUT query."""
        self._check_operand_width(in1, in2, bit_width)
        return self._record(
            ApiCall(
                operation="mul",
                inputs=(in1, in2),
                output=out,
                lut=multiply_lut(bit_width),
                parameters={"bit_width": bit_width},
            )
        )

    def api_pluto_map(
        self, lut: LookupTable, source: PlutoVector, out: PlutoVector
    ) -> ApiCall:
        """Apply an arbitrary unary LUT to every element (the generic query)."""
        if source.bit_width < lut.index_bits:
            raise ConfigurationError(
                f"vector {source.name!r} ({source.bit_width}-bit) cannot index a "
                f"{lut.num_entries}-entry LUT"
            )
        return self._record(
            ApiCall(operation="map", inputs=(source,), output=out, lut=lut)
        )

    def api_pluto_bitwise(
        self,
        operation: str,
        in1: PlutoVector,
        in2: PlutoVector | None,
        out: PlutoVector,
    ) -> ApiCall:
        """Row-level bitwise logic (lowered to Ambit-style in-DRAM operations)."""
        operation = operation.lower()
        if operation == "not":
            inputs: tuple[PlutoVector, ...] = (in1,)
        else:
            if in2 is None:
                raise ConfigurationError(f"bitwise {operation!r} needs two inputs")
            inputs = (in1, in2)
        if operation not in ("not", "and", "or", "xor", "xnor"):
            raise ConfigurationError(f"unsupported bitwise operation {operation!r}")
        return self._record(
            ApiCall(operation=operation, inputs=inputs, output=out)
        )

    def api_pluto_bitwise_lut(
        self, operation: str, in1: PlutoVector, in2: PlutoVector, out: PlutoVector
    ) -> ApiCall:
        """Bitwise logic expressed as a LUT query (the paper's 4-entry LUTs)."""
        return self._record(
            ApiCall(
                operation=f"{operation.lower()}_lut",
                inputs=(in1, in2),
                output=out,
                lut=bitwise_lut(operation, 1),
                parameters={"bit_width": 1},
            )
        )

    def api_pluto_shift(
        self, target: PlutoVector, out: PlutoVector, bits: int, direction: str = "l"
    ) -> ApiCall:
        """Element-wise shift (lowered to DRISA shift commands)."""
        if direction not in ("l", "r"):
            raise ConfigurationError("shift direction must be 'l' or 'r'")
        if bits < 0:
            raise ConfigurationError("shift amount must be non-negative")
        return self._record(
            ApiCall(
                operation="shift",
                inputs=(target,),
                output=out,
                parameters={"bits": bits, "direction": direction},
            )
        )

    def api_pluto_move(self, source: PlutoVector, out: PlutoVector) -> ApiCall:
        """In-DRAM copy of a vector (RowClone / LISA)."""
        return self._record(ApiCall(operation="move", inputs=(source,), output=out))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_operand_width(in1: PlutoVector, in2: PlutoVector, bit_width: int) -> None:
        if bit_width <= 0:
            raise ConfigurationError("operand bit width must be positive")
        for vector in (in1, in2):
            if vector.bit_width < bit_width:
                raise ConfigurationError(
                    f"vector {vector.name!r} is {vector.bit_width}-bit wide but the "
                    f"routine operates on {bit_width}-bit operands"
                )

"""The pLUTo Library session: ``pluto_malloc`` and the ``api_pluto_*`` routines.

A :class:`PlutoSession` records the program a user expresses with library
calls (Figure 5 b).  The session builds the symbolic call list; the pLUTo
Compiler turns it into ISA instructions and the pLUTo Controller executes
those on the functional engine.

The session is also the execution front door: :meth:`PlutoSession.run`
compiles (through a process-wide compiled-program cache keyed on program
*structure*, so equal-shaped sessions compile once) and executes on the
session's selected backend — the vectorized NumPy fast path by default,
or the bit-exact subarray row-sweep path with ``backend="functional"``.
:meth:`PlutoSession.run_batch` submits many input sets against one
compiled program, and :func:`execute_batch` submits many whole programs,
deduplicating compilation across them.  Every execution exposes the same
:class:`~repro.controller.executor.ExecutionResult` with its full command
trace, whichever backend produced it.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.api.handles import ApiCall, PlutoVector
from repro.api.luts import BITWISE_OPERATIONS, add_lut, bitwise_lut, multiply_lut
from repro.core.lut import LookupTable
from repro.errors import ConfigurationError, ReproError, VerificationError
from repro.obs.trace import activate, deactivate, new_trace, span_of, stage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.analyze.diagnostics import VerificationReport
    from repro.api.service import PlutoService
    from repro.backend.base import ExecutionBackend
    from repro.compiler.lowering import CompiledProgram
    from repro.controller.dispatch import ShardedExecutionResult
    from repro.controller.executor import ExecutionResult
    from repro.controller.hierarchy import HierarchicalExecutionResult
    from repro.core.engine import PlutoEngine
    from repro.obs.trace import RequestTrace
    from repro.opt.pipeline import OptimizedProgram
    from repro.opt.report import OptimizationReport
    from repro.plan.execution_plan import ExecutionPlan
    from repro.plan.planner import PlannerReport

__all__ = [
    "PlutoSession",
    "BatchResult",
    "execute_batch",
    "program_structure_key",
    "compile_cached",
    "compile_cached_with_key",
    "seed_program_cache",
    "clear_program_cache",
    "clear_all_caches",
    "program_cache_size",
    "cache_stats",
]


#: Process-wide compiled-program cache: structure key -> CompiledProgram.
_PROGRAM_CACHE: dict[tuple, "CompiledProgram"] = {}


def program_structure_key(calls: Sequence[ApiCall]) -> tuple:
    """Hashable program-structure key (see :mod:`repro.compiler.lowering`)."""
    from repro.compiler.lowering import program_structure_key as _key

    return _key(list(calls))


#: Sentinel distinguishing "compute the key" from "known unhashable".
_KEY_UNSET: object = object()


def hashable_structure_key(calls: Sequence[ApiCall]) -> "tuple | None":
    """The program structure key, or ``None`` when it is not hashable.

    The execution front doors compute this once per run and thread it
    through both the verifier memo and the compile cache, so neither
    layer rebuilds the key on the hot path.
    """
    try:
        key = program_structure_key(calls)
        # The key tuple builds fine around unhashable parameter values
        # and only fails at hash time — probe before handing it out.
        hash(key)
        return key
    except TypeError:
        return None


def compile_cached_with_key(
    calls: Sequence[ApiCall],
    key: "tuple | None | object" = _KEY_UNSET,
) -> "tuple[CompiledProgram, tuple | None]":
    """Compile a call list and return it with its structure key.

    The key is what downstream warm-state layers (trace templates, the
    whole-program compiled closures) memoize on, so the execution front
    doors thread it through to the controller.  Falls back to an
    uncached compile — and a ``None`` key — when the structure key is
    not hashable (e.g. a call carries list-valued parameters).  Callers
    that already hold the key (``None`` meaning "known unhashable") pass
    it to skip the recomputation.
    """
    from repro.compiler.lowering import PlutoCompiler

    if key is _KEY_UNSET:
        key = hashable_structure_key(calls)
    if key is None:
        return PlutoCompiler().compile(list(calls)), None
    compiled = _PROGRAM_CACHE.get(key)
    if compiled is None:
        compiled = PlutoCompiler().compile(list(calls))
        _PROGRAM_CACHE[key] = compiled
    return compiled, key


def compile_cached(calls: Sequence[ApiCall]) -> "CompiledProgram":
    """Compile a call list, reusing structurally identical past compiles."""
    return compile_cached_with_key(calls)[0]


def seed_program_cache(key: tuple, compiled: "CompiledProgram") -> None:
    """Install a compiled program under ``key`` (shared-store warm start).

    The warm-start path of :mod:`repro.serve.store` uses this to make a
    fresh process's first compile of a known structure a cache hit.
    """
    _PROGRAM_CACHE[key] = compiled


def clear_program_cache() -> None:
    """Drop every cached compiled program.

    Only the compiled-program cache is cleared; the memoized LUT builders
    (:mod:`repro.api.luts`) and the gather-array cache
    (:mod:`repro.core.lut`) keep their entries.
    """
    _PROGRAM_CACHE.clear()


def program_cache_size() -> int:
    """Number of distinct program structures currently cached."""
    return len(_PROGRAM_CACHE)


def cache_stats() -> dict[str, dict]:
    """Hit/miss statistics of every memo layer in the execution stack.

    One snapshot covering the process-wide caches that make repeated and
    sharded execution cheap: compiled programs (structure-keyed), trace
    templates (fused dispatch), the scheduler makespan memo with its
    exact-fast-merge/reference split, the hierarchical-schedule memo, the
    cached pure per-engine helpers, and the LUT gather arrays.  Also
    exposed as :meth:`PlutoSession.cache_stats` and through
    :meth:`~repro.api.service.ServiceStats.cache_stats`, so the serving
    layer can report memo effectiveness.
    """
    from repro.analyze.verifier import verifier_cache_stats
    from repro.backend.compiled import compiled_exec_stats
    from repro.controller.dispatch import engine_helper_cache_stats
    from repro.controller.executor import trace_template_stats
    from repro.controller.hierarchy import hierarchy_cache_stats
    from repro.core.lut import gather_cache_size
    from repro.dram.analytic import merge_cache_stats
    from repro.opt.compose import compose_cache_stats
    from repro.opt.pipeline import optimizer_cache_stats
    from repro.obs.metrics import record_cache_stats
    from repro.plan.planner import planner_cache_stats
    from repro.serve.store import shared_store_stats

    stats = {
        "programs": {"size": program_cache_size()},
        "shared_store": shared_store_stats(),
        "verifier": verifier_cache_stats(),
        "optimizer": optimizer_cache_stats(),
        "planner": planner_cache_stats(),
        "lut_compositions": compose_cache_stats(),
        "trace_templates": trace_template_stats(),
        "compiled_exec": compiled_exec_stats(),
        "scheduler_merges": merge_cache_stats(),
        "hierarchy_schedules": hierarchy_cache_stats(),
        "engine_helpers": engine_helper_cache_stats(),
        "lut_gather_arrays": {"size": gather_cache_size()},
    }
    # Mirror every snapshot into the unified metrics registry
    # (``pluto_cache_*`` gauges) without changing the dict shape callers
    # have always consumed.
    record_cache_stats(stats)
    return stats


def clear_all_caches() -> None:
    """Drop every process-wide memo layer of the execution stack.

    One call covering everything :func:`cache_stats` reports — compiled
    programs, the optimizer memo, composed LUTs, trace templates, the
    whole-program compiled closures, scheduler merges, hierarchical
    schedules, the pure per-engine helpers, and the LUT gather arrays —
    so tests and long-running services stop clearing layers one by one
    (and new layers are covered automatically).
    """
    from repro.analyze.verifier import clear_verifier_cache
    from repro.backend.compiled import clear_compiled_programs
    from repro.controller.dispatch import clear_engine_helper_caches
    from repro.controller.executor import clear_trace_templates
    from repro.controller.hierarchy import clear_hierarchy_cache
    from repro.core.lut import clear_gather_cache
    from repro.dram.analytic import clear_merge_cache
    from repro.opt.compose import clear_compose_cache
    from repro.opt.pipeline import clear_optimizer_cache
    from repro.plan.planner import clear_planner_cache
    from repro.serve.store import reset_shared_store_stats

    clear_program_cache()
    reset_shared_store_stats()
    clear_verifier_cache()
    clear_optimizer_cache()
    clear_planner_cache()
    clear_compose_cache()
    clear_trace_templates()
    clear_compiled_programs()
    clear_merge_cache()
    clear_hierarchy_cache()
    clear_engine_helper_caches()
    clear_gather_cache()


@dataclass
class BatchResult:
    """Results of a batched submission: one ExecutionResult per job.

    ``makespan_ns`` is set when the batch ran bank-parallel
    (``run_batch(..., parallel=True)``): the per-job command streams are
    merged through the timing-aware
    :class:`~repro.dram.scheduler.CommandScheduler`, so it reflects
    cross-bank tRRD/tFAW contention instead of a naive per-job sum.  The
    sum stays available as :attr:`serial_latency_ns`.
    """

    results: "list[ExecutionResult]"
    #: Scheduler-derived makespan of a bank-parallel batch (None when the
    #: jobs genuinely ran back to back in one bank).
    makespan_ns: float | None = None
    #: The concrete plan the batch ran under (set by ``run_batch``).
    execution_plan: "ExecutionPlan | None" = None
    #: The auto-planner's report when the plan came from ``plan="auto"``.
    planner: "PlannerReport | None" = None
    #: Span tree of the batch run (``None`` unless tracing is enabled).
    request_trace: "RequestTrace | None" = None

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    def __getitem__(self, index: int) -> "ExecutionResult":
        return self.results[index]

    @property
    def outputs(self) -> list[dict[str, np.ndarray]]:
        """Per-job output dictionaries, in submission order."""
        return [result.outputs for result in self.results]

    @property
    def serial_latency_ns(self) -> float:
        """Modelled latency summed over every job (single-bank execution)."""
        return sum(result.latency_ns for result in self.results)

    @property
    def total_latency_ns(self) -> float:
        """Modelled latency of the whole batch.

        The scheduler-derived makespan for bank-parallel batches; for
        serial batches the jobs run back to back, so the makespan *is*
        the per-job sum.
        """
        if self.makespan_ns is not None:
            return self.makespan_ns
        return self.serial_latency_ns

    @property
    def total_energy_nj(self) -> float:
        """Modelled energy summed over every job in the batch."""
        return sum(result.energy_nj for result in self.results)

    @property
    def lut_queries(self) -> int:
        """LUT queries executed across the whole batch."""
        return sum(result.lut_queries for result in self.results)


#: Sentinel distinguishing "legacy keyword not passed" from any real
#: value (``None`` is meaningful for ``run_hierarchical(shards=)``).
_LEGACY_UNSET: object = object()


@dataclass
class _PreparedExecution:
    """Everything the ``run*`` entry points share, resolved once.

    The product of :meth:`PlutoSession._prepare_execution`: the concrete
    plan (auto plans resolved through the cost-based planner), the
    post-optimization call list, the optimizer/planner reports, and —
    for unsharded routes — the verified compiled program with its
    structure key.
    """

    plan: "ExecutionPlan"
    calls: "list[ApiCall]"
    optimization: "OptimizationReport | None"
    planner: "PlannerReport | None"
    compiled: "CompiledProgram | None"
    structure_key: "tuple | None"


@dataclass
class PlutoSession:
    """Builds a pLUTo API program: allocations plus recorded library calls.

    ``backend`` selects how :meth:`run` executes the program:
    ``"vectorized"`` (default, NumPy fast path) or ``"functional"``
    (bit-exact subarray row sweeps).
    """

    vectors: list[PlutoVector] = field(default_factory=list)
    calls: list[ApiCall] = field(default_factory=list)
    _counter: int = 0
    backend: "str | ExecutionBackend" = "vectorized"

    # ------------------------------------------------------------------ #
    # Memory allocation (Section 6.2, "Memory Allocation")
    # ------------------------------------------------------------------ #
    def pluto_malloc(self, size: int, bit_width: int, name: str | None = None) -> PlutoVector:
        """Allocate a pLUTo-resident vector of ``size`` ``bit_width``-bit elements."""
        if size <= 0:
            raise ConfigurationError(
                f"pluto_malloc needs a positive element count, got {size}"
            )
        if bit_width <= 0:
            raise ConfigurationError(
                f"pluto_malloc needs a positive bit width, got {bit_width}"
            )
        taken = {vector.name for vector in self.vectors}
        if name is None:
            # Skip over auto-names the user has already claimed explicitly.
            while f"v{self._counter}" in taken:
                self._counter += 1
            name = f"v{self._counter}"
            self._counter += 1
        elif name in taken:
            raise ConfigurationError(f"a vector named {name!r} already exists")
        vector = PlutoVector(name=name, size=size, bit_width=bit_width)
        self.vectors.append(vector)
        return vector

    # ------------------------------------------------------------------ #
    # Computation routines (Section 6.2, "Computation")
    # ------------------------------------------------------------------ #
    def _record(self, call: ApiCall) -> ApiCall:
        self.calls.append(call)
        return call

    def api_pluto_add(
        self, in1: PlutoVector, in2: PlutoVector, out: PlutoVector, bit_width: int
    ) -> ApiCall:
        """Element-wise addition via a concatenated-operand LUT query."""
        self._check_operand_width(in1, in2, bit_width)
        lut = add_lut(bit_width)
        self._check_output_width(out, lut)
        return self._record(
            ApiCall(
                operation="add",
                inputs=(in1, in2),
                output=out,
                lut=lut,
                parameters={"bit_width": bit_width},
            )
        )

    def api_pluto_mul(
        self, in1: PlutoVector, in2: PlutoVector, out: PlutoVector, bit_width: int
    ) -> ApiCall:
        """Element-wise multiplication via a concatenated-operand LUT query."""
        self._check_operand_width(in1, in2, bit_width)
        lut = multiply_lut(bit_width)
        self._check_output_width(out, lut)
        return self._record(
            ApiCall(
                operation="mul",
                inputs=(in1, in2),
                output=out,
                lut=lut,
                parameters={"bit_width": bit_width},
            )
        )

    def api_pluto_map(
        self, lut: LookupTable, source: PlutoVector, out: PlutoVector
    ) -> ApiCall:
        """Apply an arbitrary unary LUT to every element (the generic query)."""
        if source.bit_width < lut.index_bits:
            raise ConfigurationError(
                f"vector {source.name!r} ({source.bit_width}-bit) cannot index a "
                f"{lut.num_entries}-entry LUT"
            )
        self._check_output_width(out, lut)
        return self._record(
            ApiCall(operation="map", inputs=(source,), output=out, lut=lut)
        )

    def api_pluto_bitwise(
        self,
        operation: str,
        in1: PlutoVector,
        in2: PlutoVector | None,
        out: PlutoVector,
    ) -> ApiCall:
        """Row-level bitwise logic (lowered to Ambit-style in-DRAM operations)."""
        operation = operation.lower()
        if operation == "not":
            inputs: tuple[PlutoVector, ...] = (in1,)
        else:
            self._check_bitwise_operation(operation, unary_allowed=True)
            if in2 is None:
                raise ConfigurationError(f"bitwise {operation!r} needs two inputs")
            inputs = (in1, in2)
        return self._record(
            ApiCall(operation=operation, inputs=inputs, output=out)
        )

    def api_pluto_bitwise_lut(
        self, operation: str, in1: PlutoVector, in2: PlutoVector, out: PlutoVector
    ) -> ApiCall:
        """Bitwise logic expressed as a LUT query (the paper's 4-entry LUTs)."""
        operation = operation.lower()
        self._check_bitwise_operation(operation)
        lut = bitwise_lut(operation, 1)
        self._check_output_width(out, lut)
        return self._record(
            ApiCall(
                operation=f"{operation}_lut",
                inputs=(in1, in2),
                output=out,
                lut=lut,
                parameters={"bit_width": 1},
            )
        )

    def api_pluto_shift(
        self, target: PlutoVector, out: PlutoVector, bits: int, direction: str = "l"
    ) -> ApiCall:
        """Element-wise shift (lowered to DRISA shift commands)."""
        if direction not in ("l", "r"):
            raise ConfigurationError("shift direction must be 'l' or 'r'")
        if bits < 0:
            raise ConfigurationError("shift amount must be non-negative")
        return self._record(
            ApiCall(
                operation="shift",
                inputs=(target,),
                output=out,
                parameters={"bits": bits, "direction": direction},
            )
        )

    def api_pluto_move(self, source: PlutoVector, out: PlutoVector) -> ApiCall:
        """In-DRAM copy of a vector (RowClone / LISA)."""
        return self._record(ApiCall(operation="move", inputs=(source,), output=out))

    # ------------------------------------------------------------------ #
    # Compilation and execution (Section 6.3/6.4 through the backend layer)
    # ------------------------------------------------------------------ #
    def compile(self) -> "CompiledProgram":
        """Compile the recorded calls (cached by program structure)."""
        return compile_cached(self.calls)

    def verify(self) -> "VerificationReport":
        """Statically verify the recorded program (API + lowered ISA).

        Returns the :class:`~repro.analyze.diagnostics.VerificationReport`
        with every finding — it does **not** raise; callers that want the
        rejecting behaviour chain ``.raise_if_errors()``.  Reports are
        memoized on the program structure key, so verifying a served
        shape repeatedly costs a dict hit.
        """
        from repro.analyze.verifier import verify_cached

        return verify_cached(self.calls)

    def optimize(self) -> "OptimizedProgram":
        """Run the program optimizer over the recorded calls.

        Returns an :class:`~repro.opt.pipeline.OptimizedProgram` — the
        rewritten call list (LUT chains fused, duplicates reused, dead
        ops dropped, tables deduplicated) plus the
        :class:`~repro.opt.report.OptimizationReport` accounting for the
        saved sweeps.  Results are memoized on the program structure
        key, so the hot serving path optimizes each shape once.  The
        optimized program's outputs are bit-identical to this session's.
        """
        from repro.opt.pipeline import optimize_cached

        return optimize_cached(self.calls)

    def _resolve_optimize(
        self, optimize: bool | None, engine: "PlutoEngine | None"
    ) -> bool:
        """Per-call ``optimize=`` wins; ``None`` defers to the engine config."""
        if optimize is not None:
            return bool(optimize)
        return engine is not None and engine.config.optimize

    def _calls_for_run(
        self, optimize: bool | None, engine: "PlutoEngine | None"
    ) -> "tuple[list[ApiCall], OptimizationReport | None]":
        if not self._resolve_optimize(optimize, engine):
            return list(self.calls), None
        with stage("optimize"):
            optimized = self.optimize()
        return list(optimized.calls), optimized.report

    @staticmethod
    def _verify_for_run(
        calls: "Sequence[ApiCall]",
        engine: "PlutoEngine | None",
        key: "tuple | None | object" = _KEY_UNSET,
        compiled: "CompiledProgram | None" = None,
    ) -> None:
        """Verify what is about to execute, per the engine's verify mode.

        Runs over the *post-optimization* call list (the program that
        actually executes) and raises
        :class:`~repro.errors.VerificationError` with the diagnostics on
        any error-severity finding.  Memoized on the program structure
        key (``key`` forwards an already-computed one); when the caller
        holds the cached :class:`CompiledProgram`, a prior clean verdict
        is remembered on the object itself, so warm verified serving
        costs one attribute check per run.
        """
        if engine is None:
            return
        from repro.analyze.verifier import verification_enabled, verify_cached

        if not verification_enabled(engine.config.verify):
            return
        if compiled is not None and compiled.verification_ok:
            return
        with stage("verify"):
            if key is _KEY_UNSET:
                # No precomputed key: let the verifier build its own.
                verify_cached(calls).raise_if_errors()
            else:
                verify_cached(calls, key=key).raise_if_errors()
        if compiled is not None:
            compiled.verification_ok = True

    def _compile_verified(
        self, calls: "list[ApiCall]", engine: "PlutoEngine | None"
    ) -> "tuple[CompiledProgram, tuple | None]":
        """Compile (cached) then verify, per the engine's verify mode.

        Compilation comes first so a prior clean verdict rides the
        cached program object (one attribute check per warm run).  When
        the compiler itself rejects the program and verification is on,
        the verifier's structured diagnostics replace the raw compiler
        error; the original error re-raises if the verifier finds
        nothing (or verification is off).
        """
        structure_key = hashable_structure_key(calls)
        warm = structure_key is not None and structure_key in _PROGRAM_CACHE
        try:
            with stage("compile", cached=warm):
                compiled, structure_key = compile_cached_with_key(
                    calls, structure_key
                )
        except ReproError:
            self._verify_for_run(calls, engine, key=structure_key)
            raise
        self._verify_for_run(
            calls, engine, key=structure_key, compiled=compiled
        )
        return compiled, structure_key

    def _controller(self, engine: "PlutoEngine | None", *, jit: bool = True):
        from repro.controller.executor import PlutoController

        return PlutoController(engine, backend=self.backend, jit=jit)

    def _resolve_plan_argument(
        self,
        plan: "ExecutionPlan | str | None",
        engine: "PlutoEngine | None",
        *,
        entry: str,
        hierarchical: bool,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
    ) -> "ExecutionPlan":
        """One ``ExecutionPlan`` from ``plan=`` plus the deprecated knobs.

        The legacy ``shards=`` / ``optimize=`` keywords still work as
        :class:`DeprecationWarning` shims that build the equivalent
        explicit plan; combining them with ``plan=`` is rejected.  With
        neither given, the engine's ``PlutoConfig(plan=...)`` default
        applies.
        """
        from dataclasses import replace

        from repro.plan.execution_plan import ExecutionPlan, resolve_plan

        legacy: dict[str, object] = {}
        if shards is not _LEGACY_UNSET:
            legacy["shards"] = shards
        if optimize is not _LEGACY_UNSET:
            legacy["optimize"] = optimize
        if legacy:
            if plan is not None:
                raise ConfigurationError(
                    f"{entry}() got both plan= and the deprecated "
                    f"{sorted(legacy)} keyword(s); pass only plan="
                )
            names = ", ".join(f"{name}=" for name in sorted(legacy))
            warnings.warn(
                f"{entry}({names}) is deprecated; pass "
                "plan=ExecutionPlan(...) (or plan='auto') instead",
                DeprecationWarning,
                stacklevel=3,
            )
            return ExecutionPlan(
                shards=legacy.get("shards"),  # type: ignore[arg-type]
                hierarchical=hierarchical,
                optimize=legacy.get("optimize"),  # type: ignore[arg-type]
            )
        if plan is None and engine is not None:
            plan = engine.config.plan
        resolved = resolve_plan(plan)
        if hierarchical and not resolved.is_auto and not resolved.hierarchical:
            resolved = replace(resolved, hierarchical=True)
        return resolved

    def _prepare_execution(
        self,
        plan: "ExecutionPlan",
        engine: "PlutoEngine | None",
        *,
        modes: tuple[str, ...],
    ) -> _PreparedExecution:
        """The shared ``run*`` prologue: plan -> optimize -> verify -> compile.

        Auto plans resolve through the cost-based planner
        (:func:`repro.plan.planner.plan_program`, memoized on the
        program structure key) into a concrete plan first; the program
        is then optimized per the plan, verified per the engine's verify
        mode, and — on the unsharded route — compiled through the
        structure-keyed cache.
        """
        from repro.backend.base import resolve_backend

        planner_report: "PlannerReport | None" = None
        if plan.is_auto:
            from repro.plan.planner import plan_program

            with stage("plan") as plan_span:
                planned = plan_program(
                    self.calls,
                    engine,
                    request=plan,
                    modes=modes,
                    supports_batched=resolve_backend(
                        self.backend
                    ).supports_batched,
                )
                plan, planner_report = planned.plan, planned.report
                plan_span.set(cached=planner_report.cached)
        calls, report = self._calls_for_run(plan.optimize, engine)
        if plan.hierarchical or plan.effective_shards > 1:
            self._verify_for_run(calls, engine)
            compiled, structure_key = None, None
        else:
            compiled, structure_key = self._compile_verified(calls, engine)
        return _PreparedExecution(
            plan=plan,
            calls=calls,
            optimization=report,
            planner=planner_report,
            compiled=compiled,
            structure_key=structure_key,
        )

    @staticmethod
    def _finish_trace(trace: "RequestTrace | None", result: "ExecutionResult") -> None:
        """Annotate a run's trace with its hardware attribution and attach it."""
        if trace is None:
            return
        from repro.obs.metrics import request_accounting

        command_trace = getattr(result, "trace", None)
        if command_trace is not None:
            trace.annotate(
                latency_ns=result.latency_ns,
                backend=result.backend,
                **request_accounting(command_trace),
            )
        result.request_trace = trace

    @staticmethod
    def _attach_reports(
        result: "ExecutionResult", prepared: _PreparedExecution
    ) -> "ExecutionResult":
        result.optimization = prepared.optimization
        result.execution_plan = prepared.plan
        if prepared.planner is not None:
            result.planner = prepared.planner.with_measured(result.latency_ns)
        return result

    @staticmethod
    def _attach_batch_reports(
        result: BatchResult, prepared: _PreparedExecution
    ) -> BatchResult:
        result.execution_plan = prepared.plan
        if prepared.planner is not None:
            result.planner = prepared.planner.with_measured(
                result.total_latency_ns
            )
        return result

    def run(
        self,
        inputs: Mapping[str, np.ndarray],
        *,
        engine: "PlutoEngine | None" = None,
        plan: "ExecutionPlan | str | None" = None,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
    ) -> "ExecutionResult | ShardedExecutionResult":
        """Compile (cached) and execute this program on the session backend.

        ``engine`` selects the pLUTo configuration (design/memory); the
        default is pLUTo-BSA on DDR4.  The returned
        :class:`ExecutionResult` carries the outputs and the full command
        trace, identically for every backend.

        ``plan`` is the unified execution front door: an
        :class:`~repro.plan.ExecutionPlan` describing the shard count,
        hierarchy placement, optimizer, and execution tier — or the
        string ``"auto"``, which hands the choice to the cost-based
        planner (candidates priced with the analytic makespan model,
        chosen plans memoized on the program structure key; the result
        then carries a :class:`~repro.plan.PlannerReport` as
        ``result.planner``).  ``None`` defers to the engine's
        ``PlutoConfig(plan=...)`` default.  Outputs are bit-identical
        whichever plan executes.

        Sharded plans partition the element space across DRAM banks and
        execute bank-parallel — in one fused batched pass on
        batched-capable backends (the vectorized default) — and
        ``latency_ns`` becomes the scheduler-derived makespan under
        cross-bank tRRD/tFAW contention; hierarchical plans additionally
        spread shards over channels and ranks.  A plan with
        ``optimize=True`` runs the program optimizer (:mod:`repro.opt`)
        before compilation, with the
        :class:`~repro.opt.report.OptimizationReport` on
        ``result.optimization``.

        The ``shards=`` / ``optimize=`` keywords are deprecated shims
        that build the equivalent explicit plan (with a
        ``DeprecationWarning``).
        """
        resolved = self._resolve_plan_argument(
            plan,
            engine,
            entry="run",
            hierarchical=False,
            shards=shards,
            optimize=optimize,
        )
        trace = new_trace("session.run")
        token = activate(trace)
        try:
            prepared = self._prepare_execution(
                resolved, engine, modes=("single", "banks", "hierarchy")
            )
            chosen = prepared.plan
            jit = chosen.tier != "interpreted"
            with span_of(trace, "execute"):
                if chosen.hierarchical:
                    from repro.controller.hierarchy import HierarchicalDispatcher

                    result = HierarchicalDispatcher(
                        engine,
                        backend=self.backend,
                        jit=jit,
                        channels=chosen.channels,
                        ranks=chosen.ranks,
                    ).execute(prepared.calls, inputs, shards=chosen.shards)
                elif chosen.effective_shards > 1:
                    from repro.controller.dispatch import ParallelDispatcher

                    result = ParallelDispatcher(
                        engine, backend=self.backend, jit=jit
                    ).execute(
                        prepared.calls, inputs, shards=chosen.effective_shards
                    )
                else:
                    result = self._controller(engine, jit=jit).execute(
                        prepared.compiled,
                        dict(inputs),
                        structure_key=prepared.structure_key,
                    )
        finally:
            deactivate(token)
        self._finish_trace(trace, result)
        return self._attach_reports(result, prepared)

    def run_batch(
        self,
        batch: Iterable[Mapping[str, np.ndarray]],
        *,
        engine: "PlutoEngine | None" = None,
        parallel: bool = False,
        plan: "ExecutionPlan | str | None" = None,
        optimize: object = _LEGACY_UNSET,
    ) -> BatchResult:
        """Execute this program once per input set in ``batch``.

        The program is compiled once and the controller (and therefore the
        backend with its cached LUT arrays) is reused across the whole
        batch.  With ``parallel=True`` the jobs are placed round-robin
        across the module's banks and the batch's ``total_latency_ns``
        becomes the scheduler-derived makespan of the merged command
        streams (the naive sum stays available as ``serial_latency_ns``).

        ``plan`` accepts an :class:`~repro.plan.ExecutionPlan` or
        ``"auto"`` exactly as in :meth:`run`, restricted to unsharded
        plans — each job is one whole program; per-job sharding goes
        through :meth:`run`.  The deprecated ``optimize=`` keyword
        builds the equivalent plan with a ``DeprecationWarning``.
        """
        resolved = self._resolve_plan_argument(
            plan, engine, entry="run_batch", hierarchical=False, optimize=optimize
        )
        trace = new_trace("session.run_batch")
        token = activate(trace)
        try:
            prepared = self._prepare_execution(resolved, engine, modes=("single",))
            chosen = prepared.plan
            if chosen.hierarchical or chosen.effective_shards > 1:
                raise ConfigurationError(
                    "run_batch executes each job as one unsharded program; "
                    "sharded/hierarchical plans go through run()"
                )
            compiled, structure_key = prepared.compiled, prepared.structure_key
            controller = self._controller(
                engine, jit=chosen.tier != "interpreted"
            )
            if not parallel:
                with span_of(trace, "execute") as span:
                    results = [
                        controller.execute(
                            compiled, dict(inputs), structure_key=structure_key
                        )
                        for inputs in batch
                    ]
                    span.set(jobs=len(results))
                batch_result = BatchResult(results=results, request_trace=trace)
                return self._attach_batch_reports(batch_result, prepared)
            from repro.controller.dispatch import merged_makespan_ns

            jobs = list(batch)
            num_banks = controller.engine.geometry.banks
            if len(jobs) > num_banks:
                # Placement clamps to the available banks: jobs beyond the
                # bank count wrap round-robin and run back to back in their
                # bank, which the merged makespan reflects.  Warn so callers
                # expecting one bank per job notice the serialization.
                warnings.warn(
                    f"run_batch(parallel=True) got {len(jobs)} jobs for a "
                    f"module with {num_banks} banks; jobs wrap round-robin "
                    "and serialize within each bank",
                    stacklevel=2,
                )
            with span_of(trace, "execute") as span:
                results = [
                    controller.execute(
                        compiled,
                        dict(inputs),
                        bank=index % num_banks,
                        structure_key=structure_key,
                    )
                    for index, inputs in enumerate(jobs)
                ]
                span.set(jobs=len(results), parallel=True)
            with span_of(trace, "schedule"):
                makespan = merged_makespan_ns(
                    [result.trace.commands for result in results],
                    controller.engine,
                )
        finally:
            deactivate(token)
        return self._attach_batch_reports(
            BatchResult(
                results=results, makespan_ns=makespan, request_trace=trace
            ),
            prepared,
        )

    def run_hierarchical(
        self,
        inputs: Mapping[str, np.ndarray],
        *,
        engine: "PlutoEngine | None" = None,
        plan: "ExecutionPlan | str | None" = None,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
    ) -> "HierarchicalExecutionResult":
        """Execute this program spread over the full DRAM hierarchy.

        Shards are placed channel-first across the engine's channels,
        ranks, bank groups, and banks (pass an engine built from a
        ``PlutoConfig(channels=..., ranks=...)`` to model more than the
        Table 3 single-channel module).  Outputs are bit-identical to
        :meth:`run`; ``latency_ns`` is the hierarchical makespan and the
        result decomposes the speedup per level.

        ``plan`` follows :meth:`run` but is forced hierarchical:
        explicit plans may narrow the placement
        (``ExecutionPlan(hierarchical=True, channels=..., ranks=...)``)
        or pin the shard count, and ``"auto"`` searches hierarchical
        candidates only.  The deprecated ``shards=`` / ``optimize=``
        keywords build the equivalent plan with a
        ``DeprecationWarning``; shards default to every bank in the
        device.
        """
        from repro.controller.hierarchy import HierarchicalDispatcher

        resolved = self._resolve_plan_argument(
            plan,
            engine,
            entry="run_hierarchical",
            hierarchical=True,
            shards=shards,
            optimize=optimize,
        )
        trace = new_trace("session.run_hierarchical")
        token = activate(trace)
        try:
            prepared = self._prepare_execution(
                resolved, engine, modes=("hierarchy",)
            )
            chosen = prepared.plan
            if not chosen.hierarchical:
                raise ConfigurationError(
                    "run_hierarchical needs a hierarchical plan; got "
                    f"{chosen.label()!r}"
                )
            with span_of(trace, "execute"):
                result = HierarchicalDispatcher(
                    engine,
                    backend=self.backend,
                    jit=chosen.tier != "interpreted",
                    channels=chosen.channels,
                    ranks=chosen.ranks,
                ).execute(prepared.calls, inputs, shards=chosen.shards)
        finally:
            deactivate(token)
        self._finish_trace(trace, result)
        self._attach_reports(result, prepared)
        return result

    def serve(
        self,
        *,
        engine: "PlutoEngine | None" = None,
        max_queue: int = 64,
        max_batch: int = 16,
        plan: "ExecutionPlan | str | None" = None,
        hierarchical: object = _LEGACY_UNSET,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
        verify: bool = True,
    ) -> "PlutoService":
        """An async serving frontend bound to this session's program.

        Returns a :class:`~repro.api.service.PlutoService` (use it as an
        async context manager) with a bounded request queue, structure-key
        batch coalescing, and per-request latency accounting.

        ``plan`` is the service-wide execution plan (see :meth:`run`);
        ``"auto"`` plans each distinct request structure once through the
        cost-based planner.  The deprecated ``hierarchical=`` /
        ``shards=`` / ``optimize=`` keywords build the equivalent plan
        with a ``DeprecationWarning``.  ``verify=True`` (the default)
        rejects malformed request programs at submission with
        :class:`~repro.errors.VerificationError` carrying the verifier's
        diagnostics.  See :mod:`repro.api.service`.
        """
        from repro.api.service import PlutoService

        return PlutoService(
            self,
            engine=engine,
            max_queue=max_queue,
            max_batch=max_batch,
            plan=plan,
            hierarchical=hierarchical,
            shards=shards,
            optimize=optimize,
            verify=verify,
        )

    @staticmethod
    def cache_stats() -> dict[str, dict]:
        """Hit/miss statistics of the process-wide execution caches.

        See :func:`cache_stats` — compiled programs, trace templates, the
        scheduler makespan memo, hierarchical schedules, per-engine
        helpers, and LUT gather arrays.
        """
        return cache_stats()

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_operand_width(in1: PlutoVector, in2: PlutoVector, bit_width: int) -> None:
        """Reject narrow operands with the verifier's own diagnostic.

        The condition is the one :func:`repro.analyze.verify_calls`
        reports as ``operand-width``; building the record through the
        shared helper keeps the record-time rejection and the verifier
        report word-for-word identical.
        """
        from repro.analyze.verifier import operand_width_diagnostic

        if bit_width <= 0:
            raise ConfigurationError("operand bit width must be positive")
        diagnostics = [
            diagnostic
            for vector in (in1, in2)
            for diagnostic in (operand_width_diagnostic(vector, bit_width),)
            if diagnostic is not None
        ]
        if diagnostics:
            raise VerificationError(diagnostics, subject="API call")

    @staticmethod
    def _check_output_width(out: PlutoVector, lut: LookupTable) -> None:
        """Reject narrow outputs with the verifier's ``narrow-output`` record."""
        from repro.analyze.verifier import narrow_output_diagnostic

        diagnostic = narrow_output_diagnostic(out, lut)
        if diagnostic is not None:
            raise VerificationError((diagnostic,), subject="API call")

    @staticmethod
    def _check_bitwise_operation(operation: str, *, unary_allowed: bool = False) -> None:
        if operation not in BITWISE_OPERATIONS:
            expected = f"one of {sorted(BITWISE_OPERATIONS)}"
            if unary_allowed:
                expected = f"'not' or {expected}"
            raise ConfigurationError(
                f"unsupported bitwise operation {operation!r}; expected {expected}"
            )


def execute_batch(
    jobs: Sequence[tuple[PlutoSession, Mapping[str, np.ndarray]]],
    *,
    engine: "PlutoEngine | None" = None,
    backend: "str | ExecutionBackend | None" = None,
) -> BatchResult:
    """Execute many (session, inputs) jobs, deduplicating compilation.

    Structurally identical programs in the batch compile once (the
    process-wide program cache is keyed on program structure), and one
    controller per backend is shared across all jobs so LUT gather arrays
    are reused.  ``backend`` overrides every session's own selection when
    given.
    """
    from repro.controller.executor import PlutoController

    controllers: dict[object, PlutoController] = {}
    results = []
    for session, inputs in jobs:
        selection = backend if backend is not None else session.backend
        # Names share one controller per name; distinct backend instances
        # each keep their own controller.
        key = selection if isinstance(selection, str) else id(selection)
        controller = controllers.get(key)
        if controller is None:
            controller = PlutoController(engine, backend=selection)
            controllers[key] = controller
        compiled, structure_key = compile_cached_with_key(session.calls)
        results.append(
            controller.execute(compiled, dict(inputs), structure_key=structure_key)
        )
    return BatchResult(results=results)

"""Pluggable execution backends for compiled pLUTo programs.

The controller delegates every functional effect to an
:class:`ExecutionBackend`; the cost accounting (command ROM + cost model)
is backend-independent, so the two shipped backends produce identical
latency/energy traces while differing by orders of magnitude in wall-clock
speed:

* ``"functional"`` — the bit-exact :class:`PlutoSubarray` row-sweep path.
* ``"vectorized"`` — whole-program NumPy gather/bitwise execution.

On top of the vectorized tier, :mod:`repro.backend.compiled` lowers a
whole compiled program into a single cached NumPy closure (zero
per-instruction Python dispatch); the controller routes vectorized
executions through it automatically when a program structure key is
available.
"""

from repro.backend.base import ExecutionBackend, backend_names, resolve_backend
from repro.backend.compiled import (
    CompiledExecutable,
    clear_compiled_programs,
    compile_program,
    compiled_exec_stats,
)
from repro.backend.functional import FunctionalBackend
from repro.backend.vectorized import VectorizedBackend

__all__ = [
    "backend_names",
    "clear_compiled_programs",
    "compile_program",
    "compiled_exec_stats",
    "CompiledExecutable",
    "ExecutionBackend",
    "FunctionalBackend",
    "VectorizedBackend",
    "resolve_backend",
]

"""Pluggable execution backends for compiled pLUTo programs.

The controller delegates every functional effect to an
:class:`ExecutionBackend`; the cost accounting (command ROM + cost model)
is backend-independent, so the two shipped backends produce identical
latency/energy traces while differing by orders of magnitude in wall-clock
speed:

* ``"functional"`` — the bit-exact :class:`PlutoSubarray` row-sweep path.
* ``"vectorized"`` — whole-program NumPy gather/bitwise execution.
"""

from repro.backend.base import ExecutionBackend, backend_names, resolve_backend
from repro.backend.functional import FunctionalBackend
from repro.backend.vectorized import VectorizedBackend

__all__ = [
    "backend_names",
    "ExecutionBackend",
    "FunctionalBackend",
    "VectorizedBackend",
    "resolve_backend",
]

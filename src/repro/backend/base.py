"""The execution-backend protocol.

A compiled pLUTo program has two separable aspects: *what* it computes
(the functional effect of every instruction on the row-register values)
and *how* that computation is accounted for (the DRAM command trace the
controller derives from the command ROM and the cost model).  The
controller owns the accounting; an :class:`ExecutionBackend` owns the
functional effects, so the same program can be simulated bit-exactly at
very different speeds:

* :class:`~repro.backend.functional.FunctionalBackend` routes every LUT
  query through a real :class:`~repro.core.subarray.PlutoSubarray`
  (match logic + row sweep + FF buffer) — the hardware data path.
* :class:`~repro.backend.vectorized.VectorizedBackend` executes a LUT
  query as a single NumPy gather (``table.values[indices]``).

Because the trace is produced by the controller independently of the
backend, latency/energy traces are identical across backends by
construction; the differential test in ``tests/test_backend_differential``
asserts it.

Bitwise logic, shifts, and moves are already plain vector arithmetic in
both cases, so the base class provides them as shared implementations;
only the LUT-query path differs between backends.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.core.designs import PlutoDesign
from repro.core.lut import LookupTable
from repro.dram.geometry import DRAMGeometry
from repro.errors import ConfigurationError, ExecutionError
from repro.isa.instructions import BitwiseKind, ShiftDirection
from repro.utils.bitops import mask_of

__all__ = ["ExecutionBackend", "backend_names", "resolve_backend"]


class ExecutionBackend(abc.ABC):
    """Performs the functional effects of pLUTo ISA instructions.

    One backend instance can execute many programs in sequence (the
    session layer reuses it for batched submission); the controller calls
    :meth:`begin_program` before each execution so per-program LUT
    bindings never leak between runs.
    """

    #: Registry name ("functional", "vectorized", ...).
    name: ClassVar[str] = "abstract"

    #: Whether the backend executes *stacked* programs: every functional
    #: operation accepts ``(shards, elements)`` arrays, so a whole set of
    #: equal-sized shards runs in one pass (``PlutoController.execute_fused``).
    #: The shared bitwise/shift/move implementations below are already
    #: shape-polymorphic; a backend opts in when its LUT-query path is too.
    supports_batched: ClassVar[bool] = False

    def __init__(self) -> None:
        self._geometry: DRAMGeometry | None = None
        self._design: PlutoDesign | None = None

    # ------------------------------------------------------------------ #
    # Program lifecycle
    # ------------------------------------------------------------------ #
    def begin_program(self, geometry: DRAMGeometry, design: PlutoDesign) -> None:
        """Reset per-program state and bind the engine's geometry/design."""
        self._geometry = geometry
        self._design = design
        self._reset_luts()

    @abc.abstractmethod
    def _reset_luts(self) -> None:
        """Drop all per-program LUT bindings."""

    # ------------------------------------------------------------------ #
    # LUT queries (the backend-specific part)
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def load_lut(
        self, register_index: int, lut: LookupTable, *, subarray_index: int = 0
    ) -> None:
        """Bind ``lut`` to a subarray register (``pluto_subarray_alloc``)."""

    @abc.abstractmethod
    def lut_query(self, register_index: int, indices: np.ndarray) -> np.ndarray:
        """Evaluate the bound LUT for a vector of indices (``pluto_op``).

        Raises :class:`ExecutionError` if no LUT is bound to the register.
        """

    def lut_query_batched(
        self, register_index: int, indices: np.ndarray
    ) -> np.ndarray:
        """Evaluate the bound LUT for a stacked ``(shards, n)`` index array.

        Only available on backends with :attr:`supports_batched`; the
        default raises so the dispatcher falls back to per-shard
        execution on oracle backends.
        """
        raise ExecutionError(
            f"backend {self.name!r} does not support batched LUT queries"
        )

    # ------------------------------------------------------------------ #
    # Shared functional effects (identical in every backend)
    # ------------------------------------------------------------------ #
    @staticmethod
    def bitwise(
        kind: BitwiseKind,
        a: np.ndarray,
        b: np.ndarray | None,
        width: int,
    ) -> np.ndarray:
        """Element-wise bitwise logic masked to ``width`` bits."""
        mask = np.uint64(mask_of(min(64, width)))
        if kind is BitwiseKind.NOT:
            return (~a) & mask
        if b is None:
            raise ExecutionError(f"bitwise {kind.value} needs two source rows")
        if kind is BitwiseKind.AND:
            result = a & b
        elif kind is BitwiseKind.OR:
            result = a | b
        elif kind is BitwiseKind.XOR:
            result = a ^ b
        elif kind is BitwiseKind.XNOR:
            result = (~(a ^ b)) & mask
        elif kind is BitwiseKind.NAND:
            result = (~(a & b)) & mask
        elif kind is BitwiseKind.NOR:
            result = (~(a | b)) & mask
        else:
            raise ExecutionError(f"unsupported bitwise kind {kind}")
        return result & mask

    @staticmethod
    def shift(
        data: np.ndarray, amount: int, direction: ShiftDirection, width: int
    ) -> np.ndarray:
        """Element-wise shift masked to ``width`` bits."""
        mask = np.uint64(mask_of(min(64, width)))
        if direction is ShiftDirection.LEFT:
            return (data << np.uint64(amount)) & mask
        return data >> np.uint64(amount)

    @staticmethod
    def move(
        source: np.ndarray, destination: np.ndarray | None
    ) -> np.ndarray:
        """Row copy: write ``source`` into ``destination`` (or clone it)."""
        if destination is not None and destination.size >= source.size:
            destination[: source.size] = source
            return destination
        return source.copy()

    # ------------------------------------------------------------------ #
    # Helpers for subclasses
    # ------------------------------------------------------------------ #
    @property
    def geometry(self) -> DRAMGeometry:
        if self._geometry is None:
            raise ExecutionError("backend used before begin_program()")
        return self._geometry

    @property
    def design(self) -> PlutoDesign:
        if self._design is None:
            raise ExecutionError("backend used before begin_program()")
        return self._design


def _registry() -> dict[str, type[ExecutionBackend]]:
    # Imported lazily so base.py stays import-cycle free.
    from repro.backend.functional import FunctionalBackend
    from repro.backend.vectorized import VectorizedBackend

    return {
        FunctionalBackend.name: FunctionalBackend,
        VectorizedBackend.name: VectorizedBackend,
    }


def backend_names() -> tuple[str, ...]:
    """The registry names accepted wherever a backend can be selected."""
    return tuple(_registry())


def resolve_backend(backend: str | ExecutionBackend) -> ExecutionBackend:
    """Return a backend instance from a name or pass an instance through."""
    if isinstance(backend, ExecutionBackend):
        return backend
    registry = _registry()
    try:
        factory = registry[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown execution backend {backend!r}; expected one of "
            f"{sorted(registry)} or an ExecutionBackend instance"
        ) from None
    return factory()

"""Whole-program compiled execution: the program-level JIT tier.

The vectorized backend already turns each LUT query into one NumPy
gather, but the controller still *walks* the program op by op — an
isinstance dispatch, a cost-accounting call, and a values-dict update per
instruction.  For small-element serving programs that per-instruction
Python overhead dominates the wall clock.  This module removes it: an
optimized :class:`~repro.compiler.lowering.CompiledProgram` is lowered
**once** into a single generated Python function whose body is the
straight-line chain of NumPy gathers, shift-ORs, moves, and bitwise
kernels — every gather array, mask constant, operand slot, and output
selection resolved at compile time — and the resulting closure is cached
process-wide on the program structure key like every other warm-state
layer (:func:`compiled_exec_cached`).

Cost accounting is untouched: the controller realizes the program's
cached :class:`~repro.controller.executor.TraceTemplate` alongside the
closure, so a compiled execution's command trace is bit-identical to the
interpreted route's by construction.  The ``"functional"`` backend stays
interpreted on purpose — it is the bit-exactness oracle the differential
suites compare both fast tiers against.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.analyze.dataflow import analyze_dataflow
from repro.compiler.lowering import CompiledProgram
from repro.core.lut import gather_array
from repro.errors import ExecutionError, LUTError
from repro.isa.instructions import (
    BitwiseKind,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.obs.trace import stage
from repro.utils.bitops import mask_of
from repro.utils.memo import BoundedMemo

__all__ = [
    "CompiledExecutable",
    "compile_program",
    "compiled_exec_cached",
    "seed_compiled_exec",
    "compiled_exec_stats",
    "clear_compiled_programs",
]


class CompiledExecutable:
    """One program structure lowered to a straight-line NumPy closure.

    The closure takes a slot list ``V`` (row-register index -> value
    array), runs the whole program without touching the instruction
    stream, and returns the final value of every vector-bound register.
    Executables depend only on program structure and LUT contents — not
    on the engine, bank, or backend instance — so one instance serves
    every controller in the process.
    """

    __slots__ = (
        "source",
        "num_slots",
        "input_slots",
        "zero_specs",
        "final_slots",
        "output_bindings",
        "register_bindings",
        "copy_finals",
        "input_checks",
        "required_inputs",
        "supports_fused",
        "lut_queries",
        "instructions",
        "_fn",
        "_serve",
    )

    def __init__(
        self,
        *,
        fn: Callable[[list], tuple],
        serve: "Callable[[dict], tuple | None]",
        source: str,
        num_slots: int,
        input_slots: dict[str, int],
        zero_specs: tuple[tuple[int, int], ...],
        final_slots: tuple[int, ...],
        output_bindings: tuple[tuple[str, int], ...],
        register_bindings: tuple[tuple[str, int], ...],
        copy_finals: tuple[bool, ...],
        input_checks: dict[str, tuple[int, int, int]],
        required_inputs: tuple[tuple[str, int], ...],
        supports_fused: bool,
        lut_queries: int,
        instructions: int,
    ) -> None:
        #: Generated Python source of the closure (for debugging/tests).
        self.source = source
        self.num_slots = num_slots
        #: Vector name -> row-register slot callers may seed.
        self.input_slots = input_slots
        #: ``(slot, size_elements)`` for every register that must start
        #: zeroed when the caller does not seed it (read before any
        #: write, or never written at all) — matching the interpreted
        #: path, which zero-creates every allocated row.
        self.zero_specs = zero_specs
        #: Row-register slot behind each position of the returned tuple.
        self.final_slots = final_slots
        #: ``(vector name, position in finals)`` for program outputs.
        self.output_bindings = output_bindings
        #: ``(vector name, position in finals)`` for the register snapshot.
        self.register_bindings = register_bindings
        #: Per-finals-position: whether the result must be defensively
        #: copied.  Positions whose slot is rebound by the closure hold
        #: freshly created arrays nothing else references, so the
        #: controller hands them out directly; only never-rebound slots
        #: (whose final array may be the caller's seeded input) get the
        #: interpreted path's defensive copy.
        self.copy_finals = copy_finals
        #: Vector name -> ``(size_elements, max_value, bit_width)`` for
        #: external inputs, validated while seeding (one pass instead of
        #: the interpreted route's separate ``_check_inputs`` walk).
        self.input_checks = input_checks
        #: ``(name, slot)`` of every external input that must be seeded.
        self.required_inputs = required_inputs
        #: Stacked ``(shards, size)`` execution is only valid when no
        #: move writes across different-size rows (a partial-row copy is
        #: a 1-D slice assignment that has no stacked equivalent).
        self.supports_fused = supports_fused
        self.lut_queries = lut_queries
        self.instructions = instructions
        self._fn = fn
        self._serve = serve

    def run_serve(
        self, inputs: dict[str, np.ndarray]
    ) -> "tuple[dict, dict] | None":
        """The fully generated serving path: ``(outputs, registers)``.

        The generated function validates, seeds, executes, and assembles
        the result dicts in specialized straight-line code.  It only
        handles the common shape — ``inputs`` naming exactly the
        program's external vectors — and returns ``None`` otherwise, in
        which case the caller takes :meth:`run_finals`.
        """
        try:
            return self._serve(inputs)
        except IndexError as error:
            raise LUTError(
                f"compiled LUT query index out of range: {error}"
            ) from None

    def run_finals(
        self, inputs: dict[str, np.ndarray], *, shards: int | None = None
    ) -> tuple[np.ndarray, ...]:
        """Seed inputs, zero-init the rest, and run the closure.

        Returns the final value array of every vector-bound register, in
        :attr:`final_slots` order.  With ``shards`` the same closure runs
        over stacked ``(shards, size)`` arrays — one gather per LUT query
        for the whole batch (the fused path) — and input validation is
        skipped: the fused caller has already size-checked the stacked
        arrays.  Without ``shards``, inputs are validated in the
        interpreted path's exact order (external missing/size/width
        checks on the caller's dtype, then unknown names) while they are
        seeded.
        """
        slots = self.input_slots
        values: list = [None] * self.num_slots
        if shards is None:
            checks = self.input_checks
            for name, slot in self.required_inputs:
                if name not in inputs:
                    raise ExecutionError(
                        f"missing input data for external vector {name!r}"
                    )
                data = np.asarray(inputs[name])
                size, limit, bits = checks[name]
                if data.size != size:
                    raise ExecutionError(
                        f"input {name!r} has {data.size} elements, "
                        f"expected {size}"
                    )
                if data.size and int(data.max()) > limit:
                    raise ExecutionError(
                        f"input {name!r} contains values wider than "
                        f"{bits} bits"
                    )
                values[slot] = np.asarray(data, dtype=np.uint64)
            for name, data in inputs.items():
                slot = slots.get(name)
                if slot is None:
                    raise ExecutionError(
                        f"input {name!r} is not a vector of this program"
                    )
                if values[slot] is None:
                    values[slot] = np.asarray(data, dtype=np.uint64)
            for slot, size in self.zero_specs:
                if values[slot] is None:
                    values[slot] = np.zeros(size, dtype=np.uint64)
        else:
            for name, data in inputs.items():
                slot = slots.get(name)
                if slot is None:
                    raise ExecutionError(
                        f"input {name!r} is not a vector of this program"
                    )
                values[slot] = np.asarray(data, dtype=np.uint64)
            if not self.supports_fused:
                raise ExecutionError(
                    "program moves between different-size rows; fused "
                    "compiled execution is unavailable"
                )
            for slot, size in self.zero_specs:
                if values[slot] is None:
                    values[slot] = np.zeros((shards, size), dtype=np.uint64)
        try:
            return self._fn(values)
        except IndexError as error:
            raise LUTError(
                f"compiled LUT query index out of range: {error}"
            ) from None


def _raise_lut_bounds(index: int, entries: int, name: str) -> None:
    """Raise the vectorized backend's LUT bounds error (generated code)."""
    raise LUTError(
        f"query index {index} outside the {entries}-entry LUT {name!r}"
    )


def _bitwise_expression(
    kind: BitwiseKind, a: str, b: str | None, mask: str
) -> str:
    """The NumPy expression matching ``ExecutionBackend.bitwise`` exactly."""
    if kind is BitwiseKind.NOT:
        return f"(~{a}) & {mask}"
    if b is None:
        raise ExecutionError(f"bitwise {kind.value} needs two source rows")
    if kind is BitwiseKind.AND:
        return f"({a} & {b}) & {mask}"
    if kind is BitwiseKind.OR:
        return f"({a} | {b}) & {mask}"
    if kind is BitwiseKind.XOR:
        return f"({a} ^ {b}) & {mask}"
    if kind is BitwiseKind.XNOR:
        return f"(~({a} ^ {b})) & {mask}"
    if kind is BitwiseKind.NAND:
        return f"(~({a} & {b})) & {mask}"
    if kind is BitwiseKind.NOR:
        return f"(~({a} | {b})) & {mask}"
    raise ExecutionError(f"unsupported bitwise kind {kind}")


def _lower(compiled: CompiledProgram) -> CompiledExecutable:
    """Generate and compile the whole-program closure.

    The value-bound and structural reasoning lives in the shared forward
    pass of :mod:`repro.analyze.dataflow` (one run per input contract);
    this function is pure code generation against those facts.  Two
    variants of the program body are generated.  ``safe_lines`` (the
    ``__pluto_program__`` closure behind run_finals and fused execution)
    carries an inline LUT bounds check wherever the source slot's
    provable value bound can reach the table size — ``run_finals``
    width-checks externals on the caller's dtype (a signed ``-1`` passes
    and wraps huge as uint64, matching the interpreted route), so its
    contract is ``assume_external_width=False``.  The serve entry point
    validates every external's *converted* uint64 values against the
    width mask and bails out otherwise, so ``fast_lines`` analyzes under
    ``assume_external_width=True`` — which elides every check in 8-bit
    serving programs.
    """
    fast = analyze_dataflow(compiled, assume_external_width=True)
    safe = analyze_dataflow(compiled, assume_external_width=False)

    env: dict[str, object] = {"I": np.intp, "EL": _raise_lut_bounds}
    fast_lines: list[str] = []
    safe_lines: list[str] = []
    masks: dict[int, str] = {}
    shift_consts: dict[int, str] = {}

    def emit(line: str) -> None:
        fast_lines.append(line)
        safe_lines.append(line)

    def mask_const(width: int) -> str:
        width = min(64, width)
        name = masks.get(width)
        if name is None:
            name = f"M{width}"
            masks[width] = name
            env[name] = np.uint64(mask_of(width))
        return name

    def shift_const(amount: int) -> str:
        name = shift_consts.get(amount)
        if name is None:
            name = f"C{amount}"
            shift_consts[amount] = name
            env[name] = np.uint64(amount)
        return name

    for index, instruction in enumerate(compiled.program):
        if isinstance(instruction, PlutoRowAlloc):
            pass  # structural facts (sizes, zero specs) come from the pass
        elif isinstance(instruction, PlutoSubarrayAlloc):
            slot = instruction.destination.index
            env[f"T{slot}"] = gather_array(compiled.lut_bindings[slot])
        elif isinstance(instruction, PlutoOp):
            source = f"r{instruction.source.index}"
            lut_index = instruction.lut_subarray.index
            lut = compiled.lut_bindings[lut_index]
            # The vectorized backend raises LUTError when any index
            # reaches the table size.  The forward value-bound pass makes
            # that check free in the common case: when the source slot's
            # provable bound already fits inside the table the check is
            # elided entirely, otherwise the exact interpreted check (and
            # message) is generated inline.  This also closes the intp
            # wrap window — indices in [2^64 - entries, 2^64) would view
            # as valid negative offsets, but they can only occur on
            # unbounded slots, which always carry the guard.
            entries = lut.num_entries
            guard = (
                f"if {source}.size and int({source}.max()) >= {entries}: "
                f"EL(int({source}.max()), {entries}, {lut.name!r})"
            )
            if fast.facts[index].guard_needed:
                fast_lines.append(guard)
            if safe.facts[index].guard_needed:
                safe_lines.append(guard)
            # The uint64 indices are bit-reinterpreted as intp (a free,
            # itemsize-preserving view) because NumPy's intp gather is
            # measurably faster than uint64 fancy indexing or ``take``.
            # The interpreted path's post-gather mask is omitted because
            # it is a no-op: LookupTable validates every stored value
            # against mask_of(element_bits) at construction.
            emit(
                f"r{instruction.destination.index} = "
                f"T{lut_index}[{source}.view(I)]"
            )
        elif isinstance(instruction, PlutoBitwise):
            expression = _bitwise_expression(
                instruction.kind,
                f"r{instruction.source1.index}",
                (
                    f"r{instruction.source2.index}"
                    if instruction.source2 is not None
                    else None
                ),
                mask_const(instruction.destination.bit_width),
            )
            emit(f"r{instruction.destination.index} = {expression}")
        elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
            amount = instruction.amount
            if isinstance(instruction, PlutoByteShift):
                amount *= 8
            target = f"r{instruction.target.index}"
            if instruction.direction is ShiftDirection.LEFT:
                emit(
                    f"{target} = ({target} << {shift_const(amount)}) "
                    f"& {mask_const(instruction.target.bit_width)}"
                )
            else:
                emit(f"{target} = {target} >> {shift_const(amount)}")
        elif isinstance(instruction, PlutoMove):
            source = f"r{instruction.source.index}"
            destination = instruction.destination
            if destination.size_elements > instruction.source.size_elements:
                # Partial overwrite keeps the destination's tail, exactly
                # like the in-place slice write of ``backend.move``; a
                # stacked array has no 1-D equivalent, so such programs
                # fall back to the interpreted walk when fused.
                emit(
                    f"r{destination.index}"
                    f"[:{instruction.source.size_elements}] = {source}"
                )
            else:
                emit(f"r{destination.index} = {source}.copy()")
        else:
            raise ExecutionError(
                f"unsupported instruction {type(instruction).__name__}"
            )

    row_slots = safe.row_slots
    rebound = safe.rebound
    supports_fused = safe.supports_fused
    num_slots = max(row_slots) + 1 if row_slots else 0
    zero_specs = safe.zero_specs()

    binding_items = tuple(compiled.vector_bindings.items())
    final_slots = tuple(
        dict.fromkeys(register.index for _, register in binding_items)
    )
    position = {slot: index for index, slot in enumerate(final_slots)}
    output_bindings = tuple(
        (vector.name, position[compiled.vector_bindings[vector.name].index])
        for vector in compiled.outputs
    )
    register_bindings = tuple(
        (name, position[register.index]) for name, register in binding_items
    )
    copy_finals = tuple(slot not in rebound for slot in final_slots)
    input_checks = {
        vector.name: (
            vector.size,
            mask_of(min(64, vector.bit_width)),
            vector.bit_width,
        )
        for vector in compiled.external_inputs
    }
    required_inputs = tuple(
        (vector.name, compiled.vector_bindings[vector.name].index)
        for vector in compiled.external_inputs
    )

    unpack = ", ".join(f"r{slot}" for slot in range(num_slots))
    unpack_line = f"({unpack},) = V" if num_slots else "pass"
    returns = ", ".join(f"r{slot}" for slot in final_slots)
    returns_expr = f"({returns},)" if final_slots else "()"
    body = "\n    ".join(safe_lines) if safe_lines else "pass"

    # The specialized serving entry point: validation, seeding,
    # zero-init, program body, and result-dict assembly all generated as
    # one straight-line function over the inputs dict.  It handles only
    # the common case — inputs naming exactly the external vectors, with
    # every *converted* uint64 value inside its width mask (a signed
    # negative wraps huge and fails that test) — and bails to the
    # generic run_finals path (``return None``) otherwise, which redoes
    # validation with the interpreted route's exact checks and errors.
    # Inside the fast path the width test doubles as the proof that the
    # fast body's external value bounds hold.
    env.update(A=np.asarray, U=np.uint64, Z=np.zeros)
    external_slots = set()
    serve_lines = [f"if len(inputs) != {len(compiled.external_inputs)}:", "    return None"]
    for vector in compiled.external_inputs:
        slot = compiled.vector_bindings[vector.name].index
        external_slots.add(slot)
        limit = mask_of(min(64, vector.bit_width))
        serve_lines += [
            f"d = inputs.get({vector.name!r})",
            "if d is None:",
            "    return None",
            f"r{slot} = A(d, U)",
            f"if r{slot}.size != {vector.size} or (r{slot}.size and r{slot}.max() > {limit}):",
            "    return None",
        ]
    for slot, size in zero_specs:
        if slot not in external_slots:
            serve_lines.append(f"r{slot} = Z({size}, U)")
    serve_lines.extend(fast_lines)
    register_exprs = ", ".join(
        f"{name!r}: r{register.index}"
        + ("" if register.index in rebound else ".copy()")
        for name, register in binding_items
    )
    output_exprs = ", ".join(
        f"{vector.name!r}: R[{vector.name!r}]" for vector in compiled.outputs
    )
    serve_lines += [f"R = {{{register_exprs}}}", f"return ({{{output_exprs}}}, R)"]
    serve_body = "\n    ".join(serve_lines)

    source = (
        "def __pluto_program__(V):\n"
        f"    {unpack_line}\n"
        f"    {body}\n"
        f"    return {returns_expr}\n"
        "\n"
        "def __pluto_serve__(inputs):\n"
        f"    {serve_body}\n"
    )
    exec(compile(source, "<pluto-compiled>", "exec"), env)
    return CompiledExecutable(
        fn=env["__pluto_program__"],  # type: ignore[arg-type]
        serve=env["__pluto_serve__"],  # type: ignore[arg-type]
        source=source,
        num_slots=num_slots,
        input_slots={
            name: register.index for name, register in binding_items
        },
        zero_specs=zero_specs,
        final_slots=final_slots,
        output_bindings=output_bindings,
        register_bindings=register_bindings,
        copy_finals=copy_finals,
        input_checks=input_checks,
        required_inputs=required_inputs,
        supports_fused=supports_fused,
        lut_queries=safe.lut_queries,
        instructions=safe.instructions,
    )


def compile_program(
    compiled: CompiledProgram, backend: "str | object" = "vectorized"
) -> CompiledExecutable:
    """Lower a compiled program into one whole-program NumPy closure.

    ``backend`` names the execution tier the closure replaces; only
    batched-capable backends (the vectorized tier) can be compiled — the
    functional backend deliberately stays interpreted so it remains the
    bit-exactness oracle the fast tiers are differentially tested
    against.
    """
    from repro.backend.base import resolve_backend

    resolved = resolve_backend(backend)  # type: ignore[arg-type]
    if not resolved.supports_batched:
        raise ExecutionError(
            f"backend {resolved.name!r} cannot host compiled execution; "
            "it is kept interpreted as the bit-exactness oracle"
        )
    return _lower(compiled)


#: Cached compile *failures*: programs whose structure cannot lower (an
#: unsupported instruction) are remembered so the controller stops
#: re-attempting them on every execution.
_UNSUPPORTED = object()

#: Structure key -> CompiledExecutable (or the unsupported sentinel).
_COMPILED_MEMO: BoundedMemo[object] = BoundedMemo(512)


def compiled_exec_cached(
    compiled: CompiledProgram, *, structure_key: tuple | None
) -> CompiledExecutable | None:
    """The memoized executable for a program structure.

    Returns ``None`` when the program cannot take the compiled tier —
    no usable structure key, or a structure that failed to lower (the
    failure is cached too) — and the caller falls back to interpreted
    execution.
    """
    if structure_key is None:
        _COMPILED_MEMO.note_uncached()
        return None
    try:
        cached = _COMPILED_MEMO.get(structure_key)
    except TypeError:
        _COMPILED_MEMO.note_uncached()
        return None
    if cached is not None:
        return None if cached is _UNSUPPORTED else cached  # type: ignore[return-value]
    try:
        with stage("closure_build", instructions=len(compiled.program)):
            executable = _lower(compiled)
    except Exception:
        _COMPILED_MEMO.put(structure_key, _UNSUPPORTED)
        return None
    _COMPILED_MEMO.put(structure_key, executable)
    return executable


def seed_compiled_exec(
    compiled: CompiledProgram, *, structure_key: tuple
) -> CompiledExecutable | None:
    """Pre-build and install the executable without miss accounting.

    Warm-start installation regenerates closures from stored compile
    products; counting that regeneration as a cache miss would make a
    fully warm process look cold.  Returns the installed executable (or
    ``None`` when the structure cannot take the compiled tier — the
    unsupported verdict is cached all the same).
    """
    cached = _COMPILED_MEMO.peek(structure_key)
    if cached is not None:
        return None if cached is _UNSUPPORTED else cached  # type: ignore[return-value]
    try:
        executable = _lower(compiled)
    except Exception:
        _COMPILED_MEMO.put(structure_key, _UNSUPPORTED)
        return None
    _COMPILED_MEMO.put(structure_key, executable)
    return executable


def compiled_exec_stats() -> dict[str, int]:
    """Hit/miss counters and size of the compiled-closure cache."""
    return _COMPILED_MEMO.stats()


def clear_compiled_programs() -> None:
    """Drop every cached whole-program closure and reset the counters."""
    _COMPILED_MEMO.clear()

"""The bit-exact hardware-path backend.

Every ``pluto_op`` walks the real :class:`~repro.core.subarray.PlutoSubarray`
data path — match logic, pLUTo Row Sweep, FF-buffer/sense-amplifier capture
— in row-sized chunks, including the destructive-read LUT reload that
pLUTo-GSA requires between queries.  This is the path the seed controller
executed inline; it is slow (one Python-level sweep per LUT row) but it is
the reference the vectorized backend is validated against.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend
from repro.core.lut import LookupTable
from repro.core.subarray import PlutoSubarray
from repro.errors import ExecutionError

__all__ = ["FunctionalBackend"]


class FunctionalBackend(ExecutionBackend):
    """Executes LUT queries on functional pLUTo-enabled subarrays."""

    name = "functional"

    def __init__(self) -> None:
        super().__init__()
        self._subarrays: dict[int, PlutoSubarray] = {}

    def _reset_luts(self) -> None:
        self._subarrays.clear()

    def load_lut(
        self, register_index: int, lut: LookupTable, *, subarray_index: int = 0
    ) -> None:
        subarray = PlutoSubarray(self.geometry, self.design, index=subarray_index)
        subarray.load_lut(lut)
        self._subarrays[register_index] = subarray

    def lut_query(self, register_index: int, indices: np.ndarray) -> np.ndarray:
        subarray = self._subarrays.get(register_index)
        if subarray is None:
            raise ExecutionError(
                f"subarray register s{register_index} has no LUT loaded"
            )
        capacity = subarray.elements_per_query()
        result = np.zeros_like(indices)
        for start in range(0, indices.size, capacity):
            chunk = indices[start : start + capacity]
            if subarray.properties.destructive_reads and not subarray.lut_valid:
                subarray.reload_lut()
            result[start : start + chunk.size] = subarray.query_indices(chunk)
        return result

"""The vectorized fast-path backend.

A pLUTo LUT query selects, for every input element, the LUT entry whose
row index equals the element — which on a host is exactly a NumPy gather:
``table.values[indices]``.  This backend therefore executes whole compiled
programs as bulk gather/bitwise operations with no per-row Python loops,
while the controller's command-ROM/cost-model accounting stays untouched,
so the resulting command traces are identical to the functional path's.

The gather arrays come from :func:`repro.core.lut.gather_array`, which
caches per :class:`~repro.core.lut.LookupTable` (LUTs are immutable), so
batched sessions that reload the same LUT pay the tuple-to-array
conversion only once.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import ExecutionBackend
from repro.core.lut import LookupTable, gather_array
from repro.errors import ExecutionError, LUTError

__all__ = ["VectorizedBackend"]


class VectorizedBackend(ExecutionBackend):
    """Executes LUT queries as NumPy gathers over the table values."""

    name = "vectorized"
    #: A gather is shape-polymorphic — ``table[indices]`` preserves the
    #: index array's shape — so stacked ``(shards, elements)`` programs
    #: execute in one pass (the fused dispatch path).
    supports_batched = True

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[int, tuple[LookupTable, np.ndarray]] = {}

    def _reset_luts(self) -> None:
        self._tables.clear()

    def load_lut(
        self, register_index: int, lut: LookupTable, *, subarray_index: int = 0
    ) -> None:
        self._tables[register_index] = (lut, gather_array(lut))

    def lut_query(self, register_index: int, indices: np.ndarray) -> np.ndarray:
        entry = self._tables.get(register_index)
        if entry is None:
            raise ExecutionError(
                f"subarray register s{register_index} has no LUT loaded"
            )
        lut, table = entry
        if indices.size and int(indices.max()) >= lut.num_entries:
            raise LUTError(
                f"query index {int(indices.max())} outside the "
                f"{lut.num_entries}-entry LUT {lut.name!r}"
            )
        return table[indices.astype(np.intp, copy=False)]

    def lut_query_batched(
        self, register_index: int, indices: np.ndarray
    ) -> np.ndarray:
        """One gather over a stacked ``(shards, n)`` index array.

        Identical to :meth:`lut_query` — the gather preserves the index
        shape — so fused execution is bit-identical to per-shard
        execution by construction.
        """
        return self.lut_query(register_index, indices)

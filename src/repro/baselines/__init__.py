"""Baseline system models used by the comparative evaluation."""

from repro.baselines.base import BaselineCost, BaselineSystem
from repro.baselines.pnm import HMC_PNM, PnmBaseline, PnmSpec
from repro.baselines.prior_pum import (
    AMBIT,
    DRISA_SYSTEM,
    LACC,
    PRIOR_PUM_SYSTEMS,
    SIMDRAM,
    PriorPumSystem,
)
from repro.baselines.processor import (
    CPU_XEON_5118,
    FPGA_ZCU102,
    GPU_P100,
    GPU_RTX_3080TI,
    ProcessorBaseline,
    ProcessorSpec,
)

__all__ = [
    "BaselineCost",
    "BaselineSystem",
    "HMC_PNM",
    "PnmBaseline",
    "PnmSpec",
    "AMBIT",
    "DRISA_SYSTEM",
    "LACC",
    "PRIOR_PUM_SYSTEMS",
    "SIMDRAM",
    "PriorPumSystem",
    "CPU_XEON_5118",
    "FPGA_ZCU102",
    "GPU_P100",
    "GPU_RTX_3080TI",
    "ProcessorBaseline",
    "ProcessorSpec",
]

"""Common interface of the processor-centric and PiM baseline models.

Every baseline consumes the same :class:`~repro.core.recipe.WorkloadRecipe`
objects the pLUTo engine consumes and produces a latency/energy estimate
for processing a given number of elements.  The models are deliberately
first-order (roofline-style): the paper's comparisons span 2-4 orders of
magnitude and are driven by data movement, so bandwidth/compute ceilings
and per-byte energies capture the relevant behaviour (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.core.recipe import WorkloadRecipe
from repro.errors import ConfigurationError

__all__ = ["BaselineCost", "BaselineSystem"]


@dataclass(frozen=True)
class BaselineCost:
    """Latency and energy of one baseline executing one workload."""

    system: str
    workload: str
    elements: int
    latency_ns: float
    energy_nj: float

    def __post_init__(self) -> None:
        if self.latency_ns < 0 or self.energy_nj < 0:
            raise ConfigurationError("costs must be non-negative")

    @property
    def throughput_elements_per_s(self) -> float:
        """Elements processed per second."""
        if self.latency_ns <= 0:
            return float("inf")
        return self.elements / (self.latency_ns * 1e-9)


class BaselineSystem(abc.ABC):
    """Abstract baseline system (CPU, GPU, FPGA, PnM, prior PuM)."""

    #: Human-readable system name used in figures.
    name: str = "baseline"
    #: Chip / board area used by the performance-per-area figures (mm^2).
    area_mm2: float = 100.0

    @abc.abstractmethod
    def evaluate(self, recipe: WorkloadRecipe, elements: int) -> BaselineCost:
        """Estimate the cost of processing ``elements`` inputs of ``recipe``."""

    # Convenience used by several figures.
    def latency_ns(self, recipe: WorkloadRecipe, elements: int) -> float:
        """Latency-only shortcut."""
        return self.evaluate(recipe, elements).latency_ns

    def energy_nj(self, recipe: WorkloadRecipe, elements: int) -> float:
        """Energy-only shortcut."""
        return self.evaluate(recipe, elements).energy_nj

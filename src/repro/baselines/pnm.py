"""Processing-near-Memory (PnM) baseline.

The paper's PnM baseline is an HMC-based system whose logic layer supports
Ambit-style bulk bitwise operations and DRISA-style shifting, plus an
on-die general-purpose core (1.25 GHz, 10 W TDP) for everything else
(Table 3).  We model it as:

* bitwise/shift portions of a recipe execute near the banks at internal
  bandwidth (they are fast),
* every LUT-backed or otherwise complex operation falls back to the on-die
  core, which is a narrow in-order core — this is what makes PnM ~18x
  slower than pLUTo on the evaluated workloads while still beating the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineCost, BaselineSystem
from repro.core.recipe import WorkloadRecipe
from repro.errors import ConfigurationError

__all__ = ["PnmSpec", "PnmBaseline", "HMC_PNM"]


@dataclass(frozen=True)
class PnmSpec:
    """Parameters of the HMC-based PnM system."""

    name: str
    #: Internal (vault) bandwidth available to near-bank operations (GB/s).
    internal_bandwidth_gbps: float
    #: Logic-layer core throughput in scalar operations per nanosecond.
    core_throughput_gops: float
    #: Busy power of the logic layer + DRAM (W).
    busy_power_w: float
    #: Fixed offload overhead (ns).
    fixed_overhead_ns: float
    #: Dynamic energy per byte touched internally (nJ/B).
    energy_per_byte_nj: float
    #: Dynamic energy per scalar core operation (nJ/op).
    energy_per_op_nj: float
    #: Logic-layer area (mm^2) used for performance-per-area figures.
    area_mm2: float

    def __post_init__(self) -> None:
        if self.internal_bandwidth_gbps <= 0 or self.core_throughput_gops <= 0:
            raise ConfigurationError(f"{self.name}: rates must be positive")


#: HMC 2.1 logic layer: ~320 GB/s internal bandwidth, a 1.25 GHz in-order
#: core (~2 ops/cycle sustained), 10 W TDP, ~4.4 mm^2 of logic per vault
#: across 16 vaults (~70 mm^2).
HMC_PNM = PnmSpec(
    name="PnM",
    internal_bandwidth_gbps=320.0,
    core_throughput_gops=2.5,
    busy_power_w=10.0,
    fixed_overhead_ns=1_000.0,
    energy_per_byte_nj=0.04,
    energy_per_op_nj=0.03,
    area_mm2=70.4,
)


class PnmBaseline(BaselineSystem):
    """Cost model of the HMC-based PnM baseline."""

    def __init__(self, spec: PnmSpec = HMC_PNM) -> None:
        self.spec = spec
        self.name = spec.name
        self.area_mm2 = spec.area_mm2

    def evaluate(self, recipe: WorkloadRecipe, elements: int) -> BaselineCost:
        """Split the recipe into near-bank (fast) and core (slow) portions."""
        if elements <= 0:
            raise ConfigurationError("element count must be positive")
        spec = self.spec
        bytes_moved = elements * recipe.bytes_per_element

        # Near-bank portion: bitwise logic and shifting move rows at
        # internal bandwidth.
        near_bank_time_ns = bytes_moved / spec.internal_bandwidth_gbps

        # Core portion: the fraction of scalar work that is not simple
        # bitwise/shift work (roughly, everything a LUT query replaces)
        # executes on the logic-layer core at its kernel operation count.
        lut_bound_ops = elements * recipe.effective_kernel_ops
        if not recipe.uses_lut_queries:
            # Purely bitwise workloads run almost entirely near the banks.
            lut_bound_ops *= 0.05
        core_time_ns = lut_bound_ops / spec.core_throughput_gops

        latency = spec.fixed_overhead_ns + near_bank_time_ns + core_time_ns
        dynamic_energy = (
            bytes_moved * spec.energy_per_byte_nj
            + lut_bound_ops * spec.energy_per_op_nj
        )
        static_energy = spec.busy_power_w * latency
        return BaselineCost(
            system=spec.name,
            workload=recipe.name,
            elements=elements,
            latency_ns=latency,
            energy_nj=dynamic_energy + static_energy,
        )

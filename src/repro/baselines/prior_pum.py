"""Prior Processing-using-Memory comparison points (Table 6).

Table 6 compares pLUTo-BSA against Ambit, SIMDRAM, LAcc, and DRISA on
per-operation latency, performance per area, and energy efficiency.  The
prior-work operation latencies are modelled from their command sequences
on the same DDR4 timings pLUTo uses:

* **Ambit** executes everything with AAP (ACT-ACT-PRE) sequences; bit-serial
  arithmetic on top of Ambit (as SIMDRAM systematises) costs a number of
  AAPs that grows linearly with bit width for addition and quadratically
  for multiplication.
* **SIMDRAM** is the optimised bit-serial framework; it needs fewer AAPs
  than naive Ambit arithmetic.
* **LAcc** performs LUT-based vector multiplication with dedicated
  near-mat LUT logic; it supports a narrower set of operations.
* **DRISA** (3T1C variant) has lower storage density (2 GB per chip at
  comparable area) and higher per-operation power.

All latencies are for one full DRAM row of operands, matching Table 6.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DDR4_2400, TimingParameters
from repro.errors import ConfigurationError

__all__ = [
    "PriorPumSystem",
    "AMBIT",
    "SIMDRAM",
    "LACC",
    "DRISA_SYSTEM",
    "PRIOR_PUM_SYSTEMS",
]


@dataclass(frozen=True)
class PriorPumSystem:
    """Per-operation cost model of one prior PuM architecture."""

    name: str
    capacity_gb: int
    area_mm2: float
    power_w: float
    #: AAP sequences for the primitive bitwise operations.
    bitwise_aaps: dict[str, int]
    #: AAP sequences per result bit for N-bit addition (linear in N).
    addition_aaps_per_bit: float
    #: AAP sequences per (result bit)^2 for N-bit multiplication.
    multiplication_aaps_per_bit_sq: float
    #: AAP sequences per input bit for bit counting; ``None`` = unsupported.
    bitcount_aaps_per_bit: float | None
    #: Whether the system supports arbitrary LUT queries (only pLUTo does).
    supports_lut_query: bool = False
    timing: TimingParameters = DDR4_2400

    def __post_init__(self) -> None:
        if self.capacity_gb <= 0 or self.area_mm2 <= 0 or self.power_w <= 0:
            raise ConfigurationError(f"{self.name}: physical parameters must be positive")

    # ------------------------------------------------------------------ #
    # Latency model
    # ------------------------------------------------------------------ #
    @property
    def aap_ns(self) -> float:
        """Latency of one ACT-ACT-PRE sequence."""
        return 2 * self.timing.t_rcd + self.timing.t_rp

    def bitwise_latency_ns(self, operation: str) -> float:
        """Latency of a row-wide bitwise operation."""
        operation = operation.lower()
        if operation not in self.bitwise_aaps:
            raise ConfigurationError(f"{self.name} does not support {operation!r}")
        return self.bitwise_aaps[operation] * self.aap_ns

    def addition_latency_ns(self, bits: int) -> float:
        """Latency of row-wide N-bit addition."""
        if bits <= 0:
            raise ConfigurationError("bit width must be positive")
        return self.addition_aaps_per_bit * bits * self.aap_ns

    def multiplication_latency_ns(self, bits: int) -> float:
        """Latency of row-wide N-bit multiplication (quadratic in N)."""
        if bits <= 0:
            raise ConfigurationError("bit width must be positive")
        return self.multiplication_aaps_per_bit_sq * bits * bits * self.aap_ns

    def bitcount_latency_ns(self, bits: int) -> float | None:
        """Latency of N-bit population count, or ``None`` if unsupported."""
        if bits <= 0:
            raise ConfigurationError("bit width must be positive")
        if self.bitcount_aaps_per_bit is None:
            return None
        return self.bitcount_aaps_per_bit * bits * self.aap_ns

    def multiplication_energy_nj(self, bits: int, e_aap_nj: float = 6.93) -> float:
        """Energy of row-wide N-bit multiplication (2 ACT + 1 PRE per AAP)."""
        return (
            self.multiplication_aaps_per_bit_sq * bits * bits * e_aap_nj
        )


#: AAP latency with DDR4-2400 17-17-17 timings is ~42.5 ns; the per-bit /
#: per-bit^2 coefficients below are chosen to match the absolute latencies
#: reported in Table 6 (e.g. Ambit 4-bit addition ~5081 ns, SIMDRAM ~1585 ns,
#: SIMDRAM 4-bit multiplication ~7451 ns).
AMBIT = PriorPumSystem(
    name="Ambit",
    capacity_gb=8,
    area_mm2=61.0,
    power_w=5.3,
    bitwise_aaps={"not": 3, "and": 6, "or": 6, "xor": 14, "xnor": 14},
    addition_aaps_per_bit=30.0,
    multiplication_aaps_per_bit_sq=28.0,
    bitcount_aaps_per_bit=17.0,
)

SIMDRAM = PriorPumSystem(
    name="SIMDRAM",
    capacity_gb=8,
    area_mm2=61.1,
    power_w=5.3,
    bitwise_aaps={"not": 3, "and": 6, "or": 6, "xor": 14, "xnor": 14},
    addition_aaps_per_bit=9.3,
    multiplication_aaps_per_bit_sq=11.0,
    bitcount_aaps_per_bit=6.8,
)

LACC = PriorPumSystem(
    name="LAcc",
    capacity_gb=8,
    area_mm2=54.8,
    power_w=5.3,
    bitwise_aaps={"not": 3, "and": 6, "or": 6, "xor": 10, "xnor": 10},
    addition_aaps_per_bit=6.7,
    multiplication_aaps_per_bit_sq=7.9,
    bitcount_aaps_per_bit=None,
)

DRISA_SYSTEM = PriorPumSystem(
    name="DRISA",
    capacity_gb=2,
    area_mm2=65.2,
    power_w=98.0,
    bitwise_aaps={"not": 5, "and": 10, "or": 10, "xor": 16, "xnor": 16},
    addition_aaps_per_bit=10.3,
    multiplication_aaps_per_bit_sq=12.1,
    bitcount_aaps_per_bit=39.0,
)

#: The four comparison systems of Table 6, in column order.
PRIOR_PUM_SYSTEMS = (AMBIT, SIMDRAM, LACC, DRISA_SYSTEM)

"""Processor-centric baselines: CPU, GPU, and FPGA roofline models.

The paper's baselines are a Xeon Gold 5118 (SSE2/SSE4), a GeForce RTX 3080
Ti, and a Zynq UltraScale+ ZCU102 driven by HLS.  We model each as a
roofline machine:

``latency = fixed_overhead + max(compute_time, memory_time, transfer_time)``

* ``compute_time`` follows the recipe's per-element operation count scaled
  by the machine's usable throughput.  The CPU and GPU consume the
  *effective* operation count of the measured software implementation
  (``cpu_ops_per_element`` derated by ``simd_efficiency``); the FPGA
  consumes the *kernel* operation count because its HLS pipeline implements
  exactly the kernel.
* ``memory_time`` follows per-element traffic over the device's sustained
  memory bandwidth.
* ``transfer_time`` (GPU only) moves the working set over the host
  interconnect (PCIe), which is what pins discrete-GPU throughput on these
  streaming byte-granularity workloads.

Energy combines dynamic energy per byte/operation with busy power over the
run time.  The calibration targets the *relative* results of Figures 7-10;
see DESIGN.md ("Substitutions") and EXPERIMENTS.md for the calibration
notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.baselines.base import BaselineCost, BaselineSystem
from repro.core.recipe import WorkloadRecipe
from repro.errors import ConfigurationError

__all__ = [
    "ProcessorSpec",
    "ProcessorBaseline",
    "CPU_XEON_5118",
    "GPU_RTX_3080TI",
    "GPU_P100",
    "FPGA_ZCU102",
]


@dataclass(frozen=True)
class ProcessorSpec:
    """Roofline parameters of a processor-centric system."""

    name: str
    #: Sustained main-memory bandwidth in bytes per nanosecond (GB/s).
    memory_bandwidth_gbps: float
    #: Usable integer throughput in operations per nanosecond (Gops).
    compute_throughput_gops: float
    #: Busy power in watts (used for energy over time).
    busy_power_w: float
    #: Fixed per-invocation overhead (kernel launch, reconfiguration) in ns.
    fixed_overhead_ns: float
    #: Dynamic energy per byte of off-chip traffic (nJ/B).
    energy_per_byte_nj: float
    #: Dynamic energy per scalar operation (nJ/op).
    energy_per_op_nj: float
    #: Die / board area in mm^2 (performance-per-area figures).
    area_mm2: float
    #: Host-interconnect bandwidth the working set must cross (GB/s), or
    #: ``None`` when the device operates directly on host memory.
    host_transfer_bandwidth_gbps: float | None = None
    #: Whether the device executes the pure kernel (FPGA pipelines) rather
    #: than the measured software implementation (CPU/GPU libraries).
    uses_kernel_ops: bool = False
    #: Whether ``simd_efficiency`` applies (software baselines only).
    applies_simd_efficiency: bool = True

    def __post_init__(self) -> None:
        if self.memory_bandwidth_gbps <= 0 or self.compute_throughput_gops <= 0:
            raise ConfigurationError(f"{self.name}: rates must be positive")
        if self.busy_power_w < 0 or self.fixed_overhead_ns < 0:
            raise ConfigurationError(f"{self.name}: power/overhead must be >= 0")
        if (
            self.host_transfer_bandwidth_gbps is not None
            and self.host_transfer_bandwidth_gbps <= 0
        ):
            raise ConfigurationError(f"{self.name}: transfer bandwidth must be positive")


#: Intel Xeon Gold 5118: 12 cores @ 2.3 GHz.  The sustained scalar-equivalent
#: throughput of the measured (library/table-driven) implementations is
#: ~30 Gop/s before the per-workload SIMD-efficiency derating.
CPU_XEON_5118 = ProcessorSpec(
    name="CPU",
    memory_bandwidth_gbps=20.0,
    compute_throughput_gops=30.0,
    busy_power_w=105.0,
    fixed_overhead_ns=2_000.0,
    energy_per_byte_nj=0.15,
    energy_per_op_nj=0.25,
    area_mm2=485.0,
)

#: NVIDIA GeForce RTX 3080 Ti: massive on-board bandwidth and throughput,
#: but the working set of these streaming byte kernels crosses PCIe 3.0
#: (~12 GB/s effective), which bounds end-to-end throughput.
GPU_RTX_3080TI = ProcessorSpec(
    name="GPU",
    memory_bandwidth_gbps=800.0,
    compute_throughput_gops=15_000.0,
    busy_power_w=350.0,
    fixed_overhead_ns=20_000.0,
    energy_per_byte_nj=0.06,
    energy_per_op_nj=0.02,
    area_mm2=628.0,
    host_transfer_bandwidth_gbps=12.0,
)

#: NVIDIA Tesla P100 (Table 7's data-centre GPU): HBM2 on board, PCIe to host.
GPU_P100 = ProcessorSpec(
    name="GPU-P100",
    memory_bandwidth_gbps=550.0,
    compute_throughput_gops=10_000.0,
    busy_power_w=300.0,
    fixed_overhead_ns=20_000.0,
    energy_per_byte_nj=0.05,
    energy_per_op_nj=0.02,
    area_mm2=610.0,
    host_transfer_bandwidth_gbps=12.0,
)

#: Xilinx Zynq UltraScale+ ZCU102: the HLS designs are modest-clock
#: pipelines (one kernel operation per fabric cycle at ~120 MHz effective
#: after HLS initiation intervals); throughput is kernel-bound well below
#: the board's DDR4 bandwidth.
FPGA_ZCU102 = ProcessorSpec(
    name="FPGA",
    memory_bandwidth_gbps=19.2,
    compute_throughput_gops=0.12,
    busy_power_w=20.0,
    fixed_overhead_ns=5_000.0,
    energy_per_byte_nj=0.10,
    energy_per_op_nj=0.01,
    area_mm2=600.0,
    uses_kernel_ops=True,
    applies_simd_efficiency=False,
)


class ProcessorBaseline(BaselineSystem):
    """Roofline cost model of a processor-centric system."""

    def __init__(self, spec: ProcessorSpec) -> None:
        self.spec = spec
        self.name = spec.name
        self.area_mm2 = spec.area_mm2

    def evaluate(self, recipe: WorkloadRecipe, elements: int) -> BaselineCost:
        """Roofline latency plus busy-power energy for one workload run."""
        if elements <= 0:
            raise ConfigurationError("element count must be positive")
        spec = self.spec
        bytes_moved = elements * recipe.bytes_per_element
        if spec.uses_kernel_ops:
            operations = elements * recipe.effective_kernel_ops
        else:
            operations = elements * recipe.cpu_ops_per_element

        memory_time_ns = bytes_moved / spec.memory_bandwidth_gbps
        throughput = spec.compute_throughput_gops
        if spec.applies_simd_efficiency:
            throughput *= recipe.simd_efficiency
        compute_time_ns = operations / throughput
        transfer_time_ns = 0.0
        if spec.host_transfer_bandwidth_gbps is not None:
            transfer_time_ns = bytes_moved / spec.host_transfer_bandwidth_gbps

        latency = spec.fixed_overhead_ns + max(
            memory_time_ns, compute_time_ns, transfer_time_ns
        )
        dynamic_energy = (
            bytes_moved * spec.energy_per_byte_nj + operations * spec.energy_per_op_nj
        )
        static_energy = spec.busy_power_w * latency  # W * ns = nJ
        return BaselineCost(
            system=spec.name,
            workload=recipe.name,
            elements=elements,
            latency_ns=latency,
            energy_nj=dynamic_energy + static_energy,
        )

"""Behavioural circuit models (SPICE substitute) for the reliability study.

The paper validates the three pLUTo designs with SPICE Monte-Carlo
simulations of a row activation (Figure 6).  We reproduce the study with an
analytical charge-sharing + sense-amplification model of the bitline and a
Gaussian process-variation layer.
"""

from repro.circuit.bitline import (
    BitlineParameters,
    BitlineTransient,
    CellState,
    simulate_activation,
)
from repro.circuit.montecarlo import MonteCarloConfig, MonteCarloRunner, VariationSample
from repro.circuit.senseamp import SenseAmplifier

__all__ = [
    "BitlineParameters",
    "BitlineTransient",
    "CellState",
    "simulate_activation",
    "MonteCarloConfig",
    "MonteCarloRunner",
    "VariationSample",
    "SenseAmplifier",
]

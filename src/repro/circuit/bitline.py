"""Analytical bitline model of a DRAM row activation.

The activation transient has two phases (Section 2.1):

1. **Charge sharing** — when the wordline rises, the cell capacitor and the
   precharged bitline (at VDD/2) share charge.  The bitline settles
   exponentially towards ``V_cs = VDD/2 ± delta`` where
   ``delta = (VDD/2) * Cc / (Cc + Cb)`` (the charge-sharing voltage swing).
2. **Sense amplification** — once the sense amplifier is enabled, the
   bitline is driven towards VDD (for a stored 1) or 0 V (for a stored 0),
   and the cell charge is restored through the open access transistor.

The three pLUTo designs change where the matchline-controlled switch sits:

* **pLUTo-BSA** adds an FF behind the sense amplifier; the bitline
  behaviour is essentially unmodified (a small extra load on the SA node).
* **pLUTo-GSA** gates the sense amplifier from the bitline; unmatched
  bitlines never get amplified or restored (destructive read), matched
  bitlines see a slightly larger series resistance (noisier transient).
* **pLUTo-GMC** gates the cell itself; unmatched cells never perturb the
  bitline at all, matched cells behave like the baseline with a small extra
  series resistance from the second transistor.

These behavioural differences are exactly what Figure 6 plots; the model
here reproduces the settling waveforms and the final-voltage disturbance
(< ~1 % of the reference), and drives the correctness assertions of the
reliability tests.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "CellState",
    "BitlineParameters",
    "BitlineTransient",
    "simulate_activation",
    "DESIGN_VARIANTS",
]


class CellState(enum.Enum):
    """Logical value stored in the activated DRAM cell."""

    ZERO = 0
    ONE = 1


@dataclass(frozen=True)
class BitlineParameters:
    """Electrical parameters of the cell/bitline pair.

    Default values follow a low-power 22 nm DRAM process: VDD = 1.0 V,
    ~22 fF cell capacitance, ~85 fF bitline capacitance, and time constants
    chosen so charge sharing completes within ~5 ns and full restoration
    within ~35 ns (consistent with tRCD ~14 ns for reliable sensing and
    tRAS ~32 ns for restoration).
    """

    vdd: float = 1.0
    cell_capacitance_f: float = 22e-15
    bitline_capacitance_f: float = 85e-15
    charge_share_tau_ns: float = 1.2
    sense_tau_ns: float = 4.5
    sense_enable_ns: float = 6.0
    #: Extra series-resistance factor introduced by matchline-controlled
    #: switches (1.0 = no extra resistance).
    series_resistance_factor: float = 1.0
    #: Whether the sense amplifier is connected/enabled for this bitline.
    sense_enabled: bool = True
    #: Whether the cell shares charge with the bitline at all (False models
    #: an unmatched pLUTo-GMC cell whose gating transistor stays open).
    cell_connected: bool = True
    #: Static offset of the sense amplifier's restored level (volts).  Process
    #: variation makes the restored bitline miss the rail by a few millivolts;
    #: the paper reports disturbances of ~0.9 % of the reference voltage.
    sense_offset_v: float = 0.0

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ConfigurationError("VDD must be positive")
        if self.cell_capacitance_f <= 0 or self.bitline_capacitance_f <= 0:
            raise ConfigurationError("capacitances must be positive")
        if self.charge_share_tau_ns <= 0 or self.sense_tau_ns <= 0:
            raise ConfigurationError("time constants must be positive")
        if self.series_resistance_factor < 1.0:
            raise ConfigurationError("series resistance factor must be >= 1")

    @property
    def precharge_voltage(self) -> float:
        """Bitline precharge level (VDD/2)."""
        return self.vdd / 2.0

    @property
    def charge_share_delta(self) -> float:
        """Voltage swing induced by charge sharing (|±delta|)."""
        ratio = self.cell_capacitance_f / (
            self.cell_capacitance_f + self.bitline_capacitance_f
        )
        return self.precharge_voltage * ratio


@dataclass(frozen=True)
class BitlineTransient:
    """Result of one activation transient."""

    time_ns: np.ndarray
    voltage_v: np.ndarray
    parameters: BitlineParameters
    cell: CellState

    @property
    def final_voltage(self) -> float:
        """Bitline voltage at the end of the simulated window."""
        return float(self.voltage_v[-1])

    @property
    def sensing_margin(self) -> float:
        """|V - VDD/2| right before the sense amplifier is enabled."""
        enable_index = int(
            np.searchsorted(self.time_ns, self.parameters.sense_enable_ns)
        )
        enable_index = min(max(enable_index, 0), self.voltage_v.size - 1)
        return abs(
            float(self.voltage_v[enable_index]) - self.parameters.precharge_voltage
        )

    def settled_correctly(self, threshold_fraction: float = 0.95) -> bool:
        """Whether the bitline reached the rail matching the stored value."""
        target = (
            self.parameters.vdd if self.cell is CellState.ONE else 0.0
        )
        tolerance = self.parameters.vdd * (1.0 - threshold_fraction)
        return abs(self.final_voltage - target) <= tolerance


def simulate_activation(
    parameters: BitlineParameters,
    cell: CellState,
    *,
    duration_ns: float = 125.0,
    time_step_ns: float = 0.25,
) -> BitlineTransient:
    """Simulate a single activation transient.

    Returns the bitline voltage waveform over ``duration_ns``.  When the
    cell is not connected (unmatched GMC cell) the waveform stays at the
    precharge level; when the sense amplifier is disabled (unmatched GSA
    bitline) the waveform stops at the charge-sharing level and is never
    restored.
    """
    if duration_ns <= 0 or time_step_ns <= 0:
        raise ConfigurationError("duration and time step must be positive")
    time_ns = np.arange(0.0, duration_ns + time_step_ns, time_step_ns)
    v_pre = parameters.precharge_voltage
    voltage = np.full_like(time_ns, v_pre)

    if not parameters.cell_connected:
        return BitlineTransient(time_ns, voltage, parameters, cell)

    sign = 1.0 if cell is CellState.ONE else -1.0
    delta = parameters.charge_share_delta
    share_tau = parameters.charge_share_tau_ns * parameters.series_resistance_factor

    # Phase 1: exponential settling towards VDD/2 ± delta.
    share_target = v_pre + sign * delta
    voltage = share_target - (share_target - v_pre) * np.exp(-time_ns / share_tau)

    if parameters.sense_enabled:
        # Phase 2: after sense enable, drive to the rail (minus any static
        # sense-amplifier offset caused by process variation).
        rail = parameters.vdd if cell is CellState.ONE else 0.0
        rail = rail - parameters.sense_offset_v if cell is CellState.ONE else (
            rail + abs(parameters.sense_offset_v)
        )
        sense_tau = parameters.sense_tau_ns * parameters.series_resistance_factor
        enable = parameters.sense_enable_ns
        after = time_ns >= enable
        v_at_enable = float(
            share_target - (share_target - v_pre) * np.exp(-enable / share_tau)
        )
        voltage[after] = rail - (rail - v_at_enable) * np.exp(
            -(time_ns[after] - enable) / sense_tau
        )
    return BitlineTransient(time_ns, np.clip(voltage, 0.0, parameters.vdd), parameters, cell)


def _baseline(parameters: BitlineParameters) -> BitlineParameters:
    return parameters


def _bsa(parameters: BitlineParameters) -> BitlineParameters:
    # FF buffer loads the SA output node: negligible bitline impact, modelled
    # as a 2 % slower sense phase.
    return replace(parameters, sense_tau_ns=parameters.sense_tau_ns * 1.02)


def _gsa(parameters: BitlineParameters) -> BitlineParameters:
    # Matchline-controlled isolation transistor in series with the SA:
    # slightly slower, noisier transient (the noisiest design per Fig. 6).
    return replace(parameters, series_resistance_factor=1.12)


def _gmc(parameters: BitlineParameters) -> BitlineParameters:
    # Second access transistor in the 2T1C cell adds series resistance on
    # the charge-sharing path only.
    return replace(parameters, charge_share_tau_ns=parameters.charge_share_tau_ns * 1.08)


#: Mapping from design name to the parameter transformation it implies, used
#: by the Figure 6 experiment.  Keys match the paper's panel labels.
DESIGN_VARIANTS = {
    "Baseline": _baseline,
    "pLUTo-BSA": _bsa,
    "pLUTo-GSA": _gsa,
    "pLUTo-GMC": _gmc,
}

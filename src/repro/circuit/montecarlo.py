"""Monte-Carlo process-variation study of the activation transient.

The paper runs 100 SPICE Monte-Carlo iterations with 5 % process variation
and reports that (1) activation remains correct in all designs, (2) the
activation time is unaffected, and (3) the final bitline-voltage
disturbance is only ~0.9 % of the reference (Section 8.1, Figure 6).  This
module reproduces that study on the analytical bitline model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.circuit.bitline import (
    DESIGN_VARIANTS,
    BitlineParameters,
    BitlineTransient,
    CellState,
    simulate_activation,
)
from repro.errors import ConfigurationError

__all__ = ["MonteCarloConfig", "VariationSample", "MonteCarloRunner"]


@dataclass(frozen=True)
class MonteCarloConfig:
    """Configuration of the Monte-Carlo study."""

    runs: int = 100
    variation_sigma: float = 0.05
    seed: int = 2022
    duration_ns: float = 125.0
    time_step_ns: float = 0.25

    def __post_init__(self) -> None:
        if self.runs <= 0:
            raise ConfigurationError("need at least one Monte-Carlo run")
        if not 0 <= self.variation_sigma < 1:
            raise ConfigurationError("variation sigma must be in [0, 1)")


@dataclass(frozen=True)
class VariationSample:
    """Variation factors applied to one run.

    The first four fields are multiplicative factors on the electrical
    parameters; ``sense_offset_v`` is an additive offset on the restored
    bitline level (this is what produces the ~0.9 % final-voltage
    disturbance the paper reports).
    """

    cell_capacitance: float
    bitline_capacitance: float
    charge_share_tau: float
    sense_tau: float
    sense_offset_v: float = 0.0

    def apply(self, parameters: BitlineParameters) -> BitlineParameters:
        """Return the perturbed parameter set."""
        return replace(
            parameters,
            cell_capacitance_f=parameters.cell_capacitance_f * self.cell_capacitance,
            bitline_capacitance_f=(
                parameters.bitline_capacitance_f * self.bitline_capacitance
            ),
            charge_share_tau_ns=parameters.charge_share_tau_ns * self.charge_share_tau,
            sense_tau_ns=parameters.sense_tau_ns * self.sense_tau,
            sense_offset_v=parameters.sense_offset_v + self.sense_offset_v,
        )


@dataclass
class MonteCarloResult:
    """Aggregated outcome of one design's Monte-Carlo sweep."""

    design: str
    cell: CellState
    transients: list[BitlineTransient] = field(default_factory=list)

    @property
    def all_settled(self) -> bool:
        """Whether every run reached the correct rail."""
        return all(t.settled_correctly() for t in self.transients)

    @property
    def final_voltages(self) -> np.ndarray:
        """Final bitline voltage of each run."""
        return np.array([t.final_voltage for t in self.transients])

    @property
    def max_disturbance_fraction(self) -> float:
        """Largest |final voltage - nominal rail| as a fraction of VDD."""
        nominal = (
            self.transients[0].parameters.vdd if self.cell is CellState.ONE else 0.0
        )
        vdd = self.transients[0].parameters.vdd
        return float(np.max(np.abs(self.final_voltages - nominal)) / vdd)


class MonteCarloRunner:
    """Runs the Figure 6 study across designs and cell values."""

    def __init__(
        self,
        config: MonteCarloConfig = MonteCarloConfig(),
        base_parameters: BitlineParameters = BitlineParameters(),
    ) -> None:
        self.config = config
        self.base_parameters = base_parameters
        self._rng = np.random.default_rng(config.seed)

    def sample(self) -> VariationSample:
        """Draw one set of process-variation factors."""
        sigma = self.config.variation_sigma
        draw = self._rng.normal(loc=1.0, scale=sigma, size=4)
        # Physical parameters cannot go negative even in extreme draws.
        draw = np.clip(draw, 0.5, 1.5)
        # Restored-level offset: a few millivolts, bounded at ~1 % of VDD,
        # matching the 0.9 % disturbance reported in Section 8.1.
        offset = float(
            np.clip(
                abs(self._rng.normal(loc=0.0, scale=0.003)),
                0.0,
                0.009 * self.base_parameters.vdd,
            )
        )
        return VariationSample(*draw.tolist(), sense_offset_v=offset)

    def run_design(self, design: str, cell: CellState = CellState.ONE) -> MonteCarloResult:
        """Run the full Monte-Carlo sweep for one design."""
        if design not in DESIGN_VARIANTS:
            raise ConfigurationError(
                f"unknown design {design!r}; expected one of {sorted(DESIGN_VARIANTS)}"
            )
        transform = DESIGN_VARIANTS[design]
        result = MonteCarloResult(design=design, cell=cell)
        for _ in range(self.config.runs):
            perturbed = self.sample().apply(transform(self.base_parameters))
            transient = simulate_activation(
                perturbed,
                cell,
                duration_ns=self.config.duration_ns,
                time_step_ns=self.config.time_step_ns,
            )
            result.transients.append(transient)
        return result

    def run_all(self, cell: CellState = CellState.ONE) -> dict[str, MonteCarloResult]:
        """Run every design variant (the full Figure 6 grid for one cell value)."""
        return {design: self.run_design(design, cell) for design in DESIGN_VARIANTS}

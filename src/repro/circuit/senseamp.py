"""Sense amplifier behavioural model.

The sense amplifier decides the stored value from the charge-sharing
perturbation and (in pLUTo-GSA/GMC) is additionally gated by the matchline.
This model captures the decision logic and the minimum differential voltage
required for reliable sensing, which the Monte-Carlo study perturbs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.bitline import BitlineParameters, CellState
from repro.errors import ConfigurationError

__all__ = ["SenseAmplifier"]


@dataclass
class SenseAmplifier:
    """Latch-style sense amplifier with a minimum sensing margin.

    Attributes
    ----------
    min_margin_v:
        Minimum |V_bitline - VDD/2| required to sense reliably.  With a 5 %
        process variation on a ~110 mV charge-sharing swing, margins stay
        well above the default 20 mV threshold.
    enabled:
        pLUTo-GSA/GMC gate the enable signal with the matchline.
    """

    min_margin_v: float = 0.02
    enabled: bool = True

    def __post_init__(self) -> None:
        if self.min_margin_v <= 0:
            raise ConfigurationError("sensing margin must be positive")

    def sense(self, bitline_voltage: float, parameters: BitlineParameters) -> CellState:
        """Resolve the bitline perturbation into a logical value.

        Raises :class:`ConfigurationError` if the amplifier is disabled or
        the perturbation is below the reliable-sensing margin.
        """
        if not self.enabled:
            raise ConfigurationError("sense amplifier is gated off (no match)")
        margin = bitline_voltage - parameters.precharge_voltage
        if abs(margin) < self.min_margin_v:
            raise ConfigurationError(
                f"sensing margin {abs(margin) * 1e3:.1f} mV below the "
                f"{self.min_margin_v * 1e3:.1f} mV reliability threshold"
            )
        return CellState.ONE if margin > 0 else CellState.ZERO

    def can_sense(self, bitline_voltage: float, parameters: BitlineParameters) -> bool:
        """Whether the perturbation is large enough for reliable sensing."""
        if not self.enabled:
            return False
        margin = abs(bitline_voltage - parameters.precharge_voltage)
        return margin >= self.min_margin_v

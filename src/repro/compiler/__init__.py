"""The pLUTo Compiler (Section 6.3)."""

from repro.compiler.dependency_graph import DependencyGraph
from repro.compiler.lowering import CompiledProgram, PlutoCompiler

__all__ = ["DependencyGraph", "CompiledProgram", "PlutoCompiler"]

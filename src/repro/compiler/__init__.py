"""The pLUTo Compiler (Section 6.3)."""

from repro.compiler.dependency_graph import DependencyGraph
from repro.compiler.lowering import CompiledProgram, PlutoCompiler, program_structure_key

__all__ = [
    "DependencyGraph",
    "CompiledProgram",
    "PlutoCompiler",
    "program_structure_key",
]

"""Data-dependency analysis of pLUTo API programs.

The compiler analyses an application's data-dependency graph to plan
in-memory placement and alignment of data (Figure 5 d).  We build a
directed graph whose nodes are API calls and whose edges connect producers
to consumers of each vector, then derive a topological execution order and
per-vector lifetime information used by the allocator.
"""

from __future__ import annotations

import networkx as nx

from repro.api.handles import ApiCall, PlutoVector
from repro.errors import CompilationError

__all__ = ["DependencyGraph"]


class DependencyGraph:
    """Producer/consumer graph over a list of API calls."""

    def __init__(self, calls: list[ApiCall]) -> None:
        self.calls = list(calls)
        self.graph = nx.DiGraph()
        self._build()

    def _build(self) -> None:
        producers: dict[str, int] = {}
        for index, call in enumerate(self.calls):
            self.graph.add_node(index, call=call)
            if call.output.name in producers:
                raise CompilationError(
                    f"vector {call.output.name!r} is written by more than one "
                    "API call; pLUTo programs are single-assignment"
                )
            producers[call.output.name] = index
        for index, call in enumerate(self.calls):
            for operand in call.inputs:
                producer = producers.get(operand.name)
                if producer is not None and producer != index:
                    self.graph.add_edge(producer, index, vector=operand.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            raise CompilationError("the API program contains a dependency cycle")

    # ------------------------------------------------------------------ #
    # Queries used by the compiler
    # ------------------------------------------------------------------ #
    def execution_order(self) -> list[ApiCall]:
        """API calls in a valid topological execution order.

        Ties are broken by original program order so the lowering is
        deterministic and matches what the programmer wrote when possible.
        """
        order = nx.lexicographical_topological_sort(self.graph, key=lambda node: node)
        return [self.calls[node] for node in order]

    def external_inputs(self) -> list[PlutoVector]:
        """Vectors read by the program but never produced by it (user inputs)."""
        produced = {call.output.name for call in self.calls}
        seen: dict[str, PlutoVector] = {}
        for call in self.calls:
            for operand in call.inputs:
                if operand.name not in produced and operand.name not in seen:
                    seen[operand.name] = operand
        return list(seen.values())

    def outputs(self) -> list[PlutoVector]:
        """Vectors produced but never consumed (program results)."""
        consumed = {operand.name for call in self.calls for operand in call.inputs}
        return [call.output for call in self.calls if call.output.name not in consumed]

    def consumers_of(self, vector: PlutoVector) -> list[ApiCall]:
        """All calls that read ``vector``."""
        return [
            call
            for call in self.calls
            if any(operand.name == vector.name for operand in call.inputs)
        ]

    @property
    def depth(self) -> int:
        """Length of the longest dependency chain (critical path in calls)."""
        if not self.graph:
            return 0
        return nx.dag_longest_path_length(self.graph) + 1

"""Lowering pLUTo API programs to pLUTo ISA instructions.

The compiler's two responsibilities (Section 6.3) are:

1. **Allocation** — every user vector gets a row register
   (``pluto_row_alloc``) and every distinct LUT gets a subarray register
   (``pluto_subarray_alloc``).
2. **Operand alignment** — binary LUT routines (add, mul, bitwise-as-LUT)
   are lowered to *shift-left + OR + pluto_op* so the two operands form a
   single concatenated LUT index, exactly as in the Figure 5 example.

The output is a :class:`CompiledProgram`: the ISA program, the register
bindings for the program's external inputs and outputs, and the LUT
attached to each subarray register (which the controller loads before
execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.api.handles import ApiCall, PlutoVector
from repro.compiler.dependency_graph import DependencyGraph
from repro.core.lut import LookupTable
from repro.errors import CompilationError
from repro.isa.instructions import (
    BitwiseKind,
    PlutoBitShift,
    PlutoBitwise,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.isa.program import PlutoProgram
from repro.isa.registers import RegisterFile, RowRegister, SubarrayRegister

__all__ = ["CompiledProgram", "PlutoCompiler", "program_structure_key"]


def program_structure_key(calls: "list[ApiCall] | tuple[ApiCall, ...]") -> tuple:
    """A hashable key capturing everything compilation depends on.

    Two call lists with the same key lower to interchangeable
    :class:`CompiledProgram` objects: the key covers each call's
    operation, its operand names/sizes/widths, the exact LUT contents
    (:class:`LookupTable` is frozen, hence hashable), and its parameters.
    The session layer uses this to cache compiled programs across
    batched submissions.
    """

    def _vector_key(vector: PlutoVector) -> tuple:
        return (vector.name, vector.size, vector.bit_width)

    return tuple(
        (
            call.operation,
            tuple(_vector_key(vector) for vector in call.inputs),
            _vector_key(call.output),
            call.lut,
            tuple(sorted(call.parameters.items())),
        )
        for call in calls
    )


@dataclass
class CompiledProgram:
    """Result of compiling a pLUTo API program."""

    program: PlutoProgram
    register_file: RegisterFile
    #: Vector name -> row register holding it.
    vector_bindings: dict[str, RowRegister]
    #: Subarray register index -> LUT to load there.
    lut_bindings: dict[int, LookupTable]
    #: Vectors the caller must supply values for before execution.
    external_inputs: list[PlutoVector] = field(default_factory=list)
    #: Vectors holding the program results.
    outputs: list[PlutoVector] = field(default_factory=list)
    #: Set by the execution front doors after this (cached) program
    #: verified error-free, so warm verified serving costs an attribute
    #: check instead of a structure-key hash per run.
    verification_ok: bool = field(default=False, compare=False)

    @property
    def lut_queries(self) -> int:
        """Number of ``pluto_op`` instructions in the compiled program."""
        return self.program.lut_queries


class PlutoCompiler:
    """Lowers API call lists into validated ISA programs."""

    def compile(self, calls: list[ApiCall]) -> CompiledProgram:
        """Compile an API program (list of recorded calls) to pLUTo ISA."""
        if not calls:
            raise CompilationError("cannot compile an empty API program")
        graph = DependencyGraph(calls)
        register_file = RegisterFile()
        program = PlutoProgram()
        vector_bindings: dict[str, RowRegister] = {}
        lut_bindings: dict[int, LookupTable] = {}
        # Keyed on the (frozen, hashable) table itself, not its name:
        # distinct tables that happen to share a name must not alias one
        # subarray, and the optimizer's LUT-deduplication pass makes
        # content-equal tables *be* one object so they bind once here.
        lut_registers: dict[LookupTable, SubarrayRegister] = {}

        def _bind_vector(vector: PlutoVector) -> RowRegister:
            register = vector_bindings.get(vector.name)
            if register is None:
                register = register_file.allocate_row(vector.size, vector.bit_width)
                vector_bindings[vector.name] = register
                program.append(
                    PlutoRowAlloc(
                        destination=register,
                        size_elements=vector.size,
                        bit_width=vector.bit_width,
                    )
                )
            return register

        def _bind_lut(lut: LookupTable) -> SubarrayRegister:
            register = lut_registers.get(lut)
            if register is None:
                register = register_file.allocate_subarray(lut.num_entries, lut.name)
                lut_registers[lut] = register
                lut_bindings[register.index] = lut
                program.append(
                    PlutoSubarrayAlloc(
                        destination=register,
                        num_rows=lut.num_entries,
                        lut_name=lut.name,
                    )
                )
            return register

        # Bind external inputs first so their registers exist up front.
        for vector in graph.external_inputs():
            _bind_vector(vector)

        for call in graph.execution_order():
            self._lower_call(
                call,
                program,
                register_file,
                _bind_vector,
                _bind_lut,
            )

        program.validate()
        return CompiledProgram(
            program=program,
            register_file=register_file,
            vector_bindings=vector_bindings,
            lut_bindings=lut_bindings,
            external_inputs=graph.external_inputs(),
            outputs=graph.outputs(),
        )

    # ------------------------------------------------------------------ #
    # Per-call lowering
    # ------------------------------------------------------------------ #
    def _lower_call(self, call, program, register_file, bind_vector, bind_lut) -> None:
        operation = call.operation
        output_register = bind_vector(call.output)
        input_registers = [bind_vector(vector) for vector in call.inputs]

        if operation in ("add", "mul") or operation.endswith("_lut"):
            self._lower_binary_lut(
                call, program, register_file, bind_lut, input_registers, output_register
            )
        elif operation == "map":
            lut_register = bind_lut(call.lut)
            program.append(
                PlutoOp(
                    destination=output_register,
                    source=input_registers[0],
                    lut_subarray=lut_register,
                    lut_size=call.lut.num_entries,
                    lut_bit_width=call.lut.element_bits,
                )
            )
        elif operation in ("not", "and", "or", "xor", "xnor", "nand", "nor"):
            kind = BitwiseKind(operation)
            program.append(
                PlutoBitwise(
                    kind=kind,
                    destination=output_register,
                    source1=input_registers[0],
                    source2=input_registers[1] if len(input_registers) > 1 else None,
                )
            )
        elif operation == "shift":
            direction = (
                ShiftDirection.LEFT
                if call.parameters.get("direction", "l") == "l"
                else ShiftDirection.RIGHT
            )
            program.append(
                PlutoMove(destination=output_register, source=input_registers[0])
            )
            program.append(
                PlutoBitShift(
                    direction=direction,
                    target=output_register,
                    amount=int(call.parameters.get("bits", 0)),
                )
            )
        elif operation == "move":
            program.append(
                PlutoMove(destination=output_register, source=input_registers[0])
            )
        else:
            raise CompilationError(f"unsupported API operation {operation!r}")

    def _lower_binary_lut(
        self, call, program, register_file, bind_lut, input_registers, output_register
    ) -> None:
        """Lower a binary LUT routine to shift + OR + pluto_op (Figure 5 c/d)."""
        if call.lut is None:
            raise CompilationError(
                f"API call {call.operation!r} is LUT-backed but carries no LUT"
            )
        if len(input_registers) != 2:
            raise CompilationError(
                f"API call {call.operation!r} needs exactly two inputs"
            )
        lut_register = bind_lut(call.lut)
        operand_bits = int(call.parameters.get("bit_width", call.inputs[1].bit_width))

        # Temporary rows for the shifted left operand and the merged index.
        shifted = register_file.allocate_row(call.inputs[0].size, call.lut.index_bits)
        merged = register_file.allocate_row(call.inputs[0].size, call.lut.index_bits)
        program.append(
            PlutoRowAlloc(
                destination=shifted,
                size_elements=call.inputs[0].size,
                bit_width=call.lut.index_bits,
            )
        )
        program.append(
            PlutoRowAlloc(
                destination=merged,
                size_elements=call.inputs[0].size,
                bit_width=call.lut.index_bits,
            )
        )
        # 1) Copy the left operand and shift it into the high half of the index.
        program.append(PlutoMove(destination=shifted, source=input_registers[0]))
        program.append(
            PlutoBitShift(
                direction=ShiftDirection.LEFT, target=shifted, amount=operand_bits
            )
        )
        # 2) Merge with the right operand (bitwise OR).
        program.append(
            PlutoBitwise(
                kind=BitwiseKind.OR,
                destination=merged,
                source1=shifted,
                source2=input_registers[1],
            )
        )
        # 3) Query the LUT with the merged indices.
        program.append(
            PlutoOp(
                destination=output_register,
                source=merged,
                lut_subarray=lut_register,
                lut_size=call.lut.num_entries,
                lut_bit_width=call.lut.element_bits,
            )
        )

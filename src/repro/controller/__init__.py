"""The pLUTo Controller (Section 6.4) and the parallel dispatchers."""

from repro.controller.allocation_table import AllocationTable, RowAllocation, SubarrayAllocation
from repro.controller.dispatch import (
    ParallelDispatcher,
    ShardedExecutionResult,
    ShardPlan,
    ShardPlanner,
    merged_makespan_ns,
    sweep_act_interval_ns,
)
from repro.controller.executor import ExecutionResult, PlutoController
from repro.controller.hierarchy import (
    HierarchicalDispatcher,
    HierarchicalExecutionResult,
    HierarchyPlanner,
    HierarchyShard,
    bus_occupancy_ns,
    hierarchical_makespan_ns,
    interleaved_bank_order,
)
from repro.controller.rom import CommandRom

__all__ = [
    "AllocationTable",
    "RowAllocation",
    "SubarrayAllocation",
    "ExecutionResult",
    "PlutoController",
    "CommandRom",
    "ParallelDispatcher",
    "ShardedExecutionResult",
    "ShardPlan",
    "ShardPlanner",
    "merged_makespan_ns",
    "sweep_act_interval_ns",
    "HierarchicalDispatcher",
    "HierarchicalExecutionResult",
    "HierarchyPlanner",
    "HierarchyShard",
    "bus_occupancy_ns",
    "hierarchical_makespan_ns",
    "interleaved_bank_order",
]

"""The pLUTo Controller (Section 6.4)."""

from repro.controller.allocation_table import AllocationTable, RowAllocation, SubarrayAllocation
from repro.controller.executor import ExecutionResult, PlutoController
from repro.controller.rom import CommandRom

__all__ = [
    "AllocationTable",
    "RowAllocation",
    "SubarrayAllocation",
    "ExecutionResult",
    "PlutoController",
    "CommandRom",
]

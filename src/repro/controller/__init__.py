"""The pLUTo Controller (Section 6.4) and the bank-parallel dispatcher."""

from repro.controller.allocation_table import AllocationTable, RowAllocation, SubarrayAllocation
from repro.controller.dispatch import (
    ParallelDispatcher,
    ShardedExecutionResult,
    ShardPlan,
    ShardPlanner,
    merged_makespan_ns,
    sweep_act_interval_ns,
)
from repro.controller.executor import ExecutionResult, PlutoController
from repro.controller.rom import CommandRom

__all__ = [
    "AllocationTable",
    "RowAllocation",
    "SubarrayAllocation",
    "ExecutionResult",
    "PlutoController",
    "CommandRom",
    "ParallelDispatcher",
    "ShardedExecutionResult",
    "ShardPlan",
    "ShardPlanner",
    "merged_makespan_ns",
    "sweep_act_interval_ns",
]

"""The pLUTo Controller (Section 6.4) and the parallel dispatchers."""

from repro.controller.allocation_table import AllocationTable, RowAllocation, SubarrayAllocation
from repro.controller.dispatch import (
    ParallelDispatcher,
    ShardedExecutionResult,
    ShardPlan,
    ShardPlanner,
    engine_helper_cache_stats,
    execute_shard_plans,
    merged_makespan_ns,
    sweep_act_interval_ns,
)
from repro.controller.executor import (
    ExecutionResult,
    PlutoController,
    TraceTemplate,
    clear_trace_templates,
    trace_template_stats,
)
from repro.controller.hierarchy import (
    HierarchicalDispatcher,
    HierarchicalExecutionResult,
    HierarchyPlanner,
    HierarchyShard,
    bus_occupancy_ns,
    clear_hierarchy_cache,
    hierarchical_makespan_ns,
    hierarchy_cache_stats,
    interleaved_bank_order,
)
from repro.controller.rom import CommandRom

__all__ = [
    "AllocationTable",
    "RowAllocation",
    "SubarrayAllocation",
    "ExecutionResult",
    "PlutoController",
    "TraceTemplate",
    "trace_template_stats",
    "clear_trace_templates",
    "CommandRom",
    "ParallelDispatcher",
    "ShardedExecutionResult",
    "ShardPlan",
    "ShardPlanner",
    "execute_shard_plans",
    "engine_helper_cache_stats",
    "merged_makespan_ns",
    "sweep_act_interval_ns",
    "HierarchicalDispatcher",
    "HierarchicalExecutionResult",
    "HierarchyPlanner",
    "HierarchyShard",
    "bus_occupancy_ns",
    "hierarchical_makespan_ns",
    "hierarchy_cache_stats",
    "clear_hierarchy_cache",
    "interleaved_bank_order",
]

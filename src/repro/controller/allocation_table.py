"""The pLUTo Controller's in-memory allocation table.

The allocation of pLUTo row and subarray registers is recorded in an
in-memory table that the controller consults to derive the physical DRAM
addresses used when issuing commands (Section 6.1, "pLUTo Registers").

This implementation allocates rows bottom-up and LUT subarrays top-down in
the same bank, keeping the source/destination rows and the LUT-holding
subarrays in close physical proximity, as the system integration requires.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.address import RowAddress
from repro.dram.geometry import DRAMGeometry
from repro.errors import AllocationError
from repro.isa.registers import RowRegister, SubarrayRegister

__all__ = ["RowAllocation", "SubarrayAllocation", "AllocationTable"]


@dataclass(frozen=True)
class RowAllocation:
    """Physical placement of a row register: one or more consecutive rows."""

    register: RowRegister
    bank: int
    subarray: int
    first_row: int
    num_rows: int

    @property
    def addresses(self) -> list[RowAddress]:
        """The physical row addresses, in order."""
        return [
            RowAddress(self.bank, self.subarray, self.first_row + offset)
            for offset in range(self.num_rows)
        ]


@dataclass(frozen=True)
class SubarrayAllocation:
    """Physical placement of a subarray register (a LUT-holding subarray)."""

    register: SubarrayRegister
    bank: int
    subarray: int
    num_rows: int


class AllocationTable:
    """Binds registers to physical rows/subarrays within one bank."""

    def __init__(self, geometry: DRAMGeometry, *, bank: int = 0) -> None:
        self.geometry = geometry
        self.bank = bank
        self._row_allocations: dict[int, RowAllocation] = {}
        self._subarray_allocations: dict[int, SubarrayAllocation] = {}
        #: Data rows are packed into subarray 0 from the bottom.
        self._next_data_row = 0
        #: LUT subarrays are handed out from the top of the bank downwards.
        self._next_lut_subarray = geometry.subarrays_per_bank - 1

    # ------------------------------------------------------------------ #
    # Binding
    # ------------------------------------------------------------------ #
    def bind_row(self, register: RowRegister) -> RowAllocation:
        """Allocate physical rows for a row register."""
        if register.index in self._row_allocations:
            return self._row_allocations[register.index]
        elements_per_row = self.geometry.elements_per_row(register.bit_width)
        num_rows = max(1, -(-register.size_elements // elements_per_row))
        if self._next_data_row + num_rows > self.geometry.rows_per_subarray:
            raise AllocationError(
                "data subarray exhausted: cannot place "
                f"{num_rows} more rows for {register.name}"
            )
        allocation = RowAllocation(
            register=register,
            bank=self.bank,
            subarray=0,
            first_row=self._next_data_row,
            num_rows=num_rows,
        )
        self._next_data_row += num_rows
        self._row_allocations[register.index] = allocation
        return allocation

    def bind_subarray(self, register: SubarrayRegister) -> SubarrayAllocation:
        """Allocate a pLUTo-enabled subarray for a LUT register."""
        if register.index in self._subarray_allocations:
            return self._subarray_allocations[register.index]
        if register.num_rows > self.geometry.rows_per_subarray:
            raise AllocationError(
                f"LUT {register.lut_name!r} needs {register.num_rows} rows but a "
                f"subarray has only {self.geometry.rows_per_subarray}"
            )
        if self._next_lut_subarray <= 0:
            raise AllocationError("no pLUTo-enabled subarrays left in the bank")
        allocation = SubarrayAllocation(
            register=register,
            bank=self.bank,
            subarray=self._next_lut_subarray,
            num_rows=register.num_rows,
        )
        self._next_lut_subarray -= 1
        self._subarray_allocations[register.index] = allocation
        return allocation

    # ------------------------------------------------------------------ #
    # Lookup
    # ------------------------------------------------------------------ #
    def row_allocation(self, register: RowRegister) -> RowAllocation:
        """Look up (or create) the binding of a row register."""
        return self.bind_row(register)

    def subarray_allocation(self, register: SubarrayRegister) -> SubarrayAllocation:
        """Look up (or create) the binding of a subarray register."""
        return self.bind_subarray(register)

    @property
    def rows_in_use(self) -> int:
        """Number of data rows currently allocated."""
        return self._next_data_row

    @property
    def lut_subarrays_in_use(self) -> int:
        """Number of LUT-holding subarrays currently allocated."""
        return self.geometry.subarrays_per_bank - 1 - self._next_lut_subarray

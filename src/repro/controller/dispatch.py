"""Bank-parallel sharded execution of pLUTo programs.

The paper's scalability results (Figure 12) and the tFAW study
(Section 8.7) rest on parallelism across subarrays and banks: every bank
can sweep its own LUT-holding subarray concurrently, with the rank-level
tRRD/tFAW activation constraints as the only coupling between them.  This
module adds that execution mode on top of the existing controller:

* :class:`ShardPlanner` partitions a program's element space into
  contiguous shards and rewrites the recorded API calls so each shard is
  a complete, smaller program over its slice (equal-sized shards share
  one compiled program through the structure-keyed compile cache).
* :class:`ParallelDispatcher` executes the shards through the
  :class:`~repro.controller.executor.PlutoController` — in one *fused*
  batched pass over a ``(shards, slice)`` view of the inputs when the
  selected :class:`~repro.backend.base.ExecutionBackend` supports it
  (the vectorized default), or shard by shard on the functional oracle —
  placing shard *i* in bank *i* so the per-shard command traces carry
  distinct bank ids.
* :func:`merged_makespan_ns` merges the per-shard command streams with
  the semantics of the timing-aware
  :class:`~repro.dram.scheduler.CommandScheduler`, memoized on the
  streams' structure (:mod:`repro.dram.analytic`), so the aggregate
  latency is a *makespan* with cross-bank tRRD/tFAW contention enforced,
  not a naive per-shard sum.

Functional outputs are bit-identical to unsharded execution by
construction: every shard runs the same lowering over a disjoint slice of
the same inputs, and the dispatcher concatenates the slices in order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from repro.api.handles import ApiCall, PlutoVector
from repro.backend.base import ExecutionBackend
from repro.controller.executor import ExecutionResult, PlutoController
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.analytic import memoized_merge_makespan_ns
from repro.dram.commands import Command, CommandTrace
from repro.dram.scheduler import CommandScheduler
from repro.errors import ConfigurationError, ExecutionError, VerificationError
from repro.obs.trace import stage

__all__ = [
    "ShardPlan",
    "ShardPlanner",
    "ShardedExecutionResult",
    "ParallelDispatcher",
    "execute_shard_plans",
    "sweep_act_interval_ns",
    "sweep_tail_ns",
    "sweep_acts_per_row",
    "merged_makespan_ns",
    "rank_scheduler",
    "rank_scheduler_key",
    "engine_helper_cache_stats",
    "clear_engine_helper_caches",
]


@lru_cache(maxsize=None)
def _sweep_act_interval(
    design: PlutoDesign, t_rcd: float, t_rp: float, lisa_hop_ns: float
) -> float:
    if design is PlutoDesign.GSA:
        return lisa_hop_ns + t_rcd
    if design is PlutoDesign.GMC:
        return t_rcd
    return t_rcd + t_rp


def sweep_act_interval_ns(engine: PlutoEngine) -> float:
    """ACT-to-ACT spacing inside a Row Sweep for the engine's design.

    Mirrors the per-design query-latency expressions of Table 1:
    pLUTo-BSA precharges after every activation (tRCD + tRP per row),
    pLUTo-GMC opens rows back to back (tRCD per row, one trailing
    precharge), and pLUTo-GSA additionally streams the LUT row back in
    through a LISA hop before each activation (destructive reads).
    Cached on the (design, timing) values the result depends on.
    """
    return _sweep_act_interval(
        engine.config.design,
        engine.timing.t_rcd,
        engine.timing.t_rp,
        engine.cost_model.lisa_hop_latency_ns,
    )


@lru_cache(maxsize=None)
def _sweep_tail(design: PlutoDesign, t_rp: float) -> float:
    if design is PlutoDesign.BSA:
        return 0.0
    return t_rp


def sweep_tail_ns(engine: PlutoEngine) -> float:
    """Bank occupancy after a Row Sweep's final activation.

    GSA/GMC sweeps precharge once at the end (the ``+ tRP`` term of their
    Table 1 query latencies); BSA's per-row spacing already contains the
    precharge, so its sweeps carry no tail.
    """
    return _sweep_tail(engine.config.design, engine.timing.t_rp)


@lru_cache(maxsize=None)
def _sweep_acts(design: PlutoDesign) -> int:
    return 2 if design is PlutoDesign.GSA else 1


def sweep_acts_per_row(engine: PlutoEngine) -> int:
    """Row activations per swept LUT entry (2 for GSA's reload+sweep)."""
    return _sweep_acts(engine.config.design)


def engine_helper_cache_stats() -> dict[str, dict[str, int]]:
    """Hit/miss counters of the cached pure per-engine helpers."""
    from repro.controller.hierarchy import _interleaved_bank_order

    stats: dict[str, dict[str, int]] = {}
    for name, cached in (
        ("sweep_act_interval_ns", _sweep_act_interval),
        ("sweep_tail_ns", _sweep_tail),
        ("sweep_acts_per_row", _sweep_acts),
        ("interleaved_bank_order", _interleaved_bank_order),
    ):
        info = cached.cache_info()
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "size": info.currsize,
        }
    return stats


def clear_engine_helper_caches() -> None:
    """Drop the cached pure per-engine helpers (and the throttled timings)."""
    from repro.controller.hierarchy import _interleaved_bank_order

    for cached in (
        _sweep_act_interval,
        _sweep_tail,
        _sweep_acts,
        _throttled_timing,
        _interleaved_bank_order,
    ):
        cached.cache_clear()


@lru_cache(maxsize=None)
def _throttled_timing(timing, tfaw_fraction: float):
    return timing.with_tfaw_fraction(tfaw_fraction)


def rank_scheduler(engine: PlutoEngine) -> CommandScheduler:
    """A fresh per-rank scheduler configured for the engine's design."""
    return CommandScheduler(
        _throttled_timing(engine.timing, engine.config.tfaw_fraction),
        num_banks=engine.geometry.banks,
        banks_per_group=engine.geometry.banks_per_group,
        sweep_act_interval_ns=sweep_act_interval_ns(engine),
        sweep_tail_ns=sweep_tail_ns(engine),
        sweep_acts_per_row=sweep_acts_per_row(engine),
        lisa_hop_ns=engine.cost_model.lisa_hop_latency_ns,
    )


def rank_scheduler_key(engine: PlutoEngine) -> tuple:
    """The :func:`rank_scheduler` configuration as a hashable cache key.

    Mirrors :func:`repro.dram.analytic.scheduler_signature` without
    constructing a scheduler, so memo lookups on warm caches cost a few
    attribute reads.
    """
    return (
        _throttled_timing(engine.timing, engine.config.tfaw_fraction),
        engine.geometry.banks,
        engine.geometry.banks_per_group,
        sweep_act_interval_ns(engine),
        sweep_tail_ns(engine),
        sweep_acts_per_row(engine),
        engine.cost_model.lisa_hop_latency_ns,
    )


def merged_makespan_ns(
    command_streams: Sequence[Sequence[Command]], engine: PlutoEngine
) -> float:
    """Makespan of concurrent per-bank command streams under rank timing.

    The streams are merged at activation granularity with the semantics
    of :meth:`CommandScheduler.merge_streams`, configured with the
    engine's bank count, its design's sweep spacing, and its
    configuration's tFAW throttle (``tfaw_fraction``, matching the
    Figure 13 convention where 0 means unthrottled).  Returns the time at
    which the last command completes.  Results are memoized on the
    streams' structural signature (:mod:`repro.dram.analytic`), so
    repeated identical shard plans merge once.
    """
    streams = [stream for stream in command_streams if len(stream)]
    if not streams:
        return 0.0
    return memoized_merge_makespan_ns(
        streams,
        lambda: rank_scheduler(engine),
        config_key=rank_scheduler_key(engine),
    )


@dataclass(frozen=True)
class ShardPlan:
    """One shard: a bank, an element slice, and the rewritten program."""

    index: int
    bank: int
    start: int
    stop: int
    calls: tuple[ApiCall, ...]

    @property
    def size(self) -> int:
        """Number of elements this shard processes."""
        return self.stop - self.start


class ShardPlanner:
    """Partitions an element-wise API program across banks."""

    def __init__(self, *, num_banks: int = 16) -> None:
        if num_banks <= 0:
            raise ConfigurationError("shard planning needs at least one bank")
        self.num_banks = num_banks

    # ------------------------------------------------------------------ #
    # Planning
    # ------------------------------------------------------------------ #
    def plan(self, calls: Sequence[ApiCall], shards: int) -> list[ShardPlan]:
        """Split ``calls`` into ``shards`` contiguous element slices.

        Shard sizes are balanced (they differ by at most one element), so
        equal-sized shards lower to structurally identical programs and
        compile once.  Shard *i* is placed in bank ``i % num_banks``.
        """
        from repro.analyze.verifier import shards_overcommit_diagnostic

        overcommit = shards_overcommit_diagnostic(shards, self.num_banks)
        if overcommit is not None:
            # The same Diagnostic the shard-plan verifier reports;
            # VerificationError subclasses ConfigurationError, so
            # existing handlers keep working.
            raise VerificationError((overcommit,), subject="shard plan")
        return [
            ShardPlan(
                index=index,
                # One bank per shard; shards <= num_banks is enforced
                # above, so the assignment never wraps.
                bank=index,
                start=start,
                stop=stop,
                calls=calls_,
            )
            for index, (start, stop, calls_) in enumerate(
                self.plan_slices(calls, shards)
            )
        ]

    @classmethod
    def plan_slices(
        cls, calls: Sequence[ApiCall], shards: int
    ) -> list[tuple[int, int, tuple[ApiCall, ...]]]:
        """Balanced contiguous ``(start, stop, rewritten calls)`` slices.

        The placement-free half of :meth:`plan`: the hierarchical planner
        reuses it with its own channel/rank/bank mapping, which is not
        limited to one rank's banks.
        """
        if shards <= 0:
            raise ConfigurationError("shard count must be positive")
        size = cls._uniform_size(calls)
        if shards > size:
            raise ConfigurationError(
                f"cannot split {size} elements into {shards} non-empty shards"
            )
        slices: list[tuple[int, int, tuple[ApiCall, ...]]] = []
        base, remainder = divmod(size, shards)
        # Balanced shards take at most two distinct sizes, and the
        # rewritten call tuples depend only on the size — share them so
        # planning allocates O(distinct sizes) replica programs instead
        # of O(shards x calls) vectors.
        resized: dict[int, tuple[ApiCall, ...]] = {}
        start = 0
        for index in range(shards):
            stop = start + base + (1 if index < remainder else 0)
            shard_size = stop - start
            shard_calls = resized.get(shard_size)
            if shard_calls is None:
                shard_calls = cls._resize_calls(calls, shard_size)
                resized[shard_size] = shard_calls
            slices.append((start, stop, shard_calls))
            start = stop
        return slices

    @staticmethod
    def _uniform_size(calls: Sequence[ApiCall]) -> int:
        if not calls:
            raise ConfigurationError("cannot shard an empty API program")
        sizes = {
            vector.size
            for call in calls
            for vector in (*call.inputs, call.output)
        }
        if len(sizes) != 1:
            raise ConfigurationError(
                "sharded execution needs a uniform element count across every "
                f"vector, got sizes {sorted(sizes)}"
            )
        return next(iter(sizes))

    @staticmethod
    def _resize_calls(calls: Sequence[ApiCall], size: int) -> tuple[ApiCall, ...]:
        """Rewrite every call over ``size``-element replicas of its vectors."""
        sample = calls[0].output if not calls[0].inputs else calls[0].inputs[0]
        if sample.size == size:
            # The slice covers the whole element space; the original
            # calls (and their vectors) are already correct.
            return tuple(calls)
        replicas: dict[str, PlutoVector] = {}

        def _replica(vector: PlutoVector) -> PlutoVector:
            replica = replicas.get(vector.name)
            if replica is None:
                replica = PlutoVector(
                    name=vector.name, size=size, bit_width=vector.bit_width
                )
                replicas[vector.name] = replica
            return replica

        return tuple(
            ApiCall(
                operation=call.operation,
                inputs=tuple(_replica(vector) for vector in call.inputs),
                output=_replica(call.output),
                lut=call.lut,
                parameters=call.parameters,
            )
            for call in calls
        )


@dataclass
class ShardedExecutionResult(ExecutionResult):
    """Aggregate result of a bank-parallel execution.

    ``trace`` holds every shard's commands and the *summed* latency/energy
    (energy genuinely adds across banks; the summed latency is exposed as
    :attr:`serial_latency_ns`).  :attr:`latency_ns` is overridden with the
    scheduler-derived :attr:`makespan_ns`, the time at which the slowest
    bank finishes under cross-bank tRRD/tFAW contention.
    """

    shard_results: list[ExecutionResult] = field(default_factory=list)
    shard_plans: list[ShardPlan] = field(default_factory=list)
    makespan_ns: float = 0.0

    @property
    def num_shards(self) -> int:
        """Number of bank-parallel shards that produced this result."""
        return len(self.shard_results)

    @property
    def serial_latency_ns(self) -> float:
        """Cost of draining every shard back to back through one bank.

        This includes each shard's replicated one-time LUT load, so it is
        the serialisation of *this shard plan* — not the latency of the
        equivalent unsharded run, which loads each LUT once and can
        therefore be cheaper than this sum divided by the shard count.
        """
        return self.trace.total_latency_ns

    @property
    def latency_ns(self) -> float:
        """Scheduler-derived makespan of the bank-parallel execution."""
        return self.makespan_ns

    @property
    def parallel_speedup(self) -> float:
        """Serial drain of this shard plan over its makespan.

        Measures how well the shards overlap (> 1 when they do).  To ask
        whether sharding beat *not* sharding, compare :attr:`makespan_ns`
        against the ``latency_ns`` of a ``shards=1`` run, which pays the
        LUT load only once.
        """
        if self.makespan_ns <= 0:
            return float("inf")
        return self.serial_latency_ns / self.makespan_ns


def execute_shard_plans(
    controller: PlutoController,
    plans: Sequence,
    arrays: Mapping[str, np.ndarray],
    *,
    fused: bool | None = None,
) -> list[ExecutionResult]:
    """Execute shard plans, fused in one batched pass when possible.

    ``plans`` is any sequence of plan objects with ``index`` / ``bank`` /
    ``start`` / ``stop`` / ``calls`` attributes (both the bank-parallel
    and hierarchical planners produce them).  With a batched-capable
    backend (``fused=None`` auto-detects; ``False`` forces the per-shard
    oracle loop) the equal-sized shards are grouped, their input slices
    stacked into ``(shards, slice)`` views, and each group executes in a
    single controller pass — one NumPy gather per LUT query instead of
    ``shards`` trips through the controller.  Outputs, traces, and
    per-shard results are identical to the per-shard loop.
    """
    from repro.api.session import compile_cached, program_structure_key

    use_fused = controller.backend.supports_batched if fused is None else fused
    if use_fused and not controller.backend.supports_batched:
        raise ConfigurationError(
            f"backend {controller.backend.name!r} cannot run fused; "
            "pass fused=False (or None) to use the per-shard path"
        )
    if not use_fused:
        results = []
        for plan in plans:
            compiled = compile_cached(list(plan.calls))
            shard_inputs = {
                name: data[plan.start : plan.stop] for name, data in arrays.items()
            }
            results.append(
                controller.execute(compiled, shard_inputs, bank=plan.bank)
            )
        return results

    results: list[ExecutionResult | None] = [None] * len(plans)
    groups: dict[int, list] = {}
    for plan in plans:
        groups.setdefault(plan.stop - plan.start, []).append(plan)
    for group in groups.values():
        calls = list(group[0].calls)
        compiled = compile_cached(calls)
        try:
            structure_key = program_structure_key(calls)
        except TypeError:
            structure_key = None
        stacked = {
            name: np.stack([data[plan.start : plan.stop] for plan in group])
            for name, data in arrays.items()
        }
        banks = [plan.bank for plan in group]
        fused_results = controller.execute_fused(
            compiled, stacked, banks=banks, structure_key=structure_key
        )
        for plan, result in zip(group, fused_results):
            results[plan.index] = result
    return results  # type: ignore[return-value]


class ParallelDispatcher:
    """Executes shard plans through the controller and merges the results.

    ``fused`` selects the execution strategy: ``None`` (default) runs the
    shards in one batched pass when the backend supports it, ``False``
    forces the per-shard loop (the bit-exactness oracle path), ``True``
    requires a batched backend.
    """

    def __init__(
        self,
        engine: PlutoEngine | None = None,
        backend: str | ExecutionBackend = "vectorized",
        *,
        fused: bool | None = None,
        jit: bool = True,
    ) -> None:
        self.engine = engine if engine is not None else PlutoEngine(PlutoConfig())
        self.controller = PlutoController(self.engine, backend=backend, jit=jit)
        self.planner = ShardPlanner(num_banks=self.engine.geometry.banks)
        self.fused = fused

    def execute(
        self,
        calls: Sequence[ApiCall],
        inputs: Mapping[str, np.ndarray],
        *,
        shards: int,
    ) -> ShardedExecutionResult:
        """Run ``calls`` bank-parallel over ``shards`` slices of ``inputs``."""
        plans = self.planner.plan(calls, shards)
        self._verify_plans(plans)
        arrays = {name: np.asarray(data) for name, data in inputs.items()}
        self._check_inputs(calls, arrays)
        shard_results = execute_shard_plans(
            self.controller, plans, arrays, fused=self.fused
        )
        return self._merge(plans, shard_results)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def _verify_plans(self, plans: "list[ShardPlan]") -> None:
        """Statically verify the shard plan, per the engine's verify mode.

        Catches slice aliasing and bad bank placement before any shard
        executes — two shards writing one output region is the silent
        corruption sharded execution must never reach.
        """
        from repro.analyze.verifier import (
            verification_enabled,
            verify_shard_plans,
        )

        if verification_enabled(self.engine.config.verify):
            verify_shard_plans(
                plans, num_banks=self.engine.geometry.banks
            ).raise_if_errors()

    @staticmethod
    def _check_inputs(
        calls: Sequence[ApiCall], arrays: Mapping[str, np.ndarray]
    ) -> None:
        """Validate inputs against the *full-size* program vectors.

        The per-shard controller only ever sees exact-size slices, so
        without this check an oversized input array would be silently
        truncated — diverging from the unsharded run, which rejects it.
        """
        vectors = {
            vector.name: vector
            for call in calls
            for vector in (*call.inputs, call.output)
        }
        for name, data in arrays.items():
            vector = vectors.get(name)
            if vector is None:
                raise ExecutionError(
                    f"input {name!r} is not a vector of this program"
                )
            if data.size != vector.size:
                raise ExecutionError(
                    f"input {name!r} has {data.size} elements, "
                    f"expected {vector.size}"
                )

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _merge(
        self, plans: list[ShardPlan], shard_results: list[ExecutionResult]
    ) -> ShardedExecutionResult:
        merged_trace = CommandTrace(
            timing=self.engine.timing, energy=self.engine.energy
        )
        for result in shard_results:
            merged_trace.merge(result.trace)
        with stage("schedule", shards=len(shard_results)):
            makespan = merged_makespan_ns(
                [result.trace.commands for result in shard_results], self.engine
            )
        outputs = {
            name: np.concatenate(
                [result.outputs[name] for result in shard_results]
            )
            for name in shard_results[0].outputs
        }
        registers = {
            name: np.concatenate(
                [result.registers[name] for result in shard_results]
            )
            for name in shard_results[0].registers
        }
        return ShardedExecutionResult(
            outputs=outputs,
            trace=merged_trace,
            lut_queries=sum(result.lut_queries for result in shard_results),
            instructions_executed=sum(
                result.instructions_executed for result in shard_results
            ),
            registers=registers,
            backend=self.controller.backend.name,
            shard_results=shard_results,
            shard_plans=plans,
            makespan_ns=makespan,
        )

"""The pLUTo Controller: executes compiled ISA programs.

The controller plays the role described in Section 6.4: it walks the ISA
program, consults the allocation table for physical placement, expands
every instruction into DRAM commands via the command ROM (accumulating the
latency/energy trace), and performs the *functional* effect of every
instruction so program outputs are bit-exact.

Functional state is kept per row register as a vector of element values.
The functional effects themselves are delegated to an
:class:`~repro.backend.base.ExecutionBackend`: the default ``"functional"``
backend executes ``pluto_op`` instructions on a real
:class:`~repro.core.subarray.PlutoSubarray` (match logic + row sweep + FF
buffer) in row-sized chunks, while the ``"vectorized"`` backend executes
them as NumPy gathers.  Cost accounting never touches the backend, so the
command trace is identical whichever backend performs the arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.backend.base import ExecutionBackend, resolve_backend
from repro.compiler.lowering import CompiledProgram
from repro.controller.allocation_table import AllocationTable
from repro.controller.rom import CommandRom
from repro.core.analytical import PlutoCostModel
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.commands import Command, CommandTrace, CommandType
from repro.errors import ExecutionError
from repro.isa.instructions import (
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
)
from repro.utils.bitops import mask_of
from repro.utils.memo import BoundedMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import RequestTrace
    from repro.opt.report import OptimizationReport
    from repro.plan.execution_plan import ExecutionPlan
    from repro.plan.planner import PlannerReport

__all__ = [
    "ExecutionResult",
    "PlutoController",
    "TraceTemplate",
    "seed_trace_template",
    "trace_template_stats",
    "clear_trace_templates",
]


@dataclass(frozen=True)
class TraceTemplate:
    """The bank-independent command trace of one compiled program.

    Cost accounting depends only on program structure, geometry, and
    design — the bank id merely stamps each command — so the trace of a
    program is generated once (commands recorded against bank 0) and
    *synthesized* for any placement by rewriting the bank ids.  The shard
    dispatchers use this to stop re-executing the controller ``shards``
    times just to regenerate identical traces.
    """

    commands: tuple[Command, ...]
    total_latency_ns: float
    total_energy_nj: float
    lut_queries: int
    instructions_executed: int

    def realize(self, timing, energy, *, bank: int) -> CommandTrace:
        """A concrete trace of this template placed in ``bank``."""
        if bank == 0:
            # Templates are recorded against bank 0, and Command is
            # frozen, so placement there shares the command objects
            # instead of rewriting every one.
            commands = list(self.commands)
        else:
            commands = [replace(command, bank=bank) for command in self.commands]
        trace = CommandTrace(
            timing=timing,
            energy=energy,
            commands=commands,
            total_latency_ns=self.total_latency_ns,
            total_energy_nj=self.total_energy_nj,
        )
        # Per-request observability accounting (command counts, energy,
        # refresh overhead) depends only on the template, not the bank:
        # link every realization to one shared pin store so
        # ``repro.obs.metrics`` computes it once per structure, not once
        # per request (see ``_obs_pins`` handling there).
        trace.__dict__["_obs_pins"] = self.__dict__
        return trace


#: (program structure key, engine config) -> TraceTemplate.
_TEMPLATE_MEMO: BoundedMemo[TraceTemplate] = BoundedMemo(1024)


def seed_trace_template(
    structure_key: tuple, config, template: TraceTemplate
) -> None:
    """Install a template under ``(structure key, engine config)``.

    Used by the shared artifact store (:mod:`repro.serve.store`) so a
    fresh process's first fused dispatch of a known shape hits the memo.
    """
    _TEMPLATE_MEMO.put((structure_key, config), template)


def trace_template_stats() -> dict[str, int]:
    """Hit/miss counters and size of the trace-template cache."""
    return _TEMPLATE_MEMO.stats()


def clear_trace_templates() -> None:
    """Drop every cached trace template and reset the counters."""
    _TEMPLATE_MEMO.clear()


@dataclass
class ExecutionResult:
    """Outputs and costs of one program execution."""

    outputs: dict[str, np.ndarray]
    trace: CommandTrace
    lut_queries: int
    instructions_executed: int
    registers: dict[str, np.ndarray] = field(default_factory=dict)
    #: Name of the execution backend that produced the functional outputs.
    backend: str = "functional"
    #: Report of the pre-compilation program optimization, when one ran
    #: (``PlutoSession.run(..., optimize=True)`` and friends).
    optimization: "OptimizationReport | None" = None
    #: The concrete :class:`~repro.plan.execution_plan.ExecutionPlan`
    #: this execution ran under (set by the session front doors).
    execution_plan: "ExecutionPlan | None" = None
    #: The auto-planner's report when the plan was chosen by
    #: ``plan="auto"`` (predicted vs measured makespan, candidates).
    planner: "PlannerReport | None" = None
    #: Span tree of the run that produced this result (``None`` unless
    #: tracing is enabled; see :mod:`repro.obs`).
    request_trace: "RequestTrace | None" = None

    @property
    def latency_ns(self) -> float:
        """Total modelled latency of the execution."""
        return self.trace.total_latency_ns

    @property
    def energy_nj(self) -> float:
        """Total modelled energy of the execution."""
        return self.trace.total_energy_nj


class PlutoController:
    """Executes compiled pLUTo programs on a functional engine.

    ``backend`` selects who performs the functional effects: a registry
    name (``"functional"`` or ``"vectorized"``) or a ready
    :class:`ExecutionBackend` instance.  The controller reuses the same
    backend instance across executions, which lets batched sessions share
    cached LUT gather arrays.

    ``jit`` (default on) enables the whole-program compiled tier
    (:mod:`repro.backend.compiled`): executions that arrive with a
    program ``structure_key`` on a batched-capable backend run through
    one cached NumPy closure instead of the per-instruction interpreter
    — bit-identical outputs and traces, no per-op Python dispatch.  Pass
    ``jit=False`` to pin the interpreted vectorized path (the compiled
    tier's own differential oracle).
    """

    def __init__(
        self,
        engine: PlutoEngine | None = None,
        backend: str | ExecutionBackend = "functional",
        *,
        jit: bool = True,
    ) -> None:
        self.engine = engine if engine is not None else PlutoEngine(PlutoConfig())
        self.rom = CommandRom()
        self.backend = resolve_backend(backend)
        self.jit = jit
        #: Executable -> ``(TraceTemplate, realized bank-0 trace)``.
        #: Identity-keyed (CompiledExecutable has no __eq__), so repeated
        #: compiled executions skip both the structure-key rehash and the
        #: engine-config hash; the controller's engine never changes, so
        #: the entry stays valid for the executable's lifetime.
        self._jit_entries: dict = {}

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        compiled: CompiledProgram,
        inputs: dict[str, np.ndarray],
        *,
        bank: int = 0,
        structure_key: tuple | None = None,
    ) -> ExecutionResult:
        """Run a compiled program with the given external input vectors.

        ``inputs`` maps vector names (as allocated by ``pluto_malloc``) to
        integer element arrays.  The result contains every program output
        plus the full command trace.  ``bank`` selects the DRAM bank the
        program is placed in: the sharded dispatcher runs one program
        replica per bank, and every command in the trace carries the bank
        so the scheduler can model cross-bank tRRD/tFAW contention.

        ``structure_key`` is the program-structure key the program was
        compiled under; with it (on a batched-capable backend, unless
        ``jit=False``) the execution takes the whole-program compiled
        tier: one cached NumPy closure performs every functional effect
        and the trace is realized from the cached template — bit-identical
        to the interpreted walk below by construction.
        """
        geometry = self.engine.geometry
        if not 0 <= bank < geometry.banks:
            raise ExecutionError(
                f"bank {bank} outside the module's range [0, {geometry.banks})"
            )
        if self.jit and structure_key is not None:
            # Fast path: reuse the executable pinned on the program by a
            # prior resolution; fall into the memo only when unseen.
            executable = compiled.__dict__.get("_jit_executable")
            if executable is None:
                executable = self._compiled_executable(compiled, structure_key)
            elif executable is False or not self.backend.supports_batched:
                executable = None
            if executable is not None:
                # Input validation happens inside run_finals (same rules
                # as _check_inputs, fused into the seeding pass).
                return self._execute_compiled(
                    executable,
                    compiled,
                    inputs,
                    bank=bank,
                    structure_key=structure_key,
                )
        self._check_inputs(compiled, inputs)
        table = AllocationTable(geometry, bank=bank)
        trace = CommandTrace(timing=self.engine.timing, energy=self.engine.energy)
        cost_model: PlutoCostModel = self.engine.cost_model
        design: PlutoDesign = self.engine.config.design
        backend = self.backend
        backend.begin_program(geometry, design)

        # Functional state: register index -> element values.
        values: dict[int, np.ndarray] = {}

        register_by_vector = compiled.vector_bindings
        for name, data in inputs.items():
            register = register_by_vector[name]
            values[register.index] = np.asarray(data, dtype=np.uint64)

        lut_queries = 0
        executed = 0
        for instruction in compiled.program:
            executed += 1
            if isinstance(instruction, PlutoRowAlloc):
                table.bind_row(instruction.destination)
                if instruction.destination.index not in values:
                    values[instruction.destination.index] = np.zeros(
                        instruction.size_elements, dtype=np.uint64
                    )
                continue
            if isinstance(instruction, PlutoSubarrayAlloc):
                allocation = self._account_lut_load(
                    instruction, compiled, table, trace
                )
                backend.load_lut(
                    instruction.destination.index,
                    compiled.lut_bindings[instruction.destination.index],
                    subarray_index=allocation.subarray,
                )
                continue

            # All remaining instructions expand to DRAM commands.
            self._account(instruction, table, trace, cost_model, design)

            if isinstance(instruction, PlutoOp):
                lut_queries += 1
                self._execute_lut_query(instruction, compiled, values)
            elif isinstance(instruction, PlutoBitwise):
                self._execute_bitwise(instruction, values)
            elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
                self._execute_shift(instruction, values)
            elif isinstance(instruction, PlutoMove):
                self._execute_move(instruction, values)
            else:
                raise ExecutionError(
                    f"unsupported instruction {type(instruction).__name__}"
                )

        outputs = {
            vector.name: values[register_by_vector[vector.name].index].copy()
            for vector in compiled.outputs
        }
        registers = {
            name: values[register.index].copy()
            for name, register in register_by_vector.items()
            if register.index in values
        }
        return ExecutionResult(
            outputs=outputs,
            trace=trace,
            lut_queries=lut_queries,
            instructions_executed=executed,
            registers=registers,
            backend=backend.name,
        )

    # ------------------------------------------------------------------ #
    # Whole-program compiled execution (the JIT tier)
    # ------------------------------------------------------------------ #
    def _compiled_executable(
        self, compiled: CompiledProgram, structure_key: tuple | None
    ):
        """The memoized whole-program closure, when the JIT tier applies.

        The tier requires an explicit opt-in signal (a structure key), a
        batched-capable backend, and ``jit=True``; the functional oracle
        and keyless executions keep the interpreted walk.  The resolved
        executable (or its absence) is pinned on the ``CompiledProgram``
        object so repeated executions of a cached program skip the
        structure-key rehash; the bounded memo stays the authoritative,
        stats-surfaced store keyed by structure.
        """
        if not self.jit or structure_key is None:
            return None
        if not self.backend.supports_batched:
            return None
        pinned = compiled.__dict__.get("_jit_executable")
        if pinned is not None:
            return pinned or None
        from repro.backend.compiled import compiled_exec_cached

        executable = compiled_exec_cached(compiled, structure_key=structure_key)
        compiled.__dict__["_jit_executable"] = (
            executable if executable is not None else False
        )
        return executable

    def _execute_compiled(
        self,
        executable,
        compiled: CompiledProgram,
        inputs: dict[str, np.ndarray],
        *,
        bank: int,
        structure_key: tuple | None,
    ) -> ExecutionResult:
        """Run the closure; accounting comes from the cached template."""
        entry = self._jit_entries.get(executable)
        if entry is None:
            template = self.trace_template(compiled, structure_key=structure_key)
            # The realized bank-0 trace is placement-independent and
            # never mutated after execution, so it is shared across
            # results like the template's frozen commands already are.
            entry = (
                template,
                template.realize(self.engine.timing, self.engine.energy, bank=0),
            )
            if len(self._jit_entries) >= 512:
                self._jit_entries.clear()
            self._jit_entries[executable] = entry
        template, trace0 = entry
        served = executable.run_serve(inputs)
        if served is not None:
            outputs, registers = served
        else:
            finals = executable.run_finals(inputs)
            # Closure-created finals are handed out directly (nothing
            # else references them); only finals that may alias a
            # caller-seeded array get the interpreted path's defensive
            # copy.  Outputs share the register snapshot's arrays — both
            # views of the same final.
            copy = executable.copy_finals
            registers = {}
            for name, position in executable.register_bindings:
                value = finals[position]
                registers[name] = value.copy() if copy[position] else value
            outputs = {
                name: registers[name] for name, _ in executable.output_bindings
            }
        return ExecutionResult(
            outputs=outputs,
            trace=trace0
            if bank == 0
            else template.realize(self.engine.timing, self.engine.energy, bank=bank),
            lut_queries=template.lut_queries,
            instructions_executed=template.instructions_executed,
            registers=registers,
            backend=self.backend.name,
        )

    # ------------------------------------------------------------------ #
    # Fused (batched) execution
    # ------------------------------------------------------------------ #
    def trace_template(
        self,
        compiled: CompiledProgram,
        *,
        structure_key: tuple | None = None,
    ) -> TraceTemplate:
        """The program's bank-independent trace, cached per structure.

        ``structure_key`` is the program-structure key the compiled
        program was cached under (``program_structure_key``); pass it to
        memoize the template across executions.  Without a key the
        template is rebuilt each call.
        """
        cache_key: tuple | None = None
        if structure_key is not None:
            try:
                cache_key = (structure_key, self.engine.config)
                template = _TEMPLATE_MEMO.get(cache_key)
            except TypeError:
                cache_key = None
                template = None
            if template is not None:
                return template
        if cache_key is None:
            _TEMPLATE_MEMO.note_uncached()
        template = self._build_template(compiled)
        if cache_key is not None:
            _TEMPLATE_MEMO.put(cache_key, template)
        return template

    def _build_template(self, compiled: CompiledProgram) -> TraceTemplate:
        """Run the accounting half of :meth:`execute` against bank 0."""
        table = AllocationTable(self.engine.geometry, bank=0)
        trace = CommandTrace(timing=self.engine.timing, energy=self.engine.energy)
        cost_model = self.engine.cost_model
        design = self.engine.config.design
        lut_queries = 0
        executed = 0
        for instruction in compiled.program:
            executed += 1
            if isinstance(instruction, PlutoRowAlloc):
                table.bind_row(instruction.destination)
                continue
            if isinstance(instruction, PlutoSubarrayAlloc):
                self._account_lut_load(instruction, compiled, table, trace)
                continue
            self._account(instruction, table, trace, cost_model, design)
            if isinstance(instruction, PlutoOp):
                lut_queries += 1
        return TraceTemplate(
            commands=tuple(trace.commands),
            total_latency_ns=trace.total_latency_ns,
            total_energy_nj=trace.total_energy_nj,
            lut_queries=lut_queries,
            instructions_executed=executed,
        )

    def execute_fused(
        self,
        compiled: CompiledProgram,
        inputs: dict[str, np.ndarray],
        *,
        banks: Sequence[int],
        structure_key: tuple | None = None,
    ) -> list[ExecutionResult]:
        """Execute one program over many equal shards in a single pass.

        ``inputs`` maps each vector name to a stacked ``(shards, size)``
        array whose row *i* is shard *i*'s slice; ``banks[i]`` is the bank
        shard *i* is placed in.  The functional effects run **once** over
        the stacked arrays (one NumPy gather per LUT query instead of one
        per shard), and the per-shard command traces are synthesized from
        the cached :class:`TraceTemplate` by rewriting bank ids.  Outputs
        are bit-identical to executing each shard through
        :meth:`execute` — the backend operations are element-wise, so
        stacking adds an axis without changing any value.

        Requires a backend with ``supports_batched`` (the vectorized
        backend); the functional backend keeps the per-shard loop as the
        bit-exactness oracle.
        """
        backend = self.backend
        if not backend.supports_batched:
            raise ExecutionError(
                f"backend {backend.name!r} does not support fused batched "
                "execution; dispatch shards through execute() instead"
            )
        shards = len(banks)
        if shards == 0:
            return []
        geometry = self.engine.geometry
        for bank in banks:
            if not 0 <= bank < geometry.banks:
                raise ExecutionError(
                    f"bank {bank} outside the module's range [0, {geometry.banks})"
                )
        self._check_stacked_inputs(compiled, inputs, shards)
        template = self.trace_template(compiled, structure_key=structure_key)
        register_by_vector = compiled.vector_bindings

        executable = self._compiled_executable(compiled, structure_key)
        if executable is not None and executable.supports_fused:
            # The whole stacked batch runs through the compiled closure;
            # only the per-shard result assembly below stays in Python.
            finals = executable.run_finals(inputs, shards=shards)
            values = {
                slot: finals[position]
                for position, slot in enumerate(executable.final_slots)
            }
        else:
            backend.begin_program(geometry, self.engine.config.design)
            values = {}
            for name, data in inputs.items():
                register = register_by_vector[name]
                values[register.index] = np.asarray(data, dtype=np.uint64)

            for instruction in compiled.program:
                if isinstance(instruction, PlutoRowAlloc):
                    if instruction.destination.index not in values:
                        values[instruction.destination.index] = np.zeros(
                            (shards, instruction.size_elements), dtype=np.uint64
                        )
                elif isinstance(instruction, PlutoSubarrayAlloc):
                    backend.load_lut(
                        instruction.destination.index,
                        compiled.lut_bindings[instruction.destination.index],
                    )
                elif isinstance(instruction, PlutoOp):
                    self._execute_lut_query_batched(instruction, compiled, values)
                elif isinstance(instruction, PlutoBitwise):
                    self._execute_bitwise(instruction, values)
                elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
                    self._execute_shift(instruction, values)
                elif isinstance(instruction, PlutoMove):
                    self._execute_move(instruction, values)
                else:
                    raise ExecutionError(
                        f"unsupported instruction {type(instruction).__name__}"
                    )

        results: list[ExecutionResult] = []
        for shard, bank in enumerate(banks):
            outputs = {
                vector.name: values[register_by_vector[vector.name].index][
                    shard
                ].copy()
                for vector in compiled.outputs
            }
            registers = {
                name: values[register.index][shard].copy()
                for name, register in register_by_vector.items()
                if register.index in values
            }
            results.append(
                ExecutionResult(
                    outputs=outputs,
                    trace=template.realize(
                        self.engine.timing, self.engine.energy, bank=bank
                    ),
                    lut_queries=template.lut_queries,
                    instructions_executed=template.instructions_executed,
                    registers=registers,
                    backend=backend.name,
                )
            )
        return results

    def _execute_lut_query_batched(
        self, instruction: PlutoOp, compiled: CompiledProgram, values
    ) -> None:
        source = values.get(instruction.source.index)
        if source is None:
            raise ExecutionError(
                f"{instruction.render()}: source register has no data"
            )
        lut = compiled.lut_bindings[instruction.lut_subarray.index]
        result = self.backend.lut_query_batched(
            instruction.lut_subarray.index, source
        )
        values[instruction.destination.index] = result & np.uint64(
            mask_of(min(64, lut.element_bits))
        )

    @staticmethod
    def _check_stacked_inputs(
        compiled: CompiledProgram, inputs: dict[str, np.ndarray], shards: int
    ) -> None:
        """The stacked-array analogue of :meth:`_check_inputs`."""
        for vector in compiled.external_inputs:
            if vector.name not in inputs:
                raise ExecutionError(
                    f"missing input data for external vector {vector.name!r}"
                )
            data = np.asarray(inputs[vector.name])
            if data.ndim != 2 or data.shape != (shards, vector.size):
                raise ExecutionError(
                    f"fused input {vector.name!r} has shape {data.shape}, "
                    f"expected ({shards}, {vector.size})"
                )
            if data.size and int(data.max()) > mask_of(min(64, vector.bit_width)):
                raise ExecutionError(
                    f"input {vector.name!r} contains values wider than "
                    f"{vector.bit_width} bits"
                )
        for name in inputs:
            if name not in compiled.vector_bindings:
                raise ExecutionError(f"input {name!r} is not a vector of this program")

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    def _account_lut_load(self, instruction, compiled, table, trace):
        """Account one LUT load (``pluto_subarray_alloc``); returns the allocation.

        Loading the LUT costs one LISA move per LUT row; the command
        carries the row count so the scheduler charges every linked
        activation against the tFAW window.
        """
        allocation = table.bind_subarray(instruction.destination)
        lut = compiled.lut_bindings[instruction.destination.index]
        cost_model = self.engine.cost_model
        trace.add(
            CommandType.LISA_RBM,
            bank=allocation.bank,
            subarray=allocation.subarray,
            rows=lut.num_entries,
            meta=f"load {lut.name}",
            latency_ns=cost_model.lut_load_latency_ns(lut.num_entries),
            energy_nj=cost_model.lut_load_energy_nj(lut.num_entries),
        )
        return allocation

    def _account(self, instruction, table, trace, cost_model, design) -> None:
        if isinstance(instruction, PlutoOp):
            allocation = table.bind_subarray(instruction.lut_subarray)
            source_rows = table.bind_row(instruction.source).num_rows
            latency = cost_model.query_latency_ns(design, instruction.lut_size)
            energy = cost_model.query_energy_nj(design, instruction.lut_size)
            for _ in range(source_rows):
                trace.add_row_sweep(
                    latency,
                    energy,
                    bank=allocation.bank,
                    subarray=allocation.subarray,
                    rows=instruction.lut_size,
                    meta=instruction.render(),
                )
            return
        for command in self.rom.expand(instruction):
            # Scale per-row commands by the number of rows the operand spans.
            rows = 1
            if isinstance(instruction, (PlutoBitwise, PlutoBitShift, PlutoByteShift, PlutoMove)):
                target = (
                    instruction.destination
                    if hasattr(instruction, "destination")
                    else instruction.target
                )
                rows = table.bind_row(target).num_rows
            for _ in range(rows):
                trace.add(command.kind, bank=table.bank, meta=command.meta)

    # ------------------------------------------------------------------ #
    # Functional execution helpers (all effects delegated to the backend)
    # ------------------------------------------------------------------ #
    def _execute_lut_query(
        self, instruction: PlutoOp, compiled: CompiledProgram, values
    ) -> None:
        source = values.get(instruction.source.index)
        if source is None:
            raise ExecutionError(
                f"{instruction.render()}: source register has no data"
            )
        lut = compiled.lut_bindings[instruction.lut_subarray.index]
        result = self.backend.lut_query(instruction.lut_subarray.index, source)
        values[instruction.destination.index] = result & np.uint64(
            mask_of(min(64, lut.element_bits))
        )

    def _execute_bitwise(self, instruction: PlutoBitwise, values) -> None:
        a = values[instruction.source1.index]
        b = (
            values[instruction.source2.index]
            if instruction.source2 is not None
            else None
        )
        values[instruction.destination.index] = self.backend.bitwise(
            instruction.kind, a, b, instruction.destination.bit_width
        )

    def _execute_shift(self, instruction, values) -> None:
        register = instruction.target
        amount = instruction.amount
        if isinstance(instruction, PlutoByteShift):
            amount *= 8
        values[register.index] = self.backend.shift(
            values[register.index], amount, instruction.direction, register.bit_width
        )

    def _execute_move(self, instruction: PlutoMove, values) -> None:
        source = values.get(instruction.source.index)
        if source is None:
            raise ExecutionError(f"{instruction.render()}: source register has no data")
        values[instruction.destination.index] = self.backend.move(
            source, values.get(instruction.destination.index)
        )

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_inputs(compiled: CompiledProgram, inputs: dict[str, np.ndarray]) -> None:
        for vector in compiled.external_inputs:
            if vector.name not in inputs:
                raise ExecutionError(
                    f"missing input data for external vector {vector.name!r}"
                )
            data = np.asarray(inputs[vector.name])
            if data.size != vector.size:
                raise ExecutionError(
                    f"input {vector.name!r} has {data.size} elements, "
                    f"expected {vector.size}"
                )
            if data.size and int(data.max()) > mask_of(min(64, vector.bit_width)):
                raise ExecutionError(
                    f"input {vector.name!r} contains values wider than "
                    f"{vector.bit_width} bits"
                )
        for name in inputs:
            if name not in compiled.vector_bindings:
                raise ExecutionError(f"input {name!r} is not a vector of this program")

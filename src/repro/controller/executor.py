"""The pLUTo Controller: executes compiled ISA programs.

The controller plays the role described in Section 6.4: it walks the ISA
program, consults the allocation table for physical placement, expands
every instruction into DRAM commands via the command ROM (accumulating the
latency/energy trace), and performs the *functional* effect of every
instruction so program outputs are bit-exact.

Functional state is kept per row register as a vector of element values.
``pluto_op`` instructions are executed on a real :class:`PlutoSubarray`
(match logic + row sweep + FF buffer) in row-sized chunks, so the data path
exercised in tests is the same one the hardware description specifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compiler.lowering import CompiledProgram
from repro.controller.allocation_table import AllocationTable
from repro.controller.rom import CommandRom
from repro.core.analytical import PlutoCostModel
from repro.core.designs import PlutoDesign
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.core.subarray import PlutoSubarray
from repro.dram.commands import CommandTrace, CommandType
from repro.errors import ExecutionError
from repro.isa.instructions import (
    BitwiseKind,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.isa.registers import RowRegister
from repro.utils.bitops import mask_of

__all__ = ["ExecutionResult", "PlutoController"]


@dataclass
class ExecutionResult:
    """Outputs and costs of one program execution."""

    outputs: dict[str, np.ndarray]
    trace: CommandTrace
    lut_queries: int
    instructions_executed: int
    registers: dict[str, np.ndarray] = field(default_factory=dict)

    @property
    def latency_ns(self) -> float:
        """Total modelled latency of the execution."""
        return self.trace.total_latency_ns

    @property
    def energy_nj(self) -> float:
        """Total modelled energy of the execution."""
        return self.trace.total_energy_nj


class PlutoController:
    """Executes compiled pLUTo programs on a functional engine."""

    def __init__(self, engine: PlutoEngine | None = None) -> None:
        self.engine = engine if engine is not None else PlutoEngine(PlutoConfig())
        self.rom = CommandRom()

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def execute(
        self,
        compiled: CompiledProgram,
        inputs: dict[str, np.ndarray],
    ) -> ExecutionResult:
        """Run a compiled program with the given external input vectors.

        ``inputs`` maps vector names (as allocated by ``pluto_malloc``) to
        integer element arrays.  The result contains every program output
        plus the full command trace.
        """
        self._check_inputs(compiled, inputs)
        geometry = self.engine.geometry
        table = AllocationTable(geometry)
        trace = CommandTrace(timing=self.engine.timing, energy=self.engine.energy)
        cost_model: PlutoCostModel = self.engine.cost_model
        design: PlutoDesign = self.engine.config.design

        # Functional state: register index -> (values, bit width).
        values: dict[int, np.ndarray] = {}
        widths: dict[int, int] = {}
        # LUT subarrays instantiated on demand, keyed by subarray register.
        lut_subarrays: dict[int, PlutoSubarray] = {}

        register_by_vector = compiled.vector_bindings
        for name, data in inputs.items():
            register = register_by_vector[name]
            values[register.index] = np.asarray(data, dtype=np.uint64)
            widths[register.index] = register.bit_width

        lut_queries = 0
        executed = 0
        for instruction in compiled.program:
            executed += 1
            if isinstance(instruction, PlutoRowAlloc):
                table.bind_row(instruction.destination)
                if instruction.destination.index not in values:
                    values[instruction.destination.index] = np.zeros(
                        instruction.size_elements, dtype=np.uint64
                    )
                widths[instruction.destination.index] = instruction.bit_width
                continue
            if isinstance(instruction, PlutoSubarrayAlloc):
                allocation = table.bind_subarray(instruction.destination)
                lut = compiled.lut_bindings[instruction.destination.index]
                subarray = PlutoSubarray(
                    geometry, design, index=allocation.subarray
                )
                subarray.load_lut(lut)
                lut_subarrays[instruction.destination.index] = subarray
                # Loading the LUT costs one LISA move per LUT row.
                trace.add(
                    CommandType.LISA_RBM,
                    bank=allocation.bank,
                    subarray=allocation.subarray,
                    meta=f"load {lut.name}",
                    latency_ns=cost_model.lut_load_latency_ns(lut.num_entries),
                    energy_nj=cost_model.lut_load_energy_nj(lut.num_entries),
                )
                continue

            # All remaining instructions expand to DRAM commands.
            self._account(instruction, table, trace, cost_model, design)

            if isinstance(instruction, PlutoOp):
                lut_queries += 1
                self._execute_lut_query(
                    instruction, values, widths, lut_subarrays
                )
            elif isinstance(instruction, PlutoBitwise):
                self._execute_bitwise(instruction, values, widths)
            elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
                self._execute_shift(instruction, values, widths)
            elif isinstance(instruction, PlutoMove):
                self._execute_move(instruction, values, widths)
            else:
                raise ExecutionError(
                    f"unsupported instruction {type(instruction).__name__}"
                )

        outputs = {
            vector.name: values[register_by_vector[vector.name].index].copy()
            for vector in compiled.outputs
        }
        registers = {
            name: values[register.index].copy()
            for name, register in register_by_vector.items()
            if register.index in values
        }
        return ExecutionResult(
            outputs=outputs,
            trace=trace,
            lut_queries=lut_queries,
            instructions_executed=executed,
            registers=registers,
        )

    # ------------------------------------------------------------------ #
    # Cost accounting
    # ------------------------------------------------------------------ #
    def _account(self, instruction, table, trace, cost_model, design) -> None:
        if isinstance(instruction, PlutoOp):
            allocation = table.bind_subarray(instruction.lut_subarray)
            source_rows = table.bind_row(instruction.source).num_rows
            latency = cost_model.query_latency_ns(design, instruction.lut_size)
            energy = cost_model.query_energy_nj(design, instruction.lut_size)
            for _ in range(source_rows):
                trace.add_row_sweep(
                    latency,
                    energy,
                    bank=allocation.bank,
                    subarray=allocation.subarray,
                    rows=instruction.lut_size,
                    meta=instruction.render(),
                )
            return
        for command in self.rom.expand(instruction):
            # Scale per-row commands by the number of rows the operand spans.
            rows = 1
            if isinstance(instruction, (PlutoBitwise, PlutoBitShift, PlutoByteShift, PlutoMove)):
                target = (
                    instruction.destination
                    if hasattr(instruction, "destination")
                    else instruction.target
                )
                rows = table.bind_row(target).num_rows
            for _ in range(rows):
                trace.add(command.kind, meta=command.meta)

    # ------------------------------------------------------------------ #
    # Functional execution helpers
    # ------------------------------------------------------------------ #
    def _execute_lut_query(self, instruction: PlutoOp, values, widths, lut_subarrays) -> None:
        subarray = lut_subarrays.get(instruction.lut_subarray.index)
        if subarray is None:
            raise ExecutionError(
                f"{instruction.render()}: LUT subarray was never allocated"
            )
        source = values.get(instruction.source.index)
        if source is None:
            raise ExecutionError(
                f"{instruction.render()}: source register has no data"
            )
        lut = subarray.lut
        capacity = subarray.elements_per_query()
        result = np.zeros_like(source)
        for start in range(0, source.size, capacity):
            chunk = source[start : start + capacity]
            if subarray.properties.destructive_reads and not subarray.lut_valid:
                subarray.reload_lut()
            result[start : start + chunk.size] = subarray.query_indices(chunk)
        values[instruction.destination.index] = result & np.uint64(
            mask_of(min(64, lut.element_bits))
        )
        widths[instruction.destination.index] = lut.element_bits

    def _execute_bitwise(self, instruction: PlutoBitwise, values, widths) -> None:
        a = values[instruction.source1.index]
        width = instruction.destination.bit_width
        widths[instruction.destination.index] = width
        mask = np.uint64(mask_of(min(64, width)))
        if instruction.kind is BitwiseKind.NOT:
            result = (~a) & mask
        else:
            b = values[instruction.source2.index]
            if instruction.kind is BitwiseKind.AND:
                result = a & b
            elif instruction.kind is BitwiseKind.OR:
                result = a | b
            elif instruction.kind is BitwiseKind.XOR:
                result = a ^ b
            elif instruction.kind is BitwiseKind.XNOR:
                result = (~(a ^ b)) & mask
            else:
                raise ExecutionError(f"unsupported bitwise kind {instruction.kind}")
        values[instruction.destination.index] = result & mask

    def _execute_shift(self, instruction, values, widths) -> None:
        register: RowRegister = instruction.target
        data = values[register.index]
        amount = instruction.amount
        if isinstance(instruction, PlutoByteShift):
            amount *= 8
        width = register.bit_width
        widths[register.index] = width
        mask = np.uint64(mask_of(min(64, width)))
        if instruction.direction is ShiftDirection.LEFT:
            values[register.index] = (data << np.uint64(amount)) & mask
        else:
            values[register.index] = data >> np.uint64(amount)

    def _execute_move(self, instruction: PlutoMove, values, widths) -> None:
        source = values.get(instruction.source.index)
        if source is None:
            raise ExecutionError(f"{instruction.render()}: source register has no data")
        destination = values.get(instruction.destination.index)
        if destination is not None and destination.size >= source.size:
            destination[: source.size] = source
            values[instruction.destination.index] = destination
        else:
            values[instruction.destination.index] = source.copy()
        widths[instruction.destination.index] = instruction.destination.bit_width

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_inputs(compiled: CompiledProgram, inputs: dict[str, np.ndarray]) -> None:
        for vector in compiled.external_inputs:
            if vector.name not in inputs:
                raise ExecutionError(
                    f"missing input data for external vector {vector.name!r}"
                )
            data = np.asarray(inputs[vector.name])
            if data.size != vector.size:
                raise ExecutionError(
                    f"input {vector.name!r} has {data.size} elements, "
                    f"expected {vector.size}"
                )
            if data.size and int(data.max()) > mask_of(min(64, vector.bit_width)):
                raise ExecutionError(
                    f"input {vector.name!r} contains values wider than "
                    f"{vector.bit_width} bits"
                )
        for name in inputs:
            if name not in compiled.vector_bindings:
                raise ExecutionError(f"input {name!r} is not a vector of this program")

"""Hierarchical channel/rank/bank-group/bank dispatch of pLUTo programs.

PR 2's :class:`~repro.controller.dispatch.ParallelDispatcher` stops at the
banks of one rank.  The paper's headline throughput numbers assume the
whole DRAM hierarchy of Figure 1 sweeps LUTs concurrently, so this module
adds the two interface levels above the rank with level-aware timing:

* **Channels** are fully parallel — each has its own command/data bus and
  its own ranks, so the device makespan is the slowest channel's makespan.
* **Ranks** sharing a channel run their banks concurrently *inside* the
  rank, but serialize command issue on the channel bus.  We model this as
  a bus-throughput bound: a channel cannot finish before it has issued
  every rank's commands back to back (one command-bus slot per row
  activation, one tCCD_S-bounded burst per column access), mirroring the
  per-clock command-bus serialization ``merge_streams`` already enforces
  within one rank.
* **Bank groups** couple column accesses through the tCCD_L/tCCD_S
  spacing, which :meth:`~repro.dram.scheduler.CommandScheduler.merge_streams`
  enforces; the planner round-robins consecutive shards across bank
  groups so neighbouring shards pay the short tCCD_S, not tCCD_L.
* **Banks** within a rank keep PR 2's tRRD/tFAW merge semantics, served
  through the memoized exact fast merge of :mod:`repro.dram.analytic`
  (whole hierarchical schedules are additionally memoized on the
  streams' structural signature, so per-level decompositions and repeat
  requests re-merge nothing).

:class:`HierarchyPlanner` places balanced element slices channel-first
(maximum parallelism per shard added); :class:`HierarchicalDispatcher`
executes every shard through the ordinary controller/backend stack and
reports a :class:`HierarchicalExecutionResult` whose per-level makespans
(serial >= bank-only >= rank-parallel >= channel-parallel) decompose where
the speedup comes from.

Functional outputs are bit-identical to unsharded execution by
construction, exactly as in the bank-parallel dispatcher: every shard runs
the same lowering over a disjoint slice of the same inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Mapping, Sequence

import numpy as np

from repro.api.handles import ApiCall
from repro.backend.base import ExecutionBackend
from repro.controller.dispatch import (
    ParallelDispatcher,
    ShardPlanner,
    execute_shard_plans,
    rank_scheduler,
    rank_scheduler_key,
)
from repro.controller.executor import ExecutionResult, PlutoController
from repro.core.engine import PlutoConfig, PlutoEngine
from repro.dram.analytic import memoized_merge_makespan_ns, streams_signature
from repro.dram.commands import Command, CommandTrace, CommandType
from repro.dram.geometry import DRAMGeometry
from repro.dram.scheduler import activation_count
from repro.errors import ConfigurationError
from repro.obs.trace import stage
from repro.utils.memo import BoundedMemo

__all__ = [
    "HierarchyShard",
    "HierarchyPlanner",
    "HierarchicalExecutionResult",
    "HierarchicalDispatcher",
    "bus_occupancy_ns",
    "hierarchical_makespan_ns",
    "interleaved_bank_order",
    "hierarchy_cache_stats",
    "clear_hierarchy_cache",
]


def bus_occupancy_ns(streams: Sequence[Sequence[Command]], engine: PlutoEngine) -> float:
    """Channel-bus time one rank's command streams occupy.

    First-order model of the shared command/data bus ranks contend for:
    every row activation a command expands to costs one command-bus slot
    (one interface clock), and every column access additionally occupies
    the data bus for one burst (bounded below by tCCD_S, the fastest legal
    back-to-back burst spacing).  Commands that neither activate rows nor
    move data (PRE, REF) cost one command slot.
    """
    timing = engine.timing
    total = 0.0
    for stream in streams:
        for command in stream:
            if command.kind in (CommandType.RD, CommandType.WR):
                total += max(timing.t_burst, timing.t_ccd_s, timing.clock_ns)
                continue
            acts = activation_count(command)
            total += max(acts, 1) * timing.clock_ns
    return total


#: (streams signature, scheduler key, channels, ranks) -> (makespan,
#: rank makespans, channel makespans).  The per-rank merges additionally
#: share the module-wide makespan memo, so collapsing levels re-merges
#: nothing.
_HIERARCHY_MEMO: BoundedMemo[tuple[float, dict, dict]] = BoundedMemo(1024)


def hierarchy_cache_stats() -> dict[str, int]:
    """Hit/miss counters and size of the hierarchical-schedule memo."""
    return _HIERARCHY_MEMO.stats()


def clear_hierarchy_cache() -> None:
    """Drop every memoized hierarchical schedule and reset the counters."""
    _HIERARCHY_MEMO.clear()


def _schedule_hierarchy(
    streams: Sequence[Sequence[Command]],
    engine: PlutoEngine,
    *,
    channels: int,
    ranks: int,
) -> tuple[float, dict[tuple[int, int], float], dict[int, float]]:
    """Schedule per-shard streams over a hierarchy, with the breakdown.

    Returns ``(makespan, rank_makespans, channel_makespans)`` where
    ``rank_makespans`` maps ``(channel, rank)`` to that rank's merged
    makespan (before the channel-bus bound) and ``channel_makespans``
    maps each populated channel to ``max(slowest rank, bus occupancy)``.
    Results are memoized on the streams' structural signature plus the
    hierarchy shape, with the per-rank merges sharing the module-wide
    makespan memo.
    """
    if channels <= 0 or ranks <= 0:
        raise ConfigurationError("channel and rank counts must be positive")
    streams = [stream for stream in streams if len(stream)]
    if not streams:
        return 0.0, {}, {}
    config_key = rank_scheduler_key(engine)
    try:
        key = (streams_signature(streams), config_key, channels, ranks)
    except TypeError:
        key = None
        _HIERARCHY_MEMO.note_uncached()
    if key is not None:
        cached = _HIERARCHY_MEMO.get(key)
        if cached is not None:
            makespan, rank_makespans, channel_makespans = cached
            return makespan, dict(rank_makespans), dict(channel_makespans)

    rank_makespans: dict[tuple[int, int], float] = {}
    channel_makespans: dict[int, float] = {}
    bank_order = interleaved_bank_order(engine.geometry)
    by_rank: dict[tuple[int, int], list[list[Command]]] = {}
    for index, stream in enumerate(streams):
        channel = index % channels
        rank = (index // channels) % ranks
        bank = bank_order[(index // (channels * ranks)) % len(bank_order)]
        by_rank.setdefault((channel, rank), []).append(
            [replace(command, bank=bank) for command in stream]
        )
    for channel in range(channels):
        channel_bus_ns = 0.0
        slowest_rank = 0.0
        for rank in range(ranks):
            rank_streams = by_rank.get((channel, rank))
            if not rank_streams:
                continue
            rank_makespan = memoized_merge_makespan_ns(
                rank_streams,
                lambda: rank_scheduler(engine),
                config_key=config_key,
            )
            rank_makespans[(channel, rank)] = rank_makespan
            slowest_rank = max(slowest_rank, rank_makespan)
            channel_bus_ns += bus_occupancy_ns(rank_streams, engine)
        if slowest_rank:
            channel_makespans[channel] = max(slowest_rank, channel_bus_ns)
    makespan = max(channel_makespans.values(), default=0.0)
    if key is not None:
        _HIERARCHY_MEMO.put(
            key, (makespan, dict(rank_makespans), dict(channel_makespans))
        )
    return makespan, rank_makespans, channel_makespans


def hierarchical_makespan_ns(
    streams: Sequence[Sequence[Command]],
    engine: PlutoEngine,
    *,
    channels: int,
    ranks: int,
) -> float:
    """Makespan of per-shard command streams spread over a hierarchy.

    Stream *i* is placed channel-first — channel ``i % channels``, then
    rank ``(i // channels) % ranks``, then the rank-local interleaved bank
    order — so collapsing ``channels`` and ``ranks`` to 1 reproduces the
    bank-only placement, and the per-level makespans of one execution are
    directly comparable.  Within a rank the streams merge under
    tRRD/tFAW/tCCD; ranks sharing a channel are jointly bounded by the
    channel bus's issue throughput; channels are independent.
    """
    makespan, _, _ = _schedule_hierarchy(
        streams, engine, channels=channels, ranks=ranks
    )
    return makespan


@lru_cache(maxsize=None)
def _interleaved_bank_order(geometry: DRAMGeometry) -> tuple[int, ...]:
    return tuple(
        group * geometry.banks_per_group + slot
        for slot in range(geometry.banks_per_group)
        for group in range(geometry.bank_groups)
    )


def interleaved_bank_order(geometry: DRAMGeometry) -> tuple[int, ...]:
    """Rank-local bank ids ordered to round-robin across bank groups.

    Consecutive shards land in different bank groups, so back-to-back
    column traffic pays tCCD_S instead of tCCD_L and activation pressure
    spreads across the rank's group-level circuitry.  Cached per
    geometry (geometries are frozen); returns an immutable tuple.
    """
    return _interleaved_bank_order(geometry)


@dataclass(frozen=True)
class HierarchyShard:
    """One shard: a hierarchy position, an element slice, and its program."""

    index: int
    channel: int
    rank: int
    bank_group: int
    bank: int
    start: int
    stop: int
    calls: tuple[ApiCall, ...]

    @property
    def size(self) -> int:
        """Number of elements this shard processes."""
        return self.stop - self.start


class HierarchyPlanner:
    """Places balanced element slices across channel/rank/bank levels."""

    def __init__(self, geometry: DRAMGeometry) -> None:
        self.geometry = geometry

    @property
    def total_banks(self) -> int:
        """Maximum shard count: every bank of every rank of every channel."""
        return self.geometry.total_banks

    def plan(self, calls: Sequence[ApiCall], shards: int | None = None) -> list[HierarchyShard]:
        """Split ``calls`` into shards placed channel-first over the device.

        ``shards`` defaults to every bank in the device (capped at the
        element count, so small programs still plan).  Placement is
        channel-first: shard *i* lands on channel ``i % channels``, rank
        ``(i // channels) % ranks``, and the rank-local bank order that
        round-robins bank groups — each added shard buys the most
        independent level of parallelism still available.
        """
        geometry = self.geometry
        if shards is None:
            size = ShardPlanner._uniform_size(calls)
            shards = min(self.total_banks, size)
        if shards > self.total_banks:
            raise ConfigurationError(
                f"cannot run {shards} shards on a device with "
                f"{self.total_banks} banks "
                f"({geometry.channels} channels x {geometry.ranks} ranks x "
                f"{geometry.banks} banks)"
            )
        bank_order = interleaved_bank_order(geometry)
        interface = geometry.channels * geometry.ranks
        plans: list[HierarchyShard] = []
        for index, (start, stop, shard_calls) in enumerate(
            ShardPlanner.plan_slices(calls, shards)
        ):
            bank = bank_order[index // interface]
            plans.append(
                HierarchyShard(
                    index=index,
                    channel=index % geometry.channels,
                    rank=(index // geometry.channels) % geometry.ranks,
                    bank_group=bank // geometry.banks_per_group,
                    bank=bank,
                    start=start,
                    stop=stop,
                    calls=shard_calls,
                )
            )
        return plans


@dataclass
class HierarchicalExecutionResult(ExecutionResult):
    """Aggregate result of a hierarchical execution.

    Besides the outputs and merged trace, the result decomposes where the
    parallel speedup comes from: :attr:`serial_latency_ns` drains every
    shard through one bank; :attr:`bank_only_makespan_ns` uses the banks
    of a single rank; :attr:`rank_parallel_makespan_ns` adds the ranks of
    one channel; :attr:`makespan_ns` (= :attr:`latency_ns`) uses the full
    channel/rank/bank hierarchy.  Each level can only help, so the four
    values are monotonically non-increasing.
    """

    shard_results: list[ExecutionResult] = field(default_factory=list)
    shards: list[HierarchyShard] = field(default_factory=list)
    makespan_ns: float = 0.0
    bank_only_makespan_ns: float = 0.0
    rank_parallel_makespan_ns: float = 0.0
    #: Per-channel makespans of the full hierarchical schedule.
    channel_makespans: dict[int, float] = field(default_factory=dict)
    #: Per-(channel, rank) makespans before bus staggering.
    rank_makespans: dict[tuple[int, int], float] = field(default_factory=dict)

    @property
    def num_shards(self) -> int:
        """Number of hierarchical shards that produced this result."""
        return len(self.shard_results)

    @property
    def serial_latency_ns(self) -> float:
        """Cost of draining every shard back to back through one bank."""
        return self.trace.total_latency_ns

    @property
    def latency_ns(self) -> float:
        """Makespan of the full channel/rank/bank-parallel execution."""
        return self.makespan_ns

    @property
    def parallel_speedup(self) -> float:
        """Serial drain of this shard plan over the hierarchical makespan."""
        if self.makespan_ns <= 0:
            return float("inf")
        return self.serial_latency_ns / self.makespan_ns

    @property
    def bank_speedup(self) -> float:
        """Speedup bought by bank-level parallelism alone (one rank)."""
        if self.bank_only_makespan_ns <= 0:
            return float("inf")
        return self.serial_latency_ns / self.bank_only_makespan_ns

    @property
    def rank_speedup(self) -> float:
        """Extra speedup from spreading the shards over one channel's ranks."""
        if self.rank_parallel_makespan_ns <= 0:
            return float("inf")
        return self.bank_only_makespan_ns / self.rank_parallel_makespan_ns

    @property
    def channel_speedup(self) -> float:
        """Extra speedup from spreading the ranks over every channel."""
        if self.makespan_ns <= 0:
            return float("inf")
        return self.rank_parallel_makespan_ns / self.makespan_ns

    @property
    def speedup_decomposition(self) -> dict[str, float]:
        """Multiplicative decomposition: bank x rank x channel = total."""
        return {
            "bank": self.bank_speedup,
            "rank": self.rank_speedup,
            "channel": self.channel_speedup,
            "total": self.parallel_speedup,
        }


class HierarchicalDispatcher:
    """Executes hierarchy plans through the controller and merges results.

    ``fused`` selects the execution strategy exactly as in
    :class:`~repro.controller.dispatch.ParallelDispatcher`: ``None``
    (default) batches the shards into one fused pass on batched-capable
    backends, ``False`` forces the per-shard oracle loop.

    ``channels`` / ``ranks`` optionally *narrow* the placement to a
    subset of the engine's interface hierarchy (the auto-planner prices
    partial placements); ``None`` uses the engine geometry's full count.
    """

    def __init__(
        self,
        engine: PlutoEngine | None = None,
        backend: str | ExecutionBackend = "vectorized",
        *,
        fused: bool | None = None,
        jit: bool = True,
        channels: int | None = None,
        ranks: int | None = None,
    ) -> None:
        self.engine = engine if engine is not None else PlutoEngine(PlutoConfig())
        geometry = self.engine.geometry
        if channels is not None and not 1 <= channels <= geometry.channels:
            raise ConfigurationError(
                f"placement channels must be within [1, {geometry.channels}], "
                f"got {channels}"
            )
        if ranks is not None and not 1 <= ranks <= geometry.ranks:
            raise ConfigurationError(
                f"placement ranks must be within [1, {geometry.ranks}], "
                f"got {ranks}"
            )
        self.channels = channels if channels is not None else geometry.channels
        self.ranks = ranks if ranks is not None else geometry.ranks
        placement = geometry
        if (self.channels, self.ranks) != (geometry.channels, geometry.ranks):
            placement = replace(
                geometry, channels=self.channels, ranks=self.ranks
            )
        self.controller = PlutoController(self.engine, backend=backend, jit=jit)
        self.planner = HierarchyPlanner(placement)
        self.fused = fused

    def execute(
        self,
        calls: Sequence[ApiCall],
        inputs: Mapping[str, np.ndarray],
        *,
        shards: int | None = None,
    ) -> HierarchicalExecutionResult:
        """Run ``calls`` over ``inputs`` spread across the whole hierarchy."""
        plans = self.planner.plan(calls, shards)
        arrays = {name: np.asarray(data) for name, data in inputs.items()}
        ParallelDispatcher._check_inputs(calls, arrays)
        shard_results = execute_shard_plans(
            self.controller, plans, arrays, fused=self.fused
        )
        return self._merge(plans, shard_results)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _merge(
        self,
        plans: list[HierarchyShard],
        shard_results: list[ExecutionResult],
    ) -> HierarchicalExecutionResult:
        engine = self.engine
        merged_trace = CommandTrace(timing=engine.timing, energy=engine.energy)
        for result in shard_results:
            merged_trace.merge(result.trace)
        streams = [result.trace.commands for result in shard_results]

        # Per-level makespans of the *same* shard streams under
        # progressively enabled hierarchy levels; the full-hierarchy
        # schedule also yields the per-rank/per-channel breakdown (its
        # placement formula reproduces the planner's, so the breakdown
        # keys match the plans' (channel, rank) positions).
        with stage(
            "schedule",
            shards=len(shard_results),
            channels=self.channels,
            ranks=self.ranks,
        ):
            bank_only = hierarchical_makespan_ns(
                streams, engine, channels=1, ranks=1
            )
            rank_parallel = hierarchical_makespan_ns(
                streams, engine, channels=1, ranks=self.ranks
            )
            makespan, rank_makespans, channel_makespans = _schedule_hierarchy(
                streams, engine, channels=self.channels, ranks=self.ranks
            )

        outputs = {
            name: np.concatenate(
                [result.outputs[name] for result in shard_results]
            )
            for name in shard_results[0].outputs
        }
        registers = {
            name: np.concatenate(
                [result.registers[name] for result in shard_results]
            )
            for name in shard_results[0].registers
        }
        return HierarchicalExecutionResult(
            outputs=outputs,
            trace=merged_trace,
            lut_queries=sum(result.lut_queries for result in shard_results),
            instructions_executed=sum(
                result.instructions_executed for result in shard_results
            ),
            registers=registers,
            backend=self.controller.backend.name,
            shard_results=shard_results,
            shards=plans,
            makespan_ns=makespan,
            bank_only_makespan_ns=bank_only,
            rank_parallel_makespan_ns=rank_parallel,
            channel_makespans=channel_makespans,
            rank_makespans=rank_makespans,
        )

"""The pLUTo Controller's command ROM.

The controller stores, in a small internal ROM, the DRAM command sequence
each pLUTo ISA instruction expands to (Section 6.4).  For ordinary
instructions this is a fixed template (e.g. an Ambit AND is four AAP
sequences); for ``pluto_op`` the expansion is a single pLUTo Row Sweep
whose length depends on the LUT size, so the ROM exposes a parameterised
entry.
"""

from __future__ import annotations

from repro.dram.commands import Command, CommandType
from repro.errors import ExecutionError
from repro.inmem.ambit import AmbitUnit
from repro.inmem.drisa import DrisaShifter
from repro.isa.instructions import (
    BitwiseKind,
    Instruction,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
)

__all__ = ["CommandRom"]


class CommandRom:
    """Maps ISA instructions to DRAM command sequences."""

    def __init__(self) -> None:
        self._ambit = AmbitUnit()
        self._drisa = DrisaShifter()

    def expand(
        self, instruction: Instruction, *, bank: int = 0, subarray: int = 0
    ) -> list[Command]:
        """Return the DRAM command sequence for one ISA instruction.

        Allocation instructions expand to nothing (they only update the
        allocation table); the remaining instructions expand to the command
        sequences of the mechanism they borrow (Ambit, DRISA, RowClone,
        LISA) or to a pLUTo Row Sweep.
        """
        if isinstance(instruction, (PlutoRowAlloc, PlutoSubarrayAlloc)):
            return []
        if isinstance(instruction, PlutoOp):
            return [
                Command(
                    CommandType.ROW_SWEEP,
                    bank=bank,
                    subarray=subarray,
                    rows=instruction.lut_size,
                    meta=instruction.render(),
                )
            ]
        if isinstance(instruction, PlutoBitwise):
            count = self._ambit.command_count(self._ambit_name(instruction.kind))
            return [
                Command(CommandType.TRA, bank=bank, subarray=subarray, meta=instruction.render())
                for _ in range(count)
            ]
        if isinstance(instruction, PlutoBitShift):
            count = self._drisa.commands_for(instruction.amount)
            return [
                Command(CommandType.SHIFT, bank=bank, subarray=subarray, meta=instruction.render())
                for _ in range(count)
            ]
        if isinstance(instruction, PlutoByteShift):
            count = instruction.amount  # one command per byte step
            return [
                Command(CommandType.SHIFT, bank=bank, subarray=subarray, meta=instruction.render())
                for _ in range(count)
            ]
        if isinstance(instruction, PlutoMove):
            return [
                Command(
                    CommandType.LISA_RBM,
                    bank=bank,
                    subarray=subarray,
                    meta=instruction.render(),
                )
            ]
        raise ExecutionError(
            f"the command ROM has no entry for {type(instruction).__name__}"
        )

    @staticmethod
    def _ambit_name(kind: BitwiseKind) -> str:
        return kind.value

"""pLUTo core: designs, LUTs, match logic, query engine, analytical models."""

from repro.core.analytical import PlutoCostModel, QueryCost
from repro.core.area import BASE_DRAM_AREA, AreaBreakdown, AreaModel
from repro.core.designs import DESIGN_PROPERTIES, DesignProperties, PlutoDesign
from repro.core.engine import (
    DDR4,
    THREE_DS,
    CostReport,
    PlutoConfig,
    PlutoEngine,
)
from repro.core.ff_buffer import FFBuffer
from repro.core.lut import (
    LookupTable,
    concat_binary_lut,
    gather_array,
    lut_from_function,
    replicate_lut_rows,
    sequence_lut,
)
from repro.core.match_logic import MatchLogic, MatchResult
from repro.core.recipe import WorkloadRecipe
from repro.core.subarray import PlutoSubarray, SweepStatistics

__all__ = [
    "PlutoCostModel",
    "QueryCost",
    "BASE_DRAM_AREA",
    "AreaBreakdown",
    "AreaModel",
    "DESIGN_PROPERTIES",
    "DesignProperties",
    "PlutoDesign",
    "DDR4",
    "THREE_DS",
    "CostReport",
    "PlutoConfig",
    "PlutoEngine",
    "FFBuffer",
    "LookupTable",
    "concat_binary_lut",
    "gather_array",
    "lut_from_function",
    "replicate_lut_rows",
    "sequence_lut",
    "MatchLogic",
    "MatchResult",
    "WorkloadRecipe",
    "PlutoSubarray",
    "SweepStatistics",
]

"""Analytical latency, throughput, and energy models of the pLUTo designs.

These are direct transcriptions of the expressions derived in
Sections 5.1.4, 5.2.3, and 5.3.4 and summarised in Table 1 (``N`` is the
number of LUT elements, i.e. rows swept):

================  =============================  ==========================
Design            Query latency                  Query energy
================  =============================  ==========================
pLUTo-BSA         ``(tRCD + tRP) * N``           ``(E_ACT + E_PRE) * N``
pLUTo-GSA         ``LISA*N + tRCD*N + tRP``      ``E_LISA*N + E_ACT*N + E_PRE``
pLUTo-GMC         ``tRCD*N + tRP``               ``E_ACT*N + E_PRE``
================  =============================  ==========================

Throughput (LUT queries per second, for one subarray) is the number of
elements per source row divided by the query latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designs import PlutoDesign
from repro.dram.energy import EnergyParameters
from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError
from repro.utils.units import NANO

__all__ = ["PlutoCostModel", "QueryCost"]


@dataclass(frozen=True)
class QueryCost:
    """Cost of one pLUTo LUT Query over a single source row."""

    latency_ns: float
    energy_nj: float
    elements: int

    @property
    def throughput_queries_per_s(self) -> float:
        """Element lookups completed per second for one subarray."""
        if self.latency_ns <= 0:
            return float("inf")
        return self.elements / (self.latency_ns * NANO)


class PlutoCostModel:
    """Latency/energy/throughput expressions for the three designs."""

    def __init__(
        self,
        timing: TimingParameters,
        energy: EnergyParameters,
        row_size_bytes: int,
        *,
        rows_per_subarray: int = 512,
        lisa_hop_latency_ns: float | None = None,
    ) -> None:
        if row_size_bytes <= 0:
            raise ConfigurationError("row size must be positive")
        if rows_per_subarray <= 0:
            raise ConfigurationError("rows per subarray must be positive")
        self.timing = timing
        self.energy = energy
        self.row_size_bytes = row_size_bytes
        self.rows_per_subarray = rows_per_subarray
        #: Latency of one LISA-RBM row move; defaults to tRCD + tRP, the
        #: cost of the linked activate used by LISA.
        self.lisa_hop_latency_ns = (
            lisa_hop_latency_ns
            if lisa_hop_latency_ns is not None
            else timing.t_rcd + timing.t_rp
        )

    # ------------------------------------------------------------------ #
    # Row Sweep latency (Table 1)
    # ------------------------------------------------------------------ #
    def sweep_latency_ns(self, design: PlutoDesign, lut_entries: int) -> float:
        """Latency of one pLUTo Row Sweep over ``lut_entries`` rows.

        LUTs larger than a subarray are partitioned across subarrays that
        sweep in parallel (Section 5.6): the swept-row count per subarray —
        and hence the latency — is capped at ``rows_per_subarray``, while
        energy (see :meth:`query_energy_nj`) still grows with the full LUT
        size because every partition activates its rows.
        """
        self._check_entries(lut_entries)
        swept = min(lut_entries, self.rows_per_subarray)
        timing = self.timing
        if design is PlutoDesign.BSA:
            return (timing.t_rcd + timing.t_rp) * swept
        if design is PlutoDesign.GSA:
            return timing.t_rcd * swept + timing.t_rp
        if design is PlutoDesign.GMC:
            return timing.t_rcd * swept + timing.t_rp
        raise ConfigurationError(f"unknown design {design}")

    def query_latency_ns(self, design: PlutoDesign, lut_entries: int) -> float:
        """Latency of one full pLUTo LUT Query (Table 1, "Query Latency").

        For pLUTo-GSA this includes reloading the LUT before the sweep,
        because its destructive reads force a reload for every query.
        """
        self._check_entries(lut_entries)
        sweep = self.sweep_latency_ns(design, lut_entries)
        if design is PlutoDesign.GSA:
            reload_rows = min(lut_entries, self.rows_per_subarray)
            return self.lisa_hop_latency_ns * reload_rows + sweep
        return sweep

    def query_energy_nj(self, design: PlutoDesign, lut_entries: int) -> float:
        """Energy of one full pLUTo LUT Query (Table 1, "Query Energy")."""
        self._check_entries(lut_entries)
        energy = self.energy
        if design is PlutoDesign.BSA:
            return (energy.e_act + energy.e_pre) * lut_entries
        if design is PlutoDesign.GSA:
            return (
                energy.e_lisa_rbm * lut_entries
                + energy.e_act * lut_entries
                + energy.e_pre
            )
        if design is PlutoDesign.GMC:
            return energy.e_act * lut_entries + energy.e_pre
        raise ConfigurationError(f"unknown design {design}")

    # ------------------------------------------------------------------ #
    # Throughput (Sections 5.1.4 / 5.2.3 / 5.3.4)
    # ------------------------------------------------------------------ #
    def elements_per_row(self, input_bit_width: int) -> int:
        """Number of LUT indices that fit in one source row."""
        if input_bit_width <= 0:
            raise ConfigurationError("input bit width must be positive")
        return (self.row_size_bytes * 8) // input_bit_width

    def query_cost(
        self, design: PlutoDesign, lut_entries: int, input_bit_width: int
    ) -> QueryCost:
        """Latency/energy/elements for one query over a full source row."""
        return QueryCost(
            latency_ns=self.query_latency_ns(design, lut_entries),
            energy_nj=self.query_energy_nj(design, lut_entries),
            elements=self.elements_per_row(input_bit_width),
        )

    def throughput_queries_per_s(
        self, design: PlutoDesign, lut_entries: int, input_bit_width: int
    ) -> float:
        """Maximum single-subarray LUT-query throughput (lookups per second)."""
        return self.query_cost(design, lut_entries, input_bit_width).throughput_queries_per_s

    # ------------------------------------------------------------------ #
    # Auxiliary operation costs used by the workload recipes
    # ------------------------------------------------------------------ #
    def bitwise_latency_ns(self, aap_sequences: int = 4) -> float:
        """Latency of one Ambit bulk bitwise operation (``aap_sequences`` AAPs)."""
        if aap_sequences <= 0:
            raise ConfigurationError("AAP count must be positive")
        return aap_sequences * (2 * self.timing.t_rcd + self.timing.t_rp)

    def bitwise_energy_nj(self, aap_sequences: int = 4) -> float:
        """Energy of one Ambit bulk bitwise operation."""
        if aap_sequences <= 0:
            raise ConfigurationError("AAP count must be positive")
        return aap_sequences * (2 * self.energy.e_act + self.energy.e_pre)

    def shift_latency_ns(self, shift_commands: int) -> float:
        """Latency of a DRISA shift decomposed into ``shift_commands`` steps."""
        if shift_commands < 0:
            raise ConfigurationError("shift command count must be non-negative")
        return shift_commands * (2 * self.timing.t_rcd + self.timing.t_rp)

    def shift_energy_nj(self, shift_commands: int) -> float:
        """Energy of a DRISA shift."""
        if shift_commands < 0:
            raise ConfigurationError("shift command count must be non-negative")
        return shift_commands * (2 * self.energy.e_act + self.energy.e_pre)

    def move_latency_ns(self, hops: int = 1) -> float:
        """Latency of a LISA row move across ``hops`` subarray links."""
        if hops <= 0:
            raise ConfigurationError("hop count must be positive")
        return hops * self.lisa_hop_latency_ns

    def move_energy_nj(self, hops: int = 1) -> float:
        """Energy of a LISA row move."""
        if hops <= 0:
            raise ConfigurationError("hop count must be positive")
        return hops * self.energy.e_lisa_rbm

    def lut_load_latency_ns(self, lut_entries: int) -> float:
        """Latency of loading a LUT into a pLUTo-enabled subarray via LISA."""
        self._check_entries(lut_entries)
        return lut_entries * self.lisa_hop_latency_ns

    def lut_load_energy_nj(self, lut_entries: int) -> float:
        """Energy of loading a LUT into a pLUTo-enabled subarray via LISA."""
        self._check_entries(lut_entries)
        return lut_entries * self.energy.e_lisa_rbm

    @staticmethod
    def _check_entries(lut_entries: int) -> None:
        if lut_entries <= 0:
            raise ConfigurationError("a LUT query must sweep at least one row")

"""DRAM area model for the three pLUTo designs (Table 5).

The paper derives per-component areas from CACTI 7 and transistor-count
estimates.  We encode the same component breakdown and the same
relative overheads: the matchline-controlled switch adds ~20 % of a sense
amplifier per bitline (GSA), the switch + FF add ~60 % of the SA area
(BSA), and the per-cell gate adds ~25 % to the cell array (GMC).  The
resulting totals match Table 5: +10.2 %, +16.7 %, +23.1 %.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.designs import PlutoDesign
from repro.errors import ConfigurationError

__all__ = ["AreaBreakdown", "AreaModel", "BASE_DRAM_AREA"]


@dataclass(frozen=True)
class AreaBreakdown:
    """Per-component DRAM chip area in mm^2 (one row of Table 5)."""

    dram_cells: float
    local_wordline_drivers: float
    match_logic: float
    match_lines: float
    sense_amplifiers: float
    row_decoder: float
    column_decoder: float
    other: float

    @property
    def total(self) -> float:
        """Total chip area in mm^2."""
        return (
            self.dram_cells
            + self.local_wordline_drivers
            + self.match_logic
            + self.match_lines
            + self.sense_amplifiers
            + self.row_decoder
            + self.column_decoder
            + self.other
        )

    def overhead_vs(self, baseline: "AreaBreakdown") -> float:
        """Fractional area overhead relative to ``baseline`` (e.g. 0.102)."""
        if baseline.total <= 0:
            raise ConfigurationError("baseline area must be positive")
        return self.total / baseline.total - 1.0

    def as_dict(self) -> dict[str, float]:
        """Component name -> area, in the order Table 5 lists them."""
        return {
            "DRAM Cell": self.dram_cells,
            "Local WL driver": self.local_wordline_drivers,
            "Match Logic": self.match_logic,
            "Match Lines": self.match_lines,
            "Sense Amp": self.sense_amplifiers,
            "Row Decoder": self.row_decoder,
            "Column Decoder": self.column_decoder,
            "Other": self.other,
        }


#: Baseline (unmodified) DRAM chip breakdown from Table 5.
BASE_DRAM_AREA = AreaBreakdown(
    dram_cells=45.23,
    local_wordline_drivers=12.45,
    match_logic=0.0,
    match_lines=0.0,
    sense_amplifiers=11.40,
    row_decoder=0.16,
    column_decoder=0.01,
    other=0.99,
)


class AreaModel:
    """Computes the Table 5 breakdown for each pLUTo design."""

    #: Match logic / matchline areas are identical across designs (Table 5).
    MATCH_LOGIC_AREA = 4.61
    MATCH_LINES_AREA = 0.02
    #: Row-decoder area including the Row Sweep stepping logic.
    PLUTO_ROW_DECODER_AREA = 0.47
    #: Sense-amplifier area factors relative to the baseline SA area:
    #: GSA adds the matchline-controlled switch (~20 %), BSA additionally
    #: adds the FF buffer (~60 % total).
    SA_FACTOR = {
        PlutoDesign.GSA: 1.20,
        PlutoDesign.BSA: 1.60,
        PlutoDesign.GMC: 1.00,
    }
    #: Cell-array factor: only GMC changes the cell (2T1C, +25 % per cell).
    CELL_FACTOR = {
        PlutoDesign.GSA: 1.00,
        PlutoDesign.BSA: 1.00,
        PlutoDesign.GMC: 1.25,
    }

    def __init__(self, baseline: AreaBreakdown = BASE_DRAM_AREA) -> None:
        self.baseline = baseline

    def breakdown(self, design: PlutoDesign) -> AreaBreakdown:
        """Return the per-component breakdown of a pLUTo design."""
        base = self.baseline
        return AreaBreakdown(
            dram_cells=base.dram_cells * self.CELL_FACTOR[design],
            local_wordline_drivers=base.local_wordline_drivers,
            match_logic=self.MATCH_LOGIC_AREA,
            match_lines=self.MATCH_LINES_AREA,
            sense_amplifiers=base.sense_amplifiers * self.SA_FACTOR[design],
            row_decoder=self.PLUTO_ROW_DECODER_AREA,
            column_decoder=base.column_decoder,
            other=base.other,
        )

    def overhead(self, design: PlutoDesign) -> float:
        """Fractional chip-area overhead of a design over baseline DRAM."""
        return self.breakdown(design).overhead_vs(self.baseline)

    def table5(self) -> dict[str, AreaBreakdown]:
        """The full Table 5: baseline plus the three designs."""
        return {
            "Base DRAM": self.baseline,
            PlutoDesign.GSA.display_name: self.breakdown(PlutoDesign.GSA),
            PlutoDesign.BSA.display_name: self.breakdown(PlutoDesign.BSA),
            PlutoDesign.GMC.display_name: self.breakdown(PlutoDesign.GMC),
        }

"""The three pLUTo hardware designs and their qualitative properties.

Section 5 proposes three designs that trade off throughput, energy
efficiency, and area overhead (summarised in Table 1):

=================  ==========  ==========  ==========
Attribute          pLUTo-BSA   pLUTo-GSA   pLUTo-GMC
=================  ==========  ==========  ==========
Area efficiency    Medium      High        Low
Throughput         Medium      Low         High
Energy efficiency  Medium      Low         High
Destructive reads  No          Yes         No
LUT data loading   Once        Every use   Once
=================  ==========  ==========  ==========
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["PlutoDesign", "DesignProperties", "DESIGN_PROPERTIES"]


class PlutoDesign(enum.Enum):
    """The three pLUTo designs of Section 5."""

    #: Buffered Sense Amplifier: FF buffer behind each sense amplifier.
    BSA = "pLUTo-BSA"
    #: Gated Sense Amplifier: matchline-controlled switch isolates the SA.
    GSA = "pLUTo-GSA"
    #: Gated Memory Cell: 2T1C cell gated by the matchline.
    GMC = "pLUTo-GMC"

    @property
    def display_name(self) -> str:
        """Name as used in the paper's figures."""
        return self.value


@dataclass(frozen=True)
class DesignProperties:
    """Qualitative properties of one design (Table 1)."""

    design: PlutoDesign
    destructive_reads: bool
    lut_load_per_query: bool
    uses_ff_buffer: bool
    precharge_per_activation: bool
    #: Relative area-overhead class used in summaries ("low" means the
    #: design adds the least area).
    area_class: str
    throughput_class: str
    energy_class: str


DESIGN_PROPERTIES: dict[PlutoDesign, DesignProperties] = {
    PlutoDesign.BSA: DesignProperties(
        design=PlutoDesign.BSA,
        destructive_reads=False,
        lut_load_per_query=False,
        uses_ff_buffer=True,
        precharge_per_activation=True,
        area_class="medium",
        throughput_class="medium",
        energy_class="medium",
    ),
    PlutoDesign.GSA: DesignProperties(
        design=PlutoDesign.GSA,
        destructive_reads=True,
        lut_load_per_query=True,
        uses_ff_buffer=False,
        precharge_per_activation=False,
        area_class="high",  # best area efficiency == smallest overhead
        throughput_class="low",
        energy_class="low",
    ),
    PlutoDesign.GMC: DesignProperties(
        design=PlutoDesign.GMC,
        destructive_reads=False,
        lut_load_per_query=False,
        uses_ff_buffer=False,
        precharge_per_activation=False,
        area_class="low",
        throughput_class="high",
        energy_class="high",
    ),
}

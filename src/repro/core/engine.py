"""The pLUTo execution engine.

:class:`PlutoEngine` combines a memory configuration (DDR4 or 3D-stacked),
one of the three pLUTo designs, a degree of subarray-level parallelism, and
the tFAW constraint into a single object that can

* report the cost (latency, energy) of executing a workload recipe over a
  given number of elements — this drives Figures 7-14, and
* instantiate functional pLUTo-enabled subarrays for bit-exact execution of
  LUT queries — this drives the correctness tests and the example programs.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.core.analytical import PlutoCostModel
from repro.core.designs import PlutoDesign
from repro.core.lut import LookupTable
from repro.core.recipe import WorkloadRecipe
from repro.core.subarray import PlutoSubarray
from repro.dram.energy import DDR4_ENERGY, HMC_ENERGY, EnergyParameters
from repro.dram.geometry import DDR4_8GB, HMC_3DS_GEOMETRY, DRAMGeometry
from repro.dram.timing import DDR4_2400, HMC_3DS, TimingParameters
from repro.errors import ConfigurationError, VerificationError
from repro.inmem.salp import salp_speedup

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.plan.execution_plan import ExecutionPlan

__all__ = ["MemoryKind", "PlutoConfig", "CostReport", "PlutoEngine"]


#: Memory technology identifiers used throughout the evaluation.
MemoryKind = str
DDR4: MemoryKind = "DDR4"
THREE_DS: MemoryKind = "3DS"

_MEMORY_PRESETS: dict[str, tuple[DRAMGeometry, TimingParameters, EnergyParameters, int]] = {
    # (geometry, timing, energy, default subarray-level parallelism)
    DDR4: (DDR4_8GB, DDR4_2400, DDR4_ENERGY, 16),
    THREE_DS: (HMC_3DS_GEOMETRY, HMC_3DS, HMC_ENERGY, 512),
}

#: Device power (W) of a pLUTo-capable module while executing, used for
#: static-energy accounting.  The pLUTo-BSA value matches Table 6 (11 W);
#: GSA is slightly lower (fewer added structures switching) and GMC
#: slightly higher (per-cell gates), and the 3D-stacked parts run cooler.
_DEVICE_POWER_W: dict[tuple[PlutoDesign, str], float] = {
    (PlutoDesign.BSA, DDR4): 11.0,
    (PlutoDesign.GSA, DDR4): 10.0,
    (PlutoDesign.GMC, DDR4): 13.0,
    (PlutoDesign.BSA, THREE_DS): 9.0,
    (PlutoDesign.GSA, THREE_DS): 8.0,
    (PlutoDesign.GMC, THREE_DS): 10.0,
}


@dataclass(frozen=True)
class PlutoConfig:
    """One evaluated pLUTo configuration (design x memory x parallelism).

    ``channels`` / ``ranks`` override the memory preset's interface-level
    hierarchy (Table 3 evaluates one channel with one rank); the
    hierarchical dispatcher uses them to model channel- and rank-level
    parallelism above the per-rank bank scheduling.

    ``optimize`` makes every execution routed through an engine built
    from this configuration run the program optimizer
    (:mod:`repro.opt`) before compilation by default; per-call
    ``optimize=`` arguments on the session entry points still override
    it either way.

    ``verify`` runs the static verifier (:mod:`repro.analyze`) over the
    program — post-optimization, i.e. what actually executes — before
    every execution routed through an engine built from this
    configuration: ``"always"`` unconditionally, ``"debug"`` only under
    ``__debug__`` (not with ``python -O``), ``"off"`` (the default)
    never.  Reports are memoized on the program structure key, so a
    served shape is verified once; errors raise
    :class:`~repro.errors.VerificationError` with the diagnostics.

    ``plan`` sets the default :class:`~repro.plan.ExecutionPlan` for
    every execution routed through an engine built from this
    configuration — ``"auto"`` turns on the cost-based auto-planner by
    default; a per-call ``plan=`` still overrides it.  Plans that
    contradict the configured geometry are rejected at construction.
    """

    design: PlutoDesign = PlutoDesign.BSA
    memory: MemoryKind = DDR4
    subarrays: int | None = None
    tfaw_fraction: float = 0.0
    channels: int | None = None
    ranks: int | None = None
    optimize: bool = False
    verify: str = "off"
    plan: "ExecutionPlan | str | None" = None

    def __post_init__(self) -> None:
        if self.verify not in ("always", "debug", "off"):
            raise ConfigurationError(
                f"unknown verify mode {self.verify!r}; expected one of "
                "['always', 'debug', 'off']"
            )
        if self.memory not in _MEMORY_PRESETS:
            raise ConfigurationError(
                f"unknown memory kind {self.memory!r}; expected one of "
                f"{sorted(_MEMORY_PRESETS)}"
            )
        if self.subarrays is not None and self.subarrays <= 0:
            raise ConfigurationError("subarray parallelism must be positive")
        if self.tfaw_fraction < 0:
            raise ConfigurationError("tFAW fraction must be >= 0")
        if self.channels is not None and self.channels <= 0:
            raise ConfigurationError("channel count must be positive")
        if self.ranks is not None and self.ranks <= 0:
            raise ConfigurationError("rank count must be positive")
        if self.plan is not None:
            self._check_plan()

    def _check_plan(self) -> None:
        """Reject a default plan that contradicts this configuration.

        A plan contradicting its geometry (``shards`` beyond the
        addressable banks, channel/rank placement wider than the device)
        fails here with the shared :class:`Diagnostic` records instead
        of deep inside dispatch; ``"auto"`` with explicit geometry
        pinned is rejected by :class:`ExecutionPlan` itself.
        """
        from repro.plan.execution_plan import (
            ExecutionPlan,
            plan_conflict_diagnostics,
            resolve_plan,
        )

        if not isinstance(self.plan, (str, ExecutionPlan)):
            raise ConfigurationError(
                "PlutoConfig(plan=) takes an ExecutionPlan, 'auto', or "
                f"None, got {type(self.plan).__name__}"
            )
        plan = resolve_plan(self.plan)
        if plan.is_auto:
            return
        geometry = _MEMORY_PRESETS[self.memory][0]
        if self.channels is not None or self.ranks is not None:
            geometry = replace(
                geometry,
                channels=self.channels or geometry.channels,
                ranks=self.ranks or geometry.ranks,
            )
        diagnostics = plan_conflict_diagnostics(plan, geometry)
        errors = [d for d in diagnostics if d.is_error]
        if errors:
            raise VerificationError(errors, subject="PlutoConfig plan")

    @property
    def label(self) -> str:
        """Label used in the paper's figures (e.g. ``pLUTo-BSA-3DS``)."""
        suffix = "-3DS" if self.memory == THREE_DS else ""
        return f"{self.design.display_name}{suffix}"

    @property
    def effective_subarrays(self) -> int:
        """Subarray-level parallelism (defaults per memory kind, Table 3)."""
        if self.subarrays is not None:
            return self.subarrays
        return _MEMORY_PRESETS[self.memory][3]


@dataclass
class CostReport:
    """Latency/energy of one workload execution on one configuration."""

    label: str
    workload: str
    elements: int
    rows: int
    latency_ns: float
    energy_nj: float
    lut_load_latency_ns: float = 0.0
    lut_load_energy_nj: float = 0.0
    static_energy_nj: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)

    @property
    def total_latency_ns(self) -> float:
        """Query latency plus one-time LUT loading latency."""
        return self.latency_ns + self.lut_load_latency_ns

    @property
    def total_energy_nj(self) -> float:
        """DRAM dynamic energy plus LUT loading plus device static energy."""
        return self.energy_nj + self.lut_load_energy_nj + self.static_energy_nj

    @property
    def throughput_elements_per_s(self) -> float:
        """Processed elements per second (excluding LUT loading)."""
        if self.latency_ns <= 0:
            return float("inf")
        return self.elements / (self.latency_ns * 1e-9)


class PlutoEngine:
    """Cost and functional engine for one pLUTo configuration."""

    def __init__(self, config: PlutoConfig = PlutoConfig()) -> None:
        self.config = config
        geometry, timing, energy, _ = _MEMORY_PRESETS[config.memory]
        if config.channels is not None or config.ranks is not None:
            geometry = replace(
                geometry,
                channels=config.channels or geometry.channels,
                ranks=config.ranks or geometry.ranks,
            )
        self.geometry = geometry
        self.timing = timing
        self.energy = energy
        self.cost_model = PlutoCostModel(
            timing,
            energy,
            geometry.row_size_bytes,
            rows_per_subarray=geometry.rows_per_subarray,
        )
        self.device_power_w = _DEVICE_POWER_W[(config.design, config.memory)]

    # ------------------------------------------------------------------ #
    # Functional execution
    # ------------------------------------------------------------------ #
    def create_subarray(self, lut: LookupTable | None = None) -> PlutoSubarray:
        """Create a pLUTo-enabled subarray (optionally pre-loaded with a LUT)."""
        subarray = PlutoSubarray(self.geometry, self.config.design)
        if lut is not None:
            subarray.load_lut(lut)
        return subarray

    # ------------------------------------------------------------------ #
    # Parallelism
    # ------------------------------------------------------------------ #
    def parallel_speedup(self, act_interval_ns: float | None = None) -> float:
        """Effective speedup from subarray-level parallelism under tFAW."""
        return salp_speedup(
            self.config.effective_subarrays,
            self.timing,
            act_interval_ns=act_interval_ns,
            tfaw_fraction=self.config.tfaw_fraction,
        )

    # ------------------------------------------------------------------ #
    # Recipe cost evaluation
    # ------------------------------------------------------------------ #
    def rows_for(self, recipe: WorkloadRecipe, elements: int) -> int:
        """Number of source rows needed to hold ``elements`` input elements."""
        if elements <= 0:
            raise ConfigurationError("element count must be positive")
        per_row = self.cost_model.elements_per_row(recipe.element_bits)
        return -(-elements // per_row)  # ceiling division

    def per_row_latency_ns(self, recipe: WorkloadRecipe) -> float:
        """In-memory latency of processing one source row of the recipe."""
        model = self.cost_model
        design = self.config.design
        latency = sum(model.query_latency_ns(design, n) for n in recipe.sweeps_per_row)
        if recipe.bitwise_aaps_per_row:
            latency += model.bitwise_latency_ns(recipe.bitwise_aaps_per_row)
        latency += model.shift_latency_ns(recipe.shift_commands_per_row)
        if recipe.moves_per_row:
            latency += model.move_latency_ns(recipe.moves_per_row)
        return latency

    def per_row_energy_nj(self, recipe: WorkloadRecipe) -> float:
        """In-memory energy of processing one source row of the recipe."""
        model = self.cost_model
        design = self.config.design
        energy = sum(model.query_energy_nj(design, n) for n in recipe.sweeps_per_row)
        if recipe.bitwise_aaps_per_row:
            energy += model.bitwise_energy_nj(recipe.bitwise_aaps_per_row)
        energy += model.shift_energy_nj(recipe.shift_commands_per_row)
        if recipe.moves_per_row:
            energy += model.move_energy_nj(recipe.moves_per_row)
        return energy

    def lut_load_cost(self, recipe: WorkloadRecipe) -> tuple[float, float]:
        """One-time (latency, energy) of loading the recipe's LUTs.

        pLUTo-GSA pays the reload on *every* query; that per-query cost is
        already part of :meth:`PlutoCostModel.query_latency_ns`, so here we
        only account for the initial load that every design performs once.
        """
        latency = sum(self.cost_model.lut_load_latency_ns(n) for n in recipe.luts_loaded)
        energy = sum(self.cost_model.lut_load_energy_nj(n) for n in recipe.luts_loaded)
        return latency, energy

    def execute(self, recipe: WorkloadRecipe, elements: int) -> CostReport:
        """Compute the cost of running ``recipe`` over ``elements`` inputs.

        Latency is divided by the effective subarray-level parallelism
        (Section 5.5); energy is not (Section 8.3): the same number of DRAM
        operations happens regardless of how they are spread over subarrays.
        """
        rows = self.rows_for(recipe, elements)
        per_row_latency = self.per_row_latency_ns(recipe)
        per_row_energy = self.per_row_energy_nj(recipe)
        speedup = self.parallel_speedup()
        load_latency, load_energy = self.lut_load_cost(recipe)
        latency = rows * per_row_latency / speedup
        energy = rows * per_row_energy
        static_energy = self.device_power_w * latency  # W * ns = nJ
        return CostReport(
            label=self.config.label,
            workload=recipe.name,
            elements=elements,
            rows=rows,
            latency_ns=latency,
            energy_nj=energy,
            lut_load_latency_ns=load_latency,
            lut_load_energy_nj=load_energy,
            static_energy_nj=static_energy,
            breakdown={
                "per_row_latency_ns": per_row_latency,
                "per_row_energy_nj": per_row_energy,
                "parallel_speedup": speedup,
            },
        )

"""The flip-flop (FF) buffer of pLUTo-BSA.

pLUTo-BSA attaches one flip-flop to every sense amplifier through a
matchline-controlled switch (Section 5.1.3).  During a Row Sweep, whenever
a comparator fires, the currently sensed LUT element is latched into the
corresponding FF positions; at the end of the sweep the FF buffer holds the
complete LUT query output vector, which is then moved to the destination
row buffer with a LISA-RBM operation.

The GSA and GMC designs do not use an FF buffer — they capture matched
elements directly in the (gated) sense amplifiers — but the capture
semantics are identical, so they reuse this class as their output latch
model with ``element_bits`` equal to the LUT element width.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bitops import pack_elements

__all__ = ["FFBuffer"]


class FFBuffer:
    """Element-granularity output latch conditioned on matchlines."""

    def __init__(self, num_elements: int, element_bits: int) -> None:
        if num_elements <= 0:
            raise ConfigurationError("FF buffer needs at least one element slot")
        if element_bits <= 0:
            raise ConfigurationError("element width must be positive")
        self.num_elements = num_elements
        self.element_bits = element_bits
        self._values = np.zeros(num_elements, dtype=np.uint64)
        self._captured = np.zeros(num_elements, dtype=bool)

    def reset(self) -> None:
        """Clear all latched values (start of a new query)."""
        self._values[:] = 0
        self._captured[:] = False

    def capture(self, element_value: int, matches: np.ndarray) -> int:
        """Latch ``element_value`` into every position whose matchline is high.

        Returns the number of positions captured by this activation.
        """
        matches = np.asarray(matches, dtype=bool)
        if matches.size != self.num_elements:
            raise ConfigurationError(
                f"match mask has {matches.size} entries, expected {self.num_elements}"
            )
        self._values[matches] = np.uint64(element_value)
        self._captured |= matches
        return int(np.count_nonzero(matches))

    def capture_vector(self, element_values: np.ndarray, matches: np.ndarray) -> int:
        """Latch per-position values (used when a row holds distinct copies)."""
        element_values = np.asarray(element_values, dtype=np.uint64)
        matches = np.asarray(matches, dtype=bool)
        if element_values.size != self.num_elements or matches.size != self.num_elements:
            raise ConfigurationError("value/match vectors must match the buffer size")
        self._values[matches] = element_values[matches]
        self._captured |= matches
        return int(np.count_nonzero(matches))

    @property
    def values(self) -> np.ndarray:
        """Current latched values (zeros where nothing was captured)."""
        return self._values.copy()

    @property
    def captured_mask(self) -> np.ndarray:
        """Boolean mask of positions that captured a value."""
        return self._captured.copy()

    @property
    def complete(self) -> bool:
        """Whether every position captured a value during the sweep."""
        return bool(self._captured.all())

    def to_row(self, row_bytes: int) -> np.ndarray:
        """Pack the latched values into a DRAM row image."""
        return pack_elements(self._values, self.element_bits, row_bytes)

"""Lookup tables and their in-DRAM layout.

A pLUTo LUT maps an N-bit index to an M-bit element.  Inside a
pLUTo-enabled subarray the LUT is stored *vertically replicated*: row *i*
of the subarray holds as many copies of ``lut[i]`` as fit in the row
(Figure 2), so that when row *i* is activated every bitline group carries a
copy of the element and any subset of output positions can capture it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.dram.geometry import DRAMGeometry
from repro.errors import LUTError
from repro.utils.bitops import bit_length_for, mask_of, pack_elements

__all__ = [
    "LookupTable",
    "gather_array",
    "gather_cache_size",
    "clear_gather_cache",
    "lut_from_function",
    "replicate_lut_rows",
    "concat_binary_lut",
    "sequence_lut",
]

#: LookupTable -> read-only uint64 gather array (tables are immutable, so
#: the conversion from the value tuple is paid once per distinct LUT).
_GATHER_CACHE: dict["LookupTable", np.ndarray] = {}


def gather_array(lut: "LookupTable") -> np.ndarray:
    """The LUT contents as a read-only ``uint64`` array for bulk gathers.

    This is the host-side analogue of the vertically replicated in-DRAM
    layout: ``gather_array(lut)[indices]`` evaluates a whole query vector
    at once.  The vectorized execution backend is built on it.
    """
    array = _GATHER_CACHE.get(lut)
    if array is None:
        array = np.asarray(lut.values, dtype=np.uint64)
        array.setflags(write=False)
        _GATHER_CACHE[lut] = array
    return array


def gather_cache_size() -> int:
    """Number of distinct LUTs with a cached gather array."""
    return len(_GATHER_CACHE)


def clear_gather_cache() -> None:
    """Drop every cached gather array (they rebuild on demand)."""
    _GATHER_CACHE.clear()


@dataclass(frozen=True)
class LookupTable:
    """An immutable lookup table with fixed index and element widths.

    Attributes
    ----------
    values:
        The table contents; ``values[i]`` is the element at index ``i``.
    index_bits:
        Bit width of the query index (``len(values) == 2**index_bits``).
    element_bits:
        Bit width of each stored element.
    name:
        Human-readable identifier used in traces and error messages.
    """

    values: tuple[int, ...]
    index_bits: int
    element_bits: int
    name: str = "lut"

    def __post_init__(self) -> None:
        expected = 1 << self.index_bits
        if len(self.values) != expected:
            raise LUTError(
                f"LUT {self.name!r}: {len(self.values)} entries do not match "
                f"index width {self.index_bits} (expected {expected})"
            )
        if self.element_bits <= 0:
            raise LUTError(f"LUT {self.name!r}: element width must be positive")
        limit = mask_of(self.element_bits)
        for index, value in enumerate(self.values):
            if not 0 <= value <= limit:
                raise LUTError(
                    f"LUT {self.name!r}: entry {index} = {value} exceeds "
                    f"{self.element_bits}-bit range"
                )

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, index: int) -> int:
        if not 0 <= index < len(self.values):
            raise LUTError(
                f"LUT {self.name!r}: index {index} out of range [0, {len(self)})"
            )
        return self.values[index]

    @property
    def num_entries(self) -> int:
        """Number of LUT elements (rows swept during a query)."""
        return len(self.values)

    def query(self, indices: np.ndarray) -> np.ndarray:
        """Reference (host-side) evaluation of the LUT for a vector of indices."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= len(self.values)):
            raise LUTError(
                f"LUT {self.name!r}: query index out of range [0, {len(self)})"
            )
        return gather_array(self)[indices]

    def rows_required(self, geometry: DRAMGeometry) -> int:
        """Number of subarray rows the LUT occupies (one per entry)."""
        if self.num_entries > geometry.rows_per_subarray:
            raise LUTError(
                f"LUT {self.name!r}: {self.num_entries} entries exceed the "
                f"{geometry.rows_per_subarray}-row subarray; partition the "
                "query across subarrays (Section 5.6)"
            )
        return self.num_entries


def lut_from_function(
    function: Callable[[int], int],
    index_bits: int,
    element_bits: int,
    name: str = "lut",
) -> LookupTable:
    """Tabulate ``function`` over all ``2**index_bits`` inputs.

    This is the "first-time generation" LUT-construction path of
    Section 6.5: the function is evaluated once per index and the results
    are stored for later bulk querying.
    """
    size = 1 << index_bits
    values = []
    limit = mask_of(element_bits)
    for index in range(size):
        value = int(function(index))
        if not 0 <= value <= limit:
            raise LUTError(
                f"LUT {name!r}: f({index}) = {value} does not fit in "
                f"{element_bits} bits"
            )
        values.append(value)
    return LookupTable(
        values=tuple(values),
        index_bits=index_bits,
        element_bits=element_bits,
        name=name,
    )


def replicate_lut_rows(
    lut: LookupTable, geometry: DRAMGeometry
) -> np.ndarray:
    """Produce the vertically replicated row image of a LUT.

    Returns an array of shape ``(num_entries, row_size_bytes)`` where row
    ``i`` contains back-to-back copies of ``lut[i]`` (element_bits wide)
    across the whole DRAM row, as in Figure 2 (ii).
    """
    copies = geometry.elements_per_row(lut.element_bits)
    if copies == 0:
        raise LUTError(
            f"LUT {lut.name!r}: element width {lut.element_bits} exceeds the row size"
        )
    rows = np.zeros((lut.num_entries, geometry.row_size_bytes), dtype=np.uint8)
    for index, value in enumerate(lut.values):
        elements = np.full(copies, value, dtype=np.uint64)
        rows[index] = pack_elements(elements, lut.element_bits, geometry.row_size_bytes)
    return rows


def concat_binary_lut(
    function: Callable[[int, int], int],
    left_bits: int,
    right_bits: int,
    element_bits: int,
    name: str = "binary-lut",
) -> LookupTable:
    """Build a LUT for a binary function of (left, right) operands.

    The LUT is indexed by the concatenation ``(left << right_bits) | right``
    which is exactly the operand layout the compiler produces with shift +
    OR alignment (Section 6.3).
    """
    index_bits = left_bits + right_bits

    def _wrapped(index: int) -> int:
        right = index & mask_of(right_bits)
        left = (index >> right_bits) & mask_of(left_bits)
        return function(left, right)

    return lut_from_function(_wrapped, index_bits, element_bits, name=name)


def sequence_lut(
    values: Sequence[int], element_bits: int, name: str = "lut"
) -> LookupTable:
    """Build a LUT from an explicit value sequence (padded to a power of two)."""
    count = len(values)
    if count == 0:
        raise LUTError("cannot build a LUT from an empty sequence")
    index_bits = bit_length_for(count)
    padded = list(values) + [0] * ((1 << index_bits) - count)
    return LookupTable(
        values=tuple(int(v) for v in padded),
        index_bits=index_bits,
        element_bits=element_bits,
        name=name,
    )

"""pLUTo Match Logic.

The match logic sits between the source subarray and the pLUTo-enabled
subarray (Figure 2).  It contains one comparator per element slot of the
source row buffer; during a Row Sweep each comparator compares its LUT
index (from the source row buffer) against the index of the currently
activated row and drives the corresponding matchlines high on an exact
match (Section 5.1.2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.utils.bitops import mask_of

__all__ = ["MatchLogic", "MatchResult"]


@dataclass(frozen=True)
class MatchResult:
    """Outcome of comparing one activated row index against the input vector."""

    row_index: int
    matches: np.ndarray  # boolean mask, one entry per source element

    @property
    def match_count(self) -> int:
        """Number of source elements that matched this row index."""
        return int(np.count_nonzero(self.matches))

    @property
    def any_match(self) -> bool:
        """Whether at least one comparator fired."""
        return bool(self.matches.any())


class MatchLogic:
    """A bank of per-element comparators.

    Parameters
    ----------
    num_comparators:
        Number of element slots in the source row buffer (row size divided
        by the LUT element width).
    index_bits:
        Comparator width; indices and row numbers are compared modulo
        ``2**index_bits`` because the source elements are exactly that wide.
    """

    def __init__(self, num_comparators: int, index_bits: int) -> None:
        if num_comparators <= 0:
            raise ConfigurationError("need at least one comparator")
        if index_bits <= 0:
            raise ConfigurationError("comparator width must be positive")
        self.num_comparators = num_comparators
        self.index_bits = index_bits
        #: Total comparisons performed (used by tests / energy accounting).
        self.comparisons = 0

    def compare(self, input_indices: np.ndarray, row_index: int) -> MatchResult:
        """Compare every input index against the activated row's index."""
        input_indices = np.asarray(input_indices, dtype=np.uint64)
        if input_indices.size != self.num_comparators:
            raise ConfigurationError(
                f"expected {self.num_comparators} input indices, "
                f"got {input_indices.size}"
            )
        if row_index < 0:
            raise ConfigurationError("row index must be non-negative")
        mask = np.uint64(mask_of(self.index_bits))
        matches = (input_indices & mask) == np.uint64(row_index & mask_of(self.index_bits))
        self.comparisons += self.num_comparators
        return MatchResult(row_index=row_index, matches=matches)

    def match_histogram(
        self, input_indices: np.ndarray, num_rows: int
    ) -> np.ndarray:
        """Number of matches each row index would produce over a full sweep.

        Useful for verifying the invariant that every input element matches
        exactly one row during a complete sweep of a ``2**index_bits``-entry
        LUT.
        """
        histogram = np.zeros(num_rows, dtype=np.int64)
        for row_index in range(num_rows):
            histogram[row_index] = self.compare(input_indices, row_index).match_count
        return histogram

"""Workload recipes: the in-memory command mix of one workload.

A :class:`WorkloadRecipe` describes, independently of any specific memory
configuration, what a workload asks pLUTo to do per *row* of input
elements: how many LUT queries (and of what size), how many Ambit bitwise
operations, how many DRISA shift commands, and how many LISA row moves.
It also carries the properties the baseline models need (arithmetic
intensity and the serial, non-offloadable fraction of the work).

The engine (:mod:`repro.core.engine`) turns a recipe plus an input size
into latency and energy for a given pLUTo configuration; the baseline
models turn the same recipe into CPU/GPU/FPGA/PnM costs.  Keeping both
sides keyed on one recipe object is what makes the relative comparisons in
Figures 7-10 internally consistent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["WorkloadRecipe"]


@dataclass(frozen=True)
class WorkloadRecipe:
    """Per-row in-memory command mix and host-side characteristics.

    Attributes
    ----------
    name:
        Workload identifier (matches the paper's figure labels).
    element_bits:
        Width of one input element as laid out in the source row.  This
        determines how many elements one ``pluto_op`` processes.
    sweeps_per_row:
        LUT sizes (number of entries, i.e. rows swept) of each ``pluto_op``
        applied to every row of input.
    luts_loaded:
        Sizes of the distinct LUTs that must be present in pLUTo-enabled
        subarrays before the workload runs (loaded once for BSA/GMC).
    bitwise_aaps_per_row:
        Number of Ambit AAP sequences per input row (operand merge, masks).
    shift_commands_per_row:
        Number of DRISA shift commands per input row (operand alignment).
    moves_per_row:
        Number of LISA row moves per input row (result placement).
    output_bits_per_element:
        Width of the produced element (used for output-traffic estimates).
    cpu_ops_per_element:
        Effective scalar operations the measured CPU implementation spends
        per element, including library and data-layout overheads (baseline
        model input for the CPU and GPU).
    kernel_ops_per_element:
        Pure algorithmic operations per element, with no library overhead.
        Used by the FPGA (whose HLS pipeline implements exactly the kernel)
        and the PnM logic-layer core.  Defaults to ``cpu_ops_per_element``.
    simd_efficiency:
        Fraction of a processor's peak integer throughput these operations
        actually achieve.  Streaming, vectorisable kernels (image ops,
        element-wise arithmetic) sit near 1.0; kernels dominated by
        serially dependent table lookups (CRC, VMPC) sit well below 0.2.
    bytes_per_element:
        Bytes of memory traffic per element on a processor-centric system
        (input + output + intermediate traffic).
    serial_fraction:
        Fraction of total work that is inherently serial and cannot be
        offloaded to pLUTo (e.g. the CRC reduction step).  Applied with
        Amdahl's law by the evaluation layer.
    """

    name: str
    element_bits: int
    sweeps_per_row: tuple[int, ...] = field(default_factory=tuple)
    luts_loaded: tuple[int, ...] = field(default_factory=tuple)
    bitwise_aaps_per_row: int = 0
    shift_commands_per_row: int = 0
    moves_per_row: int = 1
    output_bits_per_element: int = 8
    cpu_ops_per_element: float = 1.0
    kernel_ops_per_element: float | None = None
    simd_efficiency: float = 1.0
    bytes_per_element: float = 2.0
    serial_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.element_bits <= 0:
            raise ConfigurationError(f"{self.name}: element_bits must be positive")
        if any(entries <= 0 for entries in self.sweeps_per_row):
            raise ConfigurationError(f"{self.name}: sweep sizes must be positive")
        if any(entries <= 0 for entries in self.luts_loaded):
            raise ConfigurationError(f"{self.name}: LUT sizes must be positive")
        if self.bitwise_aaps_per_row < 0 or self.shift_commands_per_row < 0:
            raise ConfigurationError(f"{self.name}: command counts must be >= 0")
        if self.moves_per_row < 0:
            raise ConfigurationError(f"{self.name}: move count must be >= 0")
        if not 0.0 <= self.serial_fraction < 1.0:
            raise ConfigurationError(
                f"{self.name}: serial fraction must be in [0, 1)"
            )
        if self.cpu_ops_per_element <= 0 or self.bytes_per_element <= 0:
            raise ConfigurationError(
                f"{self.name}: baseline characteristics must be positive"
            )
        if not 0.0 < self.simd_efficiency <= 1.0:
            raise ConfigurationError(
                f"{self.name}: SIMD efficiency must be in (0, 1]"
            )
        if self.kernel_ops_per_element is not None and self.kernel_ops_per_element <= 0:
            raise ConfigurationError(
                f"{self.name}: kernel_ops_per_element must be positive"
            )

    @property
    def effective_kernel_ops(self) -> float:
        """Kernel operation count per element (defaults to the CPU count)."""
        if self.kernel_ops_per_element is not None:
            return self.kernel_ops_per_element
        return self.cpu_ops_per_element

    @property
    def total_sweep_rows(self) -> int:
        """Total rows activated by all sweeps applied to one input row."""
        return sum(self.sweeps_per_row)

    @property
    def uses_lut_queries(self) -> bool:
        """Whether the workload performs any pLUTo LUT queries at all."""
        return bool(self.sweeps_per_row)

"""The pLUTo-enabled subarray.

A pLUTo-enabled subarray wraps a plain DRAM subarray with the structures
of Figure 2: the vertically replicated LUT rows, the pLUTo-enabled row
decoder (row sweeping), the match logic, and the design-specific output
capture path (FF buffer for BSA, gated sense amplifiers for GSA/GMC).

The functional behaviour differs per design exactly as Section 5 describes:

* **BSA** — every swept row is fully activated and precharged; matched
  elements are copied into the FF buffer; the LUT stays intact.
* **GSA** — unmatched bitlines are isolated from their sense amplifiers, so
  every swept row's cells lose their charge (destructive read) and the LUT
  must be reloaded before the next query; matched elements are captured in
  the sense amplifiers.
* **GMC** — unmatched cells never share charge (the per-cell gate stays
  open), so the LUT survives; matched elements are captured in the sense
  amplifiers; no per-activation precharge is needed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.designs import DESIGN_PROPERTIES, PlutoDesign
from repro.core.ff_buffer import FFBuffer
from repro.core.lut import LookupTable, replicate_lut_rows
from repro.core.match_logic import MatchLogic
from repro.dram.geometry import DRAMGeometry
from repro.dram.refresh import RowStepper
from repro.dram.subarray import Subarray
from repro.errors import LUTError, SubarrayStateError
from repro.utils.bitops import unpack_elements

__all__ = ["PlutoSubarray", "SweepStatistics"]


@dataclass
class SweepStatistics:
    """Counters produced by one pLUTo Row Sweep."""

    rows_activated: int = 0
    matches: int = 0
    comparisons: int = 0
    lut_reloaded: bool = False


class PlutoSubarray:
    """A DRAM subarray extended with pLUTo's LUT-query machinery."""

    def __init__(
        self,
        geometry: DRAMGeometry,
        design: PlutoDesign,
        *,
        index: int = 0,
    ) -> None:
        self.geometry = geometry
        self.design = design
        self.properties = DESIGN_PROPERTIES[design]
        self.storage = Subarray(geometry, index=index)
        self.stepper = RowStepper(geometry.rows_per_subarray)
        self._lut: LookupTable | None = None
        self._lut_base_row = 0
        self._lut_rows: np.ndarray | None = None
        self._lut_valid = False
        #: Cumulative statistics across all sweeps (tests and reporting).
        self.total_sweeps = 0
        self.total_lut_loads = 0

    # ------------------------------------------------------------------ #
    # LUT loading (Section 6.5)
    # ------------------------------------------------------------------ #
    @property
    def lut(self) -> LookupTable | None:
        """The currently loaded LUT, if any."""
        return self._lut

    @property
    def lut_valid(self) -> bool:
        """Whether the in-array LUT copy is intact (GSA destroys it per query)."""
        return self._lut_valid

    def load_lut(self, lut: LookupTable, base_row: int = 0) -> int:
        """Store the vertically replicated LUT into the subarray.

        Returns the number of rows written (one per LUT entry).  This models
        the ``pluto_subarray_alloc`` + LUT-loading step; its cost is
        accounted for by the engine, not here.
        """
        rows = replicate_lut_rows(lut, self.geometry)
        if base_row + rows.shape[0] > self.geometry.rows_per_subarray:
            raise LUTError(
                f"LUT {lut.name!r} with {rows.shape[0]} rows does not fit at "
                f"base row {base_row}"
            )
        self.storage.load_rows(base_row, rows)
        self._lut = lut
        self._lut_base_row = base_row
        self._lut_rows = rows
        self._lut_valid = True
        self.total_lut_loads += 1
        return rows.shape[0]

    def reload_lut(self) -> int:
        """Re-store the previously loaded LUT (after a destructive GSA sweep)."""
        if self._lut is None or self._lut_rows is None:
            raise LUTError("no LUT has been loaded into this subarray")
        self.storage.load_rows(self._lut_base_row, self._lut_rows)
        self._lut_valid = True
        self.total_lut_loads += 1
        return self._lut_rows.shape[0]

    # ------------------------------------------------------------------ #
    # The pLUTo LUT Query (Section 4.1)
    # ------------------------------------------------------------------ #
    def elements_per_query(self) -> int:
        """Number of LUT indices processed per query (one source row's worth)."""
        if self._lut is None:
            raise LUTError("load a LUT before querying")
        return self.geometry.elements_per_row(self._lut.element_bits)

    def query_row(self, source_row: np.ndarray) -> tuple[np.ndarray, SweepStatistics]:
        """Execute one pLUTo LUT Query against a packed source row.

        ``source_row`` is the source subarray's row-buffer contents: packed
        LUT indices, each ``index_bits`` wide but stored in element-width
        slots (zero-padded), exactly as ``pluto_op`` defines.  The return
        value is the packed output row (the LUT query output vector) and the
        sweep statistics.
        """
        if self._lut is None:
            raise LUTError("load a LUT before querying")
        if not self._lut_valid:
            raise SubarrayStateError(
                "the in-array LUT copy was destroyed by a previous pLUTo-GSA "
                "sweep; reload it before querying again"
            )
        lut = self._lut
        num_elements = self.elements_per_query()
        indices = unpack_elements(source_row, lut.element_bits, num_elements)
        if indices.size and int(indices.max()) >= lut.num_entries:
            raise LUTError(
                f"source row contains index {int(indices.max())} outside the "
                f"{lut.num_entries}-entry LUT {lut.name!r}"
            )

        match_logic = MatchLogic(num_elements, lut.index_bits)
        output = FFBuffer(num_elements, lut.element_bits)
        statistics = SweepStatistics()

        sweep_rows = self.stepper.sweep_order(self._lut_base_row, lut.num_entries)
        for offset, row in enumerate(sweep_rows):
            restore = not self.properties.destructive_reads
            row_data = self.storage.activate(row, restore=restore)
            self.storage.precharge()
            statistics.rows_activated += 1
            result = match_logic.compare(indices, offset)
            statistics.comparisons += num_elements
            if result.any_match:
                row_elements = unpack_elements(row_data, lut.element_bits, num_elements)
                statistics.matches += output.capture_vector(row_elements, result.matches)

        if self.properties.destructive_reads:
            self._lut_valid = False
            statistics.lut_reloaded = False
        if not output.complete:
            raise LUTError(
                "pLUTo LUT Query finished with uncaptured output positions; "
                "this indicates a source index outside the swept row range"
            )
        self.total_sweeps += 1
        return output.to_row(self.geometry.row_size_bytes), statistics

    def query_indices(self, indices: np.ndarray) -> np.ndarray:
        """Convenience wrapper: query a plain index vector, return element values.

        Pads the vector to a full row, performs the in-array query, and
        returns the first ``len(indices)`` output elements.
        """
        from repro.utils.bitops import pack_elements

        if self._lut is None:
            raise LUTError("load a LUT before querying")
        lut = self._lut
        capacity = self.elements_per_query()
        indices = np.asarray(indices, dtype=np.uint64)
        if indices.size > capacity:
            raise LUTError(
                f"{indices.size} indices exceed the {capacity}-element row capacity"
            )
        if indices.size and int(indices.max()) >= lut.num_entries:
            raise LUTError(
                f"query index {int(indices.max())} outside the "
                f"{lut.num_entries}-entry LUT {lut.name!r}"
            )
        padded = np.zeros(capacity, dtype=np.uint64)
        padded[: indices.size] = indices
        source_row = pack_elements(padded, lut.element_bits, self.geometry.row_size_bytes)
        output_row, _ = self.query_row(source_row)
        values = unpack_elements(output_row, lut.element_bits, capacity)
        return values[: indices.size]

"""DRAM substrate: organisation, timing, energy, and functional models."""

from repro.dram.address import AddressMapper, RowAddress
from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandTrace, CommandType
from repro.dram.energy import DDR4_ENERGY, HMC_ENERGY, EnergyParameters
from repro.dram.geometry import DDR4_8GB, HMC_3DS_GEOMETRY, DRAMGeometry
from repro.dram.module import DRAMModule
from repro.dram.refresh import RefreshModel, RowStepper
from repro.dram.scheduler import CommandScheduler, ScheduledCommand
from repro.dram.subarray import Subarray
from repro.dram.timing import DDR4_2400, HMC_3DS, TimingParameters, scaled_tfaw

__all__ = [
    "AddressMapper",
    "RowAddress",
    "Bank",
    "Command",
    "CommandTrace",
    "CommandType",
    "DDR4_ENERGY",
    "HMC_ENERGY",
    "EnergyParameters",
    "DDR4_8GB",
    "HMC_3DS_GEOMETRY",
    "DRAMGeometry",
    "DRAMModule",
    "RefreshModel",
    "RowStepper",
    "CommandScheduler",
    "ScheduledCommand",
    "Subarray",
    "DDR4_2400",
    "HMC_3DS",
    "TimingParameters",
    "scaled_tfaw",
]

"""Physical address mapping.

pLUTo's system integration requires knowledge of which physical addresses
map to which bank/subarray/row so the controller can co-locate the source
row, the LUT-holding subarray, and the destination row (Section 6.6).  This
module implements a simple row-interleaved mapping and its inverse, which
is what the allocation table and the compiler use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.geometry import DRAMGeometry
from repro.errors import AddressError

__all__ = ["RowAddress", "AddressMapper"]


@dataclass(frozen=True, order=True)
class RowAddress:
    """A fully decoded DRAM row address."""

    bank: int
    subarray: int
    row: int

    def neighbours(self, geometry: DRAMGeometry) -> list["RowAddress"]:
        """Return the adjacent subarrays' same-index rows (LISA links)."""
        result = []
        if self.subarray > 0:
            result.append(RowAddress(self.bank, self.subarray - 1, self.row))
        if self.subarray < geometry.subarrays_per_bank - 1:
            result.append(RowAddress(self.bank, self.subarray + 1, self.row))
        return result


class AddressMapper:
    """Maps flat row numbers and byte addresses to DRAM coordinates.

    The mapping places consecutive rows within a subarray, then walks
    subarrays within a bank, then banks.  This keeps contiguously allocated
    pLUTo structures physically contiguous, which is exactly what the
    pLUTo allocation routines require.
    """

    def __init__(self, geometry: DRAMGeometry) -> None:
        self.geometry = geometry

    # ------------------------------------------------------------------ #
    # Flat row index <-> coordinates
    # ------------------------------------------------------------------ #
    @property
    def total_rows(self) -> int:
        """Total number of rows in the device."""
        return self.geometry.total_banks * self.geometry.rows_per_bank

    def decode_row(self, flat_row: int) -> RowAddress:
        """Decode a flat row number into (bank, subarray, row)."""
        if not 0 <= flat_row < self.total_rows:
            raise AddressError(
                f"row index {flat_row} out of range [0, {self.total_rows})"
            )
        rows_per_bank = self.geometry.rows_per_bank
        bank, within_bank = divmod(flat_row, rows_per_bank)
        subarray, row = divmod(within_bank, self.geometry.rows_per_subarray)
        return RowAddress(bank=bank, subarray=subarray, row=row)

    def encode_row(self, address: RowAddress) -> int:
        """Encode (bank, subarray, row) into a flat row number."""
        geometry = self.geometry
        if not 0 <= address.bank < geometry.total_banks:
            raise AddressError(f"bank {address.bank} out of range")
        geometry.validate_row(address.subarray, address.row)
        return (
            address.bank * geometry.rows_per_bank
            + address.subarray * geometry.rows_per_subarray
            + address.row
        )

    # ------------------------------------------------------------------ #
    # Byte address <-> coordinates
    # ------------------------------------------------------------------ #
    def decode_byte(self, byte_address: int) -> tuple[RowAddress, int]:
        """Decode a physical byte address into (row address, column offset)."""
        if byte_address < 0:
            raise AddressError("byte address must be non-negative")
        row_bytes = self.geometry.row_size_bytes
        flat_row, column = divmod(byte_address, row_bytes)
        return self.decode_row(flat_row), column

    def encode_byte(self, address: RowAddress, column: int = 0) -> int:
        """Encode (row address, column offset) into a physical byte address."""
        if not 0 <= column < self.geometry.row_size_bytes:
            raise AddressError(
                f"column {column} out of range [0, {self.geometry.row_size_bytes})"
            )
        return self.encode_row(address) * self.geometry.row_size_bytes + column

    # ------------------------------------------------------------------ #
    # Allocation helpers
    # ------------------------------------------------------------------ #
    def rows_in_subarray(self, bank: int, subarray: int) -> list[RowAddress]:
        """All row addresses of one subarray, in wordline order."""
        self.geometry.validate_row(subarray, 0)
        return [
            RowAddress(bank, subarray, row)
            for row in range(self.geometry.rows_per_subarray)
        ]

    def same_subarray(self, first: RowAddress, second: RowAddress) -> bool:
        """Whether two rows live in the same subarray (RowClone-FPM reach)."""
        return first.bank == second.bank and first.subarray == second.subarray

    def same_bank(self, first: RowAddress, second: RowAddress) -> bool:
        """Whether two rows live in the same bank (LISA reach)."""
        return first.bank == second.bank

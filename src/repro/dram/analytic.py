"""Memoized and analytic makespan computation for merged command streams.

:meth:`~repro.dram.scheduler.CommandScheduler.merge_streams` is the
reference model of bank-parallel execution: an event-driven merge that
interleaves per-bank command streams at activation granularity.  It is
also, by far, the most expensive part of simulating large shard counts —
every shard of a Row Sweep contributes hundreds of activation events, and
every call replays all of them through a Python loop that rescans every
bank per event.

This module makes repeated makespan queries cost ~nothing without giving
up the reference semantics, via three layers:

1. **Structural memoization** — a makespan depends only on the *structure*
   of the streams (command kinds, banks, row counts) and the scheduler's
   timing configuration, never on data values.  :func:`merge_signature`
   captures that structure in a small hashable key and
   :func:`memoized_merge_makespan_ns` caches results under it, so the
   dispatchers and the serving layer re-merge identical shard plans once.
2. **A fast exact merge** — :func:`fast_merge_makespan_ns` replays the
   *same* greedy schedule as ``merge_streams`` (same constraint terms,
   same floating-point operations, same tie-breaking) but picks the next
   activation with a priority queue instead of rescanning every bank, so
   it is bit-identical to the reference while doing O(log banks) work per
   activation.  Streams with column accesses (RD/WR) fall back to the
   reference implementation, which models the data-bus/tCCD interplay.
3. **A closed-form model** — :func:`homogeneous_sweep_makespan_ns`
   computes the makespan of *homogeneous* Row-Sweep streams (every bank
   sweeping identical rows at a uniform activation interval, the shape
   the balanced shard planners produce) from the tRRD/tFAW arithmetic
   directly, in O(banks) instead of O(activations).  It reproduces the
   greedy schedule's wave structure exactly in real arithmetic; because
   it multiplies where the event merge repeatedly adds, results can
   differ from the reference at the last-ulp level, so the memoized
   production path keeps the exact merge and the closed form serves as
   the analytic cross-check and capacity model.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import TYPE_CHECKING, Sequence

from repro.dram.commands import Command
from repro.dram.timing import TimingParameters
from repro.errors import TimingViolationError
from repro.utils.memo import BoundedMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dram.scheduler import CommandScheduler

__all__ = [
    "stream_signature",
    "streams_signature",
    "scheduler_signature",
    "merge_signature",
    "memoized_merge_makespan_ns",
    "fast_merge_makespan_ns",
    "homogeneous_sweep_makespan_ns",
    "merge_cache_stats",
    "clear_merge_cache",
]


# --------------------------------------------------------------------- #
# Structural signatures
# --------------------------------------------------------------------- #
def stream_signature(stream: Sequence[Command]) -> tuple:
    """Hashable key of everything the merge reads from one stream.

    The scheduler's timing decisions depend only on each command's kind,
    bank, and row count — subarray indices, row addresses, and metadata
    never influence issue times — so two streams with equal signatures
    merge to identical makespans.
    """
    return tuple(
        (command.kind, command.bank, command.rows) for command in stream
    )


def streams_signature(streams: Sequence[Sequence[Command]]) -> tuple:
    """The per-stream signatures of a whole merge, as one hashable key."""
    return tuple(stream_signature(stream) for stream in streams)


def scheduler_signature(scheduler: "CommandScheduler") -> tuple:
    """Hashable key of everything a scheduler's timing decisions read."""
    return (
        scheduler.timing,
        scheduler.num_banks,
        scheduler.banks_per_group,
        scheduler.sweep_act_interval_ns,
        scheduler.sweep_tail_ns,
        scheduler.sweep_acts_per_row,
        scheduler.lisa_hop_ns,
    )


def merge_signature(
    streams: Sequence[Sequence[Command]], scheduler: "CommandScheduler"
) -> tuple:
    """Cache key of one ``merge_streams`` call: streams plus timing."""
    return (streams_signature(streams), *scheduler_signature(scheduler))


# --------------------------------------------------------------------- #
# Memoized merging
# --------------------------------------------------------------------- #
#: merge signature -> makespan.
_MERGE_MEMO: BoundedMemo[float] = BoundedMemo(4096)
_ROUTE_STATS = {"fast": 0, "reference": 0}


def memoized_merge_makespan_ns(
    streams: Sequence[Sequence[Command]],
    scheduler_factory,
    *,
    config_key: tuple | None = None,
) -> float:
    """Makespan of ``streams``, cached on their structural signature.

    ``scheduler_factory`` builds a fresh configured
    :class:`~repro.dram.scheduler.CommandScheduler` on a cache miss (the
    merge consumes a scheduler, so one cannot be reused); pass the
    factory's :func:`scheduler_signature` as ``config_key`` so cache
    hits skip scheduler construction entirely.  Results are computed by
    the exact fast merge when the streams contain no column accesses,
    and by the reference event-driven merge otherwise — either way the
    returned value is bit-identical to calling
    ``scheduler_factory().merge_streams(streams)`` directly.
    """
    scheduler = None
    if config_key is None:
        scheduler = scheduler_factory()
        config_key = scheduler_signature(scheduler)
    try:
        key = (streams_signature(streams), *config_key)
    except TypeError:  # unhashable timing override; compute uncached
        _MERGE_MEMO.note_uncached()
        return _run_merge(streams, scheduler or scheduler_factory())
    cached = _MERGE_MEMO.get(key)
    if cached is not None:
        return cached
    makespan = _run_merge(streams, scheduler or scheduler_factory())
    _MERGE_MEMO.put(key, makespan)
    return makespan


def _run_merge(
    streams: Sequence[Sequence[Command]], scheduler: "CommandScheduler"
) -> float:
    fast = fast_merge_makespan_ns(streams, scheduler)
    if fast is not None:
        _ROUTE_STATS["fast"] += 1
        return fast
    _ROUTE_STATS["reference"] += 1
    return scheduler.merge_streams(streams)


def merge_cache_stats() -> dict[str, int]:
    """Hit/miss counters, computation routes, and size of the memo."""
    return dict(_MERGE_MEMO.stats(), **_ROUTE_STATS)


def clear_merge_cache() -> None:
    """Drop every memoized makespan and reset the counters."""
    _MERGE_MEMO.clear()
    for key in _ROUTE_STATS:
        _ROUTE_STATS[key] = 0


# --------------------------------------------------------------------- #
# Exact fast merge
# --------------------------------------------------------------------- #
def fast_merge_makespan_ns(
    streams: Sequence[Sequence[Command]], scheduler: "CommandScheduler"
) -> float | None:
    """Bit-exact fast replay of :meth:`CommandScheduler.merge_streams`.

    The reference merge rescans every bank per activation to find the one
    whose next activation can issue earliest.  Its choice is predictable:
    the rank-global constraints (command bus, tRRD, tFAW) give one floor
    ``G`` shared by all banks, so the winner is the first-inserted bank
    whose cursor is at or below ``G`` — or, when every bank is still busy,
    the bank with the smallest cursor.  Tracking banks in two heaps (by
    cursor until they catch up to ``G``, then by insertion order) yields
    the *same* schedule — the same floating-point additions and maxima in
    the same order — at O(log banks) per activation.

    Returns ``None`` for streams containing column accesses (RD/WR),
    whose tCCD/data-bus interleaving the reference implementation models;
    the caller falls back to ``merge_streams``.
    """
    timing = scheduler.timing
    queues: dict[int, deque] = {}
    for stream in streams:
        for command in stream:
            if not 0 <= command.bank < scheduler.num_banks:
                raise TimingViolationError(
                    f"bank {command.bank} outside scheduler range "
                    f"[0, {scheduler.num_banks})"
                )
            events = scheduler.events_of(command)
            if any(kind == "col" for kind, _ in events):
                return None
            queues.setdefault(command.bank, deque()).extend(events)

    makespan = 0.0
    #: Banks whose next activation is not yet admissible, by (cursor,
    #: insertion index); and banks ready at the global floor, by insertion
    #: index (the reference's first-inserted-wins tie break).
    pending: list[tuple[float, int, int]] = []
    ready: list[tuple[int, int]] = []
    bank_queues: list[deque] = []
    for index, (bank, queue) in enumerate(queues.items()):
        cursor = 0.0
        while queue and queue[0][0] != "act":
            cursor += queue.popleft()[1]
            makespan = max(makespan, cursor)
        bank_queues.append(queue)
        if queue:
            heapq.heappush(pending, (cursor, index, bank))

    recent: deque[float] = deque()
    last_act = float("-inf")
    bus_free = 0.0
    t_rrd, t_faw, clock = timing.t_rrd, timing.t_faw, timing.clock_ns
    while pending or ready:
        floor = bus_free
        if t_rrd > 0:
            floor = max(floor, last_act + t_rrd)
        if t_faw > 0 and len(recent) >= 4:
            floor = max(floor, recent[-4] + t_faw)
        while pending and pending[0][0] <= floor:
            _, index, bank = heapq.heappop(pending)
            heapq.heappush(ready, (index, bank))
        if ready:
            index, bank = heapq.heappop(ready)
            issue_time = floor
        else:
            cursor, index, bank = heapq.heappop(pending)
            issue_time = cursor
        queue = bank_queues[index]
        _, gap = queue.popleft()
        recent.append(issue_time)
        if len(recent) > 16:
            recent.popleft()
        last_act = issue_time
        bus_free = max(bus_free, issue_time + clock)
        cursor = issue_time + gap
        makespan = max(makespan, cursor)
        while queue and queue[0][0] != "act":
            cursor += queue.popleft()[1]
            makespan = max(makespan, cursor)
        if queue:
            heapq.heappush(pending, (cursor, index, bank))
    return makespan


# --------------------------------------------------------------------- #
# Closed-form homogeneous Row-Sweep makespan
# --------------------------------------------------------------------- #
def _chain_time_ns(acts: int, rate_ns: float, t_faw: float) -> float:
    """Issue time of activation ``acts`` in an unthrottled rotation.

    When the per-bank gap never binds, the greedy schedule reduces to the
    recurrence ``t(n) = max(t(n-1) + r, t(n-4) + tFAW)``, whose solution
    is the best mix of single-activation steps (weight ``r`` = the larger
    of tRRD and the command-bus clock) and four-activation tFAW windows:
    ``t(n) = max(n*r, (n//4)*tFAW + (n%4)*r)``.
    """
    if t_faw <= 0:
        return acts * rate_ns
    return max(acts * rate_ns, (acts // 4) * t_faw + (acts % 4) * rate_ns)


def homogeneous_sweep_makespan_ns(
    num_banks: int,
    acts_per_bank: int,
    gap_ns: float,
    timing: TimingParameters,
    *,
    tail_ns: float = 0.0,
) -> float | None:
    """Closed-form makespan of ``num_banks`` identical activation streams.

    Models the schedule ``merge_streams`` produces when every bank issues
    ``acts_per_bank`` activations spaced ``gap_ns`` apart (the homogeneous
    Row-Sweep pattern of balanced shard plans): the greedy merge serves
    banks in *waves* — the smallest rotation whose cycle hides the
    per-bank gap runs at the tRRD/tFAW rate until it drains, then the
    next wave starts, and a final undersized wave is gap-bound, one cycle
    per ``gap_ns``.  ``tail_ns`` is per-bank occupancy after the final
    activation (the trailing precharge of GSA/GMC sweeps).

    Returns ``None`` when the parameters fall outside the wave model
    (e.g. a leftover wave too small for a clean tFAW pattern) — callers
    fall back to the event-driven merge.  Within the model the value
    matches the reference merge in real arithmetic; floating-point
    results may differ in the last ulps because this function multiplies
    where the merge accumulates.
    """
    if num_banks <= 0 or acts_per_bank <= 0:
        return 0.0 if acts_per_bank <= 0 else None
    if gap_ns < 0 or tail_ns < 0:
        return None
    rate = max(timing.clock_ns, timing.t_rrd)
    t_faw = timing.t_faw
    if rate <= 0:
        return None

    # Smallest rotation whose cycle time covers the per-bank gap.
    wave = 1
    while wave <= num_banks and _chain_time_ns(wave, rate, t_faw) < gap_ns:
        wave += 1
    if wave <= num_banks:
        full_waves, leftover = divmod(num_banks, wave)
    else:
        full_waves, leftover = 0, num_banks

    chain_acts = full_waves * wave * acts_per_bank
    if leftover == 0:
        last_act = _chain_time_ns(chain_acts - 1, rate, t_faw)
        return last_act + gap_ns + tail_ns

    if t_faw > 0 and leftover < 4:
        # A cycle shorter than a tFAW window interleaves gap and window
        # constraints in ways the wave model does not capture.
        return None

    # The leftover wave's first cycle continues the activation chain of
    # the full waves; replay it (and a second cycle) with the carried
    # tFAW window to anchor the steady per-cycle offsets.
    history: deque[float] = deque(maxlen=4)
    if chain_acts:
        for back in range(min(4, chain_acts), 0, -1):
            history.append(_chain_time_ns(chain_acts - back, rate, t_faw))
    first_cycle: list[float] = []
    for _ in range(leftover):
        candidate = history[-1] + rate if history else 0.0
        if t_faw > 0 and len(history) == 4:
            candidate = max(candidate, history[0] + t_faw)
        first_cycle.append(candidate)
        history.append(candidate)
    # Steady state: every later cycle repeats the first at +gap_ns.  If
    # the second cycle's constraints disagree (the tFAW window or the
    # rotation still bind across the cycle boundary), the wave model does
    # not apply.
    if acts_per_bank > 1:
        for position in range(leftover):
            expected = first_cycle[position] + gap_ns
            candidate = history[-1] + rate
            if t_faw > 0 and len(history) == 4:
                candidate = max(candidate, history[0] + t_faw)
            if candidate > expected:
                return None
            history.append(expected)
    last_act = first_cycle[-1] + (acts_per_bank - 1) * gap_ns
    return last_act + gap_ns + tail_ns

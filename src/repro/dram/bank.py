"""Functional model of a DRAM bank.

A bank is a collection of subarrays that share a global row decoder and a
global row buffer (Figure 1c).  With MASA/SALP, multiple subarrays in the
same bank can have rows open simultaneously; the bank therefore delegates
open-row state to its subarrays and only enforces per-bank constraints
(subarray index ranges and global-buffer arbitration).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.dram.geometry import DRAMGeometry
from repro.dram.subarray import Subarray
from repro.errors import ConfigurationError

__all__ = ["Bank"]


class Bank:
    """A DRAM bank: ``subarrays_per_bank`` independent subarrays."""

    def __init__(self, geometry: DRAMGeometry, index: int = 0) -> None:
        self.geometry = geometry
        self.index = index
        self.subarrays = [
            Subarray(geometry, index=i) for i in range(geometry.subarrays_per_bank)
        ]

    def __iter__(self) -> Iterator[Subarray]:
        return iter(self.subarrays)

    def __len__(self) -> int:
        return len(self.subarrays)

    def subarray(self, index: int) -> Subarray:
        """Return the subarray with the given index."""
        if not 0 <= index < len(self.subarrays):
            raise ConfigurationError(
                f"subarray {index} out of range [0, {len(self.subarrays)})"
            )
        return self.subarrays[index]

    @property
    def open_subarrays(self) -> list[int]:
        """Indices of subarrays that currently have an open row (SALP)."""
        return [s.index for s in self.subarrays if not s.is_precharged]

    def precharge_all(self) -> None:
        """Precharge every subarray in the bank."""
        for subarray in self.subarrays:
            subarray.precharge()

    # ------------------------------------------------------------------ #
    # Row-level convenience accessors (activate + read/write + precharge)
    # ------------------------------------------------------------------ #
    def read_row(self, subarray: int, row: int) -> np.ndarray:
        """Activate, read, and precharge a row (a full RD access)."""
        target = self.subarray(subarray)
        data = target.activate(row)
        target.precharge()
        return data

    def write_row(self, subarray: int, row: int, data: np.ndarray) -> None:
        """Activate, overwrite, and precharge a row (a full WR access)."""
        target = self.subarray(subarray)
        target.activate(row)
        target.write_buffer(np.asarray(data, dtype=np.uint8))
        target.precharge()

    @property
    def total_activations(self) -> int:
        """Sum of activation counts across all subarrays."""
        return sum(s.activation_count for s in self.subarrays)

"""DRAM command primitives and command traces.

The paper's simulator "estimates the performance of pLUTo operations by
parsing the sequence of memory commands required to perform them and
enforcing the memory's timing parameters" (Section 7.1).  This module
provides the command vocabulary and a :class:`CommandTrace` accumulator
that turns a command sequence into latency and energy totals.

Commands include both standard DDR commands (ACT, PRE, RD, WR, REF) and the
PuM extensions this reproduction models: triple-row activation (Ambit),
LISA row-buffer movement, DRISA shifts, and the pLUTo Row Sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.dram.energy import EnergyParameters
from repro.dram.timing import TimingParameters

__all__ = ["CommandType", "Command", "CommandTrace"]


class CommandType(enum.Enum):
    """DRAM and PuM command types used by the simulator."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    REF = "REF"
    #: Ambit triple-row activation (AAP primitive building block).
    TRA = "TRA"
    #: RowClone-FPM intra-subarray copy (ACT-ACT).
    ROWCLONE = "ROWCLONE"
    #: LISA row-buffer movement between neighbouring subarrays.
    LISA_RBM = "LISA_RBM"
    #: DRISA intra-row shift (one ACT-ACT-PRE sequence).
    SHIFT = "SHIFT"
    #: pLUTo Row Sweep (successive activation of N consecutive rows).
    ROW_SWEEP = "ROW_SWEEP"


@dataclass(frozen=True)
class Command:
    """One DRAM command issued by a controller.

    ``rows`` carries the sweep length for ``ROW_SWEEP`` commands and is 1
    for ordinary commands.  ``meta`` is a free-form annotation used by the
    higher layers (e.g. which ISA instruction generated the command).
    """

    kind: CommandType
    bank: int = 0
    subarray: int = 0
    row: int = 0
    rows: int = 1
    meta: str = ""


@dataclass
class CommandTrace:
    """An ordered command sequence with latency/energy accounting.

    The trace applies the design-specific cost model for pLUTo Row Sweeps:
    the caller records sweeps through :meth:`add_row_sweep` with an explicit
    per-design latency/energy, while standard commands use the timing and
    energy parameter objects directly.
    """

    timing: TimingParameters
    energy: EnergyParameters
    commands: list[Command] = field(default_factory=list)
    total_latency_ns: float = 0.0
    total_energy_nj: float = 0.0

    def __len__(self) -> int:
        return len(self.commands)

    def __iter__(self) -> Iterator[Command]:
        return iter(self.commands)

    # ------------------------------------------------------------------ #
    # Standard DDR commands
    # ------------------------------------------------------------------ #
    def add(
        self,
        kind: CommandType,
        *,
        bank: int = 0,
        subarray: int = 0,
        row: int = 0,
        rows: int = 1,
        meta: str = "",
        latency_ns: Optional[float] = None,
        energy_nj: Optional[float] = None,
    ) -> Command:
        """Append a command, using default per-type costs unless overridden."""
        command = Command(kind, bank, subarray, row, rows, meta)
        self.commands.append(command)
        if latency_ns is None:
            latency_ns = self._default_latency(command)
        if energy_nj is None:
            energy_nj = self._default_energy(command)
        self.total_latency_ns += latency_ns
        self.total_energy_nj += energy_nj
        return command

    def extend(self, commands: Iterable[Command]) -> None:
        """Append pre-built commands using default costs."""
        for command in commands:
            self.add(
                command.kind,
                bank=command.bank,
                subarray=command.subarray,
                row=command.row,
                rows=command.rows,
                meta=command.meta,
            )

    def add_activate(self, bank: int = 0, subarray: int = 0, row: int = 0) -> Command:
        """Append an ACT command."""
        return self.add(CommandType.ACT, bank=bank, subarray=subarray, row=row)

    def add_precharge(self, bank: int = 0, subarray: int = 0) -> Command:
        """Append a PRE command."""
        return self.add(CommandType.PRE, bank=bank, subarray=subarray)

    def add_read(self, bank: int = 0, subarray: int = 0, row: int = 0) -> Command:
        """Append a column read burst."""
        return self.add(CommandType.RD, bank=bank, subarray=subarray, row=row)

    def add_write(self, bank: int = 0, subarray: int = 0, row: int = 0) -> Command:
        """Append a column write burst."""
        return self.add(CommandType.WR, bank=bank, subarray=subarray, row=row)

    def add_row_sweep(
        self,
        latency_ns: float,
        energy_nj: float,
        *,
        bank: int = 0,
        subarray: int = 0,
        rows: int = 1,
        meta: str = "",
    ) -> Command:
        """Append a pLUTo Row Sweep with design-specific cost."""
        return self.add(
            CommandType.ROW_SWEEP,
            bank=bank,
            subarray=subarray,
            rows=rows,
            meta=meta,
            latency_ns=latency_ns,
            energy_nj=energy_nj,
        )

    # ------------------------------------------------------------------ #
    # Default cost model
    # ------------------------------------------------------------------ #
    def _default_latency(self, command: Command) -> float:
        timing = self.timing
        if command.kind is CommandType.ACT:
            return timing.t_rcd
        if command.kind is CommandType.PRE:
            return timing.t_rp
        if command.kind is CommandType.RD:
            return timing.t_cl + timing.t_burst
        if command.kind is CommandType.WR:
            return timing.t_cl + timing.t_burst
        if command.kind is CommandType.REF:
            return timing.t_rfc
        if command.kind is CommandType.TRA:
            # Ambit AAP: ACT-ACT-PRE sequence.
            return 2 * timing.t_rcd + timing.t_rp
        if command.kind is CommandType.ROWCLONE:
            # RowClone-FPM: ACT-ACT-PRE.
            return 2 * timing.t_rcd + timing.t_rp
        if command.kind is CommandType.LISA_RBM:
            # One activation plus the row-buffer link latency (~ tRCD + tRP).
            return timing.t_rcd + timing.t_rp
        if command.kind is CommandType.SHIFT:
            # DRISA shift: one ACT-ACT-PRE command sequence.
            return 2 * timing.t_rcd + timing.t_rp
        if command.kind is CommandType.ROW_SWEEP:
            # Default to the BSA cost; designs normally override this.
            return (timing.t_rcd + timing.t_rp) * command.rows
        raise ValueError(f"unknown command type {command.kind}")

    def _default_energy(self, command: Command) -> float:
        energy = self.energy
        if command.kind is CommandType.ACT:
            return energy.e_act
        if command.kind is CommandType.PRE:
            return energy.e_pre
        if command.kind is CommandType.RD:
            return energy.e_rd
        if command.kind is CommandType.WR:
            return energy.e_wr
        if command.kind is CommandType.REF:
            return energy.e_act + energy.e_pre
        if command.kind is CommandType.TRA:
            return 2 * energy.e_act + energy.e_pre
        if command.kind is CommandType.ROWCLONE:
            return 2 * energy.e_act + energy.e_pre
        if command.kind is CommandType.LISA_RBM:
            return energy.e_lisa_rbm
        if command.kind is CommandType.SHIFT:
            return 2 * energy.e_act + energy.e_pre
        if command.kind is CommandType.ROW_SWEEP:
            return (energy.e_act + energy.e_pre) * command.rows
        raise ValueError(f"unknown command type {command.kind}")

    # ------------------------------------------------------------------ #
    # Reporting helpers
    # ------------------------------------------------------------------ #
    def count(self, kind: CommandType) -> int:
        """Number of commands of the given type in the trace."""
        return sum(1 for command in self.commands if command.kind is kind)

    def merge(self, other: "CommandTrace") -> None:
        """Fold another trace's commands and totals into this one."""
        self.commands.extend(other.commands)
        self.total_latency_ns += other.total_latency_ns
        self.total_energy_nj += other.total_energy_nj

"""DRAM energy parameters.

The paper derives per-command energies from CACTI 7 DDR4 and HMC models;
we encode representative published values (in nanojoules per command for a
whole row / column access) and expose the same quantities the analytical
model consumes: activation energy (``e_act``), precharge energy
(``e_pre``), LISA row-buffer-movement energy (``e_lisa_rbm``), and column
read/write energies.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["EnergyParameters", "DDR4_ENERGY", "HMC_ENERGY"]


@dataclass(frozen=True)
class EnergyParameters:
    """Per-command DRAM energies (nanojoules).

    Attributes
    ----------
    e_act:
        Energy of one row activation (charge sharing + sensing + restore).
    e_pre:
        Energy of one precharge.
    e_rd:
        Energy of one column read burst (64 B over the channel).
    e_wr:
        Energy of one column write burst.
    e_lisa_rbm:
        Energy of one LISA row-buffer movement (inter-subarray row copy).
    e_io_per_byte:
        Off-chip I/O energy per byte moved over the memory channel.
    background_power_w:
        Background/static power of the device in watts (used for
        energy-over-time accounting of long-running workloads).
    """

    e_act: float = 2.77
    e_pre: float = 1.39
    e_rd: float = 1.69
    e_wr: float = 1.79
    e_lisa_rbm: float = 2.96
    e_io_per_byte: float = 0.039
    background_power_w: float = 0.45

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"energy parameter {name} must be >= 0")

    @property
    def e_act_pre(self) -> float:
        """Energy of one ACT + PRE pair (the paper's ``ERCD + ERP``)."""
        return self.e_act + self.e_pre


#: CACTI-7-derived DDR4 per-command energies (nJ).
DDR4_ENERGY = EnergyParameters()

#: HMC-like 3D-stacked energies: shorter bitlines and TSV I/O reduce both
#: array and I/O energy per command, but rows are 32x smaller (256 B vs 8 kB)
#: so per-bit activation energy is comparable.
HMC_ENERGY = EnergyParameters(
    e_act=0.30,
    e_pre=0.15,
    e_rd=0.21,
    e_wr=0.23,
    e_lisa_rbm=0.33,
    e_io_per_byte=0.008,
    background_power_w=0.35,
)

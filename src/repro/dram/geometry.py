"""DRAM organisation (geometry) descriptions.

A :class:`DRAMGeometry` captures the hierarchy of Figure 1: channel -> rank
-> bank group -> bank -> subarray -> row -> cell.  The two presets mirror
Table 3: an 8 GB DDR4 module with 8 kB rows and 512 rows per subarray, and
an HMC-like 3D-stacked device with 256 B rows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DRAMGeometry", "DDR4_8GB", "HMC_3DS_GEOMETRY"]


@dataclass(frozen=True)
class DRAMGeometry:
    """Static organisation of a DRAM device.

    Attributes
    ----------
    channels, ranks, bank_groups, banks_per_group:
        Interface-level hierarchy (Table 3 uses 1 channel, 1 rank, 4 bank
        groups with 4 banks each).
    subarrays_per_bank:
        Number of subarrays in each bank.
    rows_per_subarray:
        Number of DRAM rows (wordlines) per subarray.
    row_size_bytes:
        Size of one DRAM row (the local row buffer width).
    """

    channels: int = 1
    ranks: int = 1
    bank_groups: int = 4
    banks_per_group: int = 4
    subarrays_per_bank: int = 128
    rows_per_subarray: int = 512
    row_size_bytes: int = 8192

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value <= 0:
                raise ConfigurationError(f"geometry field {name} must be positive")

    @property
    def banks(self) -> int:
        """Total number of banks per rank."""
        return self.bank_groups * self.banks_per_group

    @property
    def total_banks(self) -> int:
        """Total number of banks in the device."""
        return self.channels * self.ranks * self.banks

    @property
    def total_subarrays(self) -> int:
        """Total number of subarrays in the device."""
        return self.total_banks * self.subarrays_per_bank

    @property
    def row_size_bits(self) -> int:
        """Row size in bits."""
        return self.row_size_bytes * 8

    @property
    def rows_per_bank(self) -> int:
        """Number of rows in one bank."""
        return self.subarrays_per_bank * self.rows_per_subarray

    @property
    def bank_capacity_bytes(self) -> int:
        """Capacity of one bank in bytes."""
        return self.rows_per_bank * self.row_size_bytes

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.total_banks * self.bank_capacity_bytes

    @property
    def capacity_gib(self) -> float:
        """Total device capacity in GiB."""
        return self.capacity_bytes / float(1 << 30)

    def elements_per_row(self, bit_width: int) -> int:
        """Number of ``bit_width``-bit elements that fit in one row."""
        if bit_width <= 0:
            raise ConfigurationError("bit width must be positive")
        return self.row_size_bits // bit_width

    def validate_row(self, subarray: int, row: int) -> None:
        """Raise :class:`ConfigurationError` if (subarray, row) is out of range."""
        if not 0 <= subarray < self.subarrays_per_bank:
            raise ConfigurationError(
                f"subarray {subarray} out of range [0, {self.subarrays_per_bank})"
            )
        if not 0 <= row < self.rows_per_subarray:
            raise ConfigurationError(
                f"row {row} out of range [0, {self.rows_per_subarray})"
            )


#: 8 GB DDR4 module (Table 3): 16 banks x 128 subarrays x 512 rows x 8 kB.
DDR4_8GB = DRAMGeometry()

#: HMC-like 3D-stacked geometry: many small subarrays with 256 B rows.
#: 16 banks (vault partitions) x 2048 subarrays x 512 rows x 256 B = 4 GiB,
#: matching the paper's "512 subarrays with 256 B row buffers" evaluation
#: granularity (512 subarrays are used per operation out of the total).
HMC_3DS_GEOMETRY = DRAMGeometry(
    channels=1,
    ranks=1,
    bank_groups=4,
    banks_per_group=4,
    subarrays_per_bank=2048,
    rows_per_subarray=512,
    row_size_bytes=256,
)

"""Functional model of a whole DRAM module.

The module composes banks, an address mapper, timing and energy parameter
sets, and exposes byte-addressed read/write used by the host-side parts of
the workloads (e.g. loading LUT query inputs, reading back results).
"""

from __future__ import annotations

import numpy as np

from repro.dram.address import AddressMapper, RowAddress
from repro.dram.bank import Bank
from repro.dram.energy import DDR4_ENERGY, EnergyParameters
from repro.dram.geometry import DDR4_8GB, DRAMGeometry
from repro.dram.timing import DDR4_2400, TimingParameters
from repro.errors import AddressError, ConfigurationError

__all__ = ["DRAMModule"]


class DRAMModule:
    """A functional DRAM module with timing/energy metadata attached."""

    def __init__(
        self,
        geometry: DRAMGeometry = DDR4_8GB,
        timing: TimingParameters = DDR4_2400,
        energy: EnergyParameters = DDR4_ENERGY,
        *,
        instantiate_banks: int | None = None,
    ) -> None:
        """Create a module.

        ``instantiate_banks`` limits how many banks get functional storage.
        The full 8 GB module would need 8 GB of host memory to model
        bit-accurately; workloads only ever touch a handful of banks, so by
        default only the first two banks are materialised and accesses to
        other banks raise :class:`AddressError`.
        """
        self.geometry = geometry
        self.timing = timing
        self.energy = energy
        self.mapper = AddressMapper(geometry)
        if instantiate_banks is None:
            instantiate_banks = min(2, geometry.total_banks)
        if not 1 <= instantiate_banks <= geometry.total_banks:
            raise ConfigurationError(
                f"instantiate_banks must be in [1, {geometry.total_banks}]"
            )
        self.banks = [Bank(geometry, index=i) for i in range(instantiate_banks)]

    # ------------------------------------------------------------------ #
    # Structure access
    # ------------------------------------------------------------------ #
    def bank(self, index: int) -> Bank:
        """Return a materialised bank."""
        if not 0 <= index < len(self.banks):
            raise AddressError(
                f"bank {index} is not materialised "
                f"(only {len(self.banks)} of {self.geometry.total_banks} banks "
                "are instantiated)"
            )
        return self.banks[index]

    def subarray(self, bank: int, subarray: int):
        """Return a subarray by (bank, subarray) coordinates."""
        return self.bank(bank).subarray(subarray)

    # ------------------------------------------------------------------ #
    # Row-level access by decoded address
    # ------------------------------------------------------------------ #
    def read_row(self, address: RowAddress) -> np.ndarray:
        """Read a full row (activate + read + precharge)."""
        return self.bank(address.bank).read_row(address.subarray, address.row)

    def write_row(self, address: RowAddress, data: np.ndarray) -> None:
        """Write a full row (activate + write + precharge)."""
        self.bank(address.bank).write_row(address.subarray, address.row, data)

    # ------------------------------------------------------------------ #
    # Byte-addressed access (host view)
    # ------------------------------------------------------------------ #
    def read_bytes(self, byte_address: int, length: int) -> np.ndarray:
        """Read ``length`` bytes starting at a physical byte address."""
        if length < 0:
            raise AddressError("length must be non-negative")
        out = np.zeros(length, dtype=np.uint8)
        cursor = 0
        while cursor < length:
            row_address, column = self.mapper.decode_byte(byte_address + cursor)
            row = self.read_row(row_address)
            chunk = min(length - cursor, self.geometry.row_size_bytes - column)
            out[cursor : cursor + chunk] = row[column : column + chunk]
            cursor += chunk
        return out

    def write_bytes(self, byte_address: int, data: np.ndarray) -> None:
        """Write bytes starting at a physical byte address."""
        data = np.asarray(data, dtype=np.uint8)
        cursor = 0
        while cursor < data.size:
            row_address, column = self.mapper.decode_byte(byte_address + cursor)
            bank = self.bank(row_address.bank)
            target = bank.subarray(row_address.subarray)
            row = target.peek_row(row_address.row)
            chunk = min(data.size - cursor, self.geometry.row_size_bytes - column)
            row[column : column + chunk] = data[cursor : cursor + chunk]
            target.load_row(row_address.row, row)
            cursor += chunk

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    @property
    def total_activations(self) -> int:
        """Total activation count across all materialised banks."""
        return sum(bank.total_activations for bank in self.banks)

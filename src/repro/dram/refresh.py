"""DRAM refresh overhead model.

pLUTo's Row Sweep reuses the self-refresh row-stepping machinery already
present in commodity DRAM (Section 5.1.1).  This module models the ordinary
refresh duty cycle so end-to-end workload times can optionally account for
the bandwidth lost to refresh, and provides the row-stepping abstraction the
pLUTo-enabled row decoder builds on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError

__all__ = ["RefreshModel", "RowStepper"]


@dataclass(frozen=True)
class RefreshModel:
    """Refresh duty-cycle model based on tREFI/tRFC."""

    timing: TimingParameters

    @property
    def overhead_fraction(self) -> float:
        """Fraction of time the device is unavailable due to refresh."""
        if self.timing.t_refi <= 0:
            return 0.0
        return min(1.0, self.timing.t_rfc / self.timing.t_refi)

    def inflate_latency(self, latency_ns: float) -> float:
        """Scale a latency to account for refresh stalls."""
        if latency_ns < 0:
            raise ConfigurationError("latency must be non-negative")
        available = 1.0 - self.overhead_fraction
        if available <= 0:
            raise ConfigurationError("refresh overhead leaves no usable time")
        return latency_ns / available

    def refreshes_during(self, latency_ns: float) -> int:
        """Number of refresh commands that fall within a duration."""
        if self.timing.t_refi <= 0:
            return 0
        return int(latency_ns // self.timing.t_refi)


class RowStepper:
    """Successive-row activation order generator.

    Commodity DRAM steps through rows during self-refresh; the pLUTo Row
    Sweep extends this to activate ``count`` consecutive rows starting at a
    base row.  The stepper produces that order and guards against walking
    off the end of the subarray.
    """

    def __init__(self, rows_per_subarray: int) -> None:
        if rows_per_subarray <= 0:
            raise ConfigurationError("rows_per_subarray must be positive")
        self.rows_per_subarray = rows_per_subarray

    def sweep_order(self, start_row: int, count: int) -> list[int]:
        """Return the ordered list of row indices for a sweep."""
        if count <= 0:
            raise ConfigurationError("sweep count must be positive")
        if start_row < 0 or start_row + count > self.rows_per_subarray:
            raise ConfigurationError(
                f"sweep [{start_row}, {start_row + count}) exceeds subarray of "
                f"{self.rows_per_subarray} rows"
            )
        return list(range(start_row, start_row + count))

"""Timing-aware DRAM command scheduler.

The scheduler turns a stream of DRAM commands into issue timestamps while
enforcing the timing constraints that matter for pLUTo:

* ``tRCD`` / ``tRP`` / ``tRAS`` intra-bank sequencing,
* ``tRRD`` between activations to different banks,
* ``tFAW`` — at most four activations per rank within a sliding window,
  which Section 8.7 identifies as the key throttle on activation-heavy
  PuM mechanisms,
* ``tCCD_L`` / ``tCCD_S`` between column accesses to the same / different
  bank groups, so hierarchical merges see DDR4's bank-group asymmetry.

It is intentionally simpler than a full DDR protocol engine (one scheduler
instance models one rank; the hierarchical dispatcher composes ranks and
channels above it) because that is the fidelity level of the paper's own
simulator: command sequences plus timing-parameter enforcement.

:meth:`CommandScheduler.merge_streams` is the *reference* merge.  The
dispatch layers route makespan queries through
:mod:`repro.dram.analytic`, which memoizes results on the streams'
structural signature and replays the same greedy schedule with a priority
queue (bit-identical, much faster); this class stays the semantic oracle.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Sequence

from repro.dram.commands import Command, CommandType
from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError, TimingViolationError

__all__ = [
    "ScheduledCommand",
    "CommandScheduler",
    "activation_count",
    "tfaw_lower_bound_ns",
]


def activation_count(command: Command) -> int:
    """Number of row activations one command contributes to the tFAW window.

    A ``ROW_SWEEP`` activates one row per LUT entry; the compound PuM
    commands (TRA / ROWCLONE / SHIFT) are ACT-ACT-PRE sequences with two
    activations; a LISA row-buffer move is one linked activation per row it
    carries.  RD/WR/PRE/REF do not open new rows.  This is the
    design-independent floor: pLUTo-GSA's destructive-read reloads add a
    second activation per swept row on top of it (``sweep_acts_per_row``
    on the scheduler).
    """
    if command.kind is CommandType.ROW_SWEEP:
        return command.rows
    if command.kind in (CommandType.TRA, CommandType.ROWCLONE, CommandType.SHIFT):
        return 2
    if command.kind is CommandType.LISA_RBM:
        return command.rows
    if command.kind is CommandType.ACT:
        return 1
    return 0


def tfaw_lower_bound_ns(activations: int, timing: TimingParameters) -> float:
    """Minimum time a rank needs to issue ``activations`` row activations.

    tFAW admits at most four activations per sliding window, so the first
    activation of every later group of four must wait a full ``t_faw``
    after the first activation of the group four before it.  This is the
    scheduler-independent floor any bank-parallel schedule must respect.
    """
    if activations <= 4 or timing.t_faw <= 0:
        return 0.0
    return ((activations - 1) // 4) * timing.t_faw


@dataclass(frozen=True)
class ScheduledCommand:
    """A command together with the time at which it was issued."""

    command: Command
    issue_time_ns: float


@dataclass
class _BankState:
    """Per-bank protocol state tracked by the scheduler."""

    open_row: int | None = None
    last_act_ns: float = float("-inf")
    last_pre_ns: float = float("-inf")
    ready_ns: float = 0.0


class CommandScheduler:
    """Assigns issue times to DRAM commands under timing constraints."""

    def __init__(
        self,
        timing: TimingParameters,
        *,
        num_banks: int = 16,
        banks_per_group: int | None = None,
        sweep_act_interval_ns: float | None = None,
        sweep_tail_ns: float = 0.0,
        sweep_acts_per_row: int = 1,
        lisa_hop_ns: float | None = None,
    ) -> None:
        self.timing = timing
        self.num_banks = num_banks
        #: Banks per bank group: maps a bank id to the bank group whose
        #: shared column circuitry sets the tCCD_L/tCCD_S spacing.  ``None``
        #: keeps the DDR4 default of four banks per group.
        if banks_per_group is None:
            banks_per_group = 4
        if banks_per_group <= 0:
            raise ConfigurationError("banks_per_group must be positive")
        self.banks_per_group = banks_per_group
        #: ACT-to-ACT spacing inside a Row Sweep.  Defaults to the
        #: conservative BSA ACT+PRE cycle; the dispatcher passes the
        #: design-specific spacing (e.g. tRCD only for pLUTo-GMC, whose
        #: sweeps precharge once at the end).
        self.sweep_act_interval_ns = (
            sweep_act_interval_ns
            if sweep_act_interval_ns is not None
            else timing.t_rcd + timing.t_rp
        )
        #: Bank occupancy after a Row Sweep's last activation (the single
        #: trailing precharge of the GSA/GMC sweeps; zero for BSA, whose
        #: per-row spacing already includes the precharge).
        self.sweep_tail_ns = sweep_tail_ns
        #: Activations per swept row.  pLUTo-GSA's destructive reads add a
        #: LISA reload activation before every sweep activation, doubling
        #: the pressure each row puts on the tRRD/tFAW window.
        if sweep_acts_per_row < 1:
            raise ConfigurationError("sweep_acts_per_row must be >= 1")
        self.sweep_acts_per_row = sweep_acts_per_row
        #: Latency of one LISA row-buffer hop.  Defaults to the linked
        #: activate cost (tRCD + tRP); pass the engine cost model's
        #: ``lisa_hop_latency_ns`` so makespans agree with the trace when
        #: a custom hop latency is configured.
        self.lisa_hop_ns = (
            lisa_hop_ns if lisa_hop_ns is not None else timing.t_rcd + timing.t_rp
        )
        self._banks: dict[int, _BankState] = {
            bank: _BankState() for bank in range(num_banks)
        }
        self._recent_acts: deque[float] = deque()
        self._last_act_any_bank_ns: float = float("-inf")
        #: Start time and bank group of the last column access (RD/WR) on
        #: this rank, for tCCD_L/tCCD_S start-to-start spacing.
        self._last_col_ns: float = float("-inf")
        self._last_col_group: int | None = None
        #: Time the command bus is next free (one clock per command).
        self._bus_free_ns: float = 0.0
        self.now_ns: float = 0.0
        self.schedule: list[ScheduledCommand] = []

    def bank_group_of(self, bank: int) -> int:
        """Bank group a bank id belongs to."""
        return bank // self.banks_per_group

    def _earliest_col_time(self, bank: int, lower_bound: float) -> float:
        """Earliest legal start of a column access on ``bank``."""
        if self._last_col_group is None:
            return lower_bound
        spacing = (
            self.timing.t_ccd_l
            if self.bank_group_of(bank) == self._last_col_group
            else self.timing.t_ccd_s
        )
        return max(lower_bound, self._last_col_ns + spacing)

    def _record_col(self, bank: int, time_ns: float) -> None:
        self._last_col_ns = time_ns
        self._last_col_group = self.bank_group_of(bank)

    # ------------------------------------------------------------------ #
    # Issue logic
    # ------------------------------------------------------------------ #
    def issue(self, command: Command) -> ScheduledCommand:
        """Issue one command at the earliest legal time and return it."""
        if command.bank not in self._banks:
            raise TimingViolationError(
                f"bank {command.bank} outside scheduler range [0, {self.num_banks})"
            )
        if command.kind is CommandType.ACT:
            issue_time = self._issue_activate(command)
        elif command.kind is CommandType.ROW_SWEEP:
            issue_time = self._issue_row_sweep(command)
        elif command.kind is CommandType.PRE:
            issue_time = self._issue_precharge(command)
        else:
            issue_time = self._issue_simple(command)
        scheduled = ScheduledCommand(command=command, issue_time_ns=issue_time)
        self.schedule.append(scheduled)
        return scheduled

    def issue_all(self, commands: list[Command]) -> list[ScheduledCommand]:
        """Issue a sequence of commands in order."""
        return [self.issue(command) for command in commands]

    # ------------------------------------------------------------------ #
    # Multi-stream (bank-parallel) merging
    # ------------------------------------------------------------------ #
    def merge_streams(self, streams: "Sequence[Sequence[Command]]") -> float:
        """Makespan of concurrent per-bank command streams.

        Each stream is an ordered command sequence bound to the banks its
        commands name; streams that share a bank are concatenated (they
        run back to back).  Unlike :meth:`issue` — which schedules one
        whole command at a time — this interleaves the streams at
        *activation* granularity: at every step the bank whose next
        activation can legally issue earliest (per-bank spacing, command
        bus, tRRD, tFAW) fires first, which is how a real rank overlaps
        Row Sweeps across banks.  Returns the completion time of the last
        event; the scheduler instance must be fresh (nothing issued yet).
        """
        if self.schedule or self._recent_acts or self.now_ns:
            raise TimingViolationError(
                "merge_streams needs a fresh scheduler; this instance has "
                "already issued commands"
            )
        queues: dict[int, deque[tuple[str, float]]] = {}
        for stream in streams:
            for command in stream:
                if command.bank not in self._banks:
                    raise TimingViolationError(
                        f"bank {command.bank} outside scheduler range "
                        f"[0, {self.num_banks})"
                    )
                queue = queues.setdefault(command.bank, deque())
                queue.extend(self.events_of(command))

        cursors = {bank: 0.0 for bank in queues}
        makespan = 0.0
        while queues:
            # Non-activation occupancy advances its bank without touching
            # the rank-global activation constraints; column accesses
            # additionally respect the bank-group tCCD_L/tCCD_S spacing.
            for bank in list(queues):
                queue = queues[bank]
                while queue and queue[0][0] != "act":
                    kind, duration = queue.popleft()
                    if kind == "col":
                        start = self._earliest_col_time(
                            bank, max(cursors[bank], self._bus_free_ns)
                        )
                        self._record_col(bank, start)
                        self._bus_free_ns = max(
                            self._bus_free_ns, start + self.timing.clock_ns
                        )
                        cursors[bank] = start + duration
                    else:
                        cursors[bank] += duration
                    makespan = max(makespan, cursors[bank])
                if not queue:
                    del queues[bank]
            if not queues:
                break
            best_bank = -1
            best_time = float("inf")
            for bank in queues:
                candidate = max(cursors[bank], self._bus_free_ns)
                if self.timing.t_rrd > 0:
                    candidate = max(
                        candidate, self._last_act_any_bank_ns + self.timing.t_rrd
                    )
                if self.timing.t_faw > 0 and len(self._recent_acts) >= 4:
                    candidate = max(
                        candidate, self._recent_acts[-4] + self.timing.t_faw
                    )
                if candidate < best_time:
                    best_time = candidate
                    best_bank = bank
            _, gap_after = queues[best_bank].popleft()
            self._record_act(best_time)
            cursors[best_bank] = best_time + gap_after
            makespan = max(makespan, cursors[best_bank])
        self.now_ns = max(self.now_ns, makespan)
        return makespan

    def events_of(self, command: Command) -> "list[tuple[str, float]]":
        """Decompose a command into activation / bus-occupancy events.

        ``("act", gap)`` is one row activation followed by ``gap`` ns of
        intra-bank spacing before the bank's next event; ``("busy", d)``
        occupies the bank for ``d`` ns without activating a row;
        ``("col", d)`` is a column access that additionally respects the
        bank-group tCCD_L/tCCD_S start-to-start spacing.  Public so the
        analytic fast paths (:mod:`repro.dram.analytic`) decompose
        commands identically to this merge.
        """
        timing = self.timing
        if command.kind is CommandType.ROW_SWEEP:
            sub_interval = self.sweep_act_interval_ns / self.sweep_acts_per_row
            events = [("act", sub_interval)] * (
                command.rows * self.sweep_acts_per_row
            )
            if self.sweep_tail_ns > 0:
                events.append(("busy", self.sweep_tail_ns))
            return events
        if command.kind is CommandType.LISA_RBM:
            return [("act", self.lisa_hop_ns)] * command.rows
        if command.kind in (
            CommandType.TRA,
            CommandType.ROWCLONE,
            CommandType.SHIFT,
        ):
            # ACT-ACT-PRE: two linked activations then a precharge.
            return [("act", timing.t_rcd), ("act", timing.t_rcd + timing.t_rp)]
        if command.kind is CommandType.ACT:
            return [("act", timing.t_rcd)]
        if command.kind is CommandType.PRE:
            return [("busy", timing.t_rp)]
        if command.kind in (CommandType.RD, CommandType.WR):
            return [("col", timing.t_cl + timing.t_burst)]
        if command.kind is CommandType.REF:
            return [("busy", timing.t_rfc)]
        raise TimingViolationError(f"unsupported command type {command.kind}")

    @property
    def elapsed_ns(self) -> float:
        """Total elapsed time after the last issued command completes."""
        return self.now_ns

    # ------------------------------------------------------------------ #
    # Per-type issue rules
    # ------------------------------------------------------------------ #
    def _earliest_act_time(self, bank: _BankState) -> float:
        candidates = [self._bus_free_ns, bank.ready_ns]
        # tRRD with respect to the last ACT on any bank.
        candidates.append(self._last_act_any_bank_ns + self.timing.t_rrd)
        # tFAW: the 5th activation in a window must wait.
        if self.timing.t_faw > 0 and len(self._recent_acts) >= 4:
            candidates.append(self._recent_acts[-4] + self.timing.t_faw)
        return max(candidates)

    def _record_act(self, time_ns: float) -> None:
        self._recent_acts.append(time_ns)
        if len(self._recent_acts) > 16:
            self._recent_acts.popleft()
        self._last_act_any_bank_ns = time_ns
        self._bus_free_ns = max(self._bus_free_ns, time_ns + self.timing.clock_ns)

    def _issue_activate(self, command: Command) -> float:
        bank = self._banks[command.bank]
        if bank.open_row is not None:
            raise TimingViolationError(
                f"bank {command.bank}: ACT to row {command.row} while row "
                f"{bank.open_row} is open"
            )
        issue_time = self._earliest_act_time(bank)
        self._record_act(issue_time)
        bank.open_row = command.row
        bank.last_act_ns = issue_time
        bank.ready_ns = issue_time + self.timing.t_rcd
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

    def _issue_precharge(self, command: Command) -> float:
        bank = self._banks[command.bank]
        issue_time = max(self._bus_free_ns, bank.ready_ns)
        if bank.open_row is not None:
            # Enforce tRAS from the opening ACT.
            issue_time = max(issue_time, bank.last_act_ns + self.timing.t_ras)
        bank.open_row = None
        bank.last_pre_ns = issue_time
        bank.ready_ns = issue_time + self.timing.t_rp
        self._bus_free_ns = max(self._bus_free_ns, issue_time + self.timing.clock_ns)
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

    def _issue_row_sweep(self, command: Command) -> float:
        """A Row Sweep is modelled as ``rows`` back-to-back activations.

        Each activation inside the sweep is subject to tFAW; the per-design
        ACT spacing (with or without interleaved precharges) comes from
        ``sweep_act_interval_ns``, which defaults to the conservative BSA
        ACT+PRE cycle so scheduler-level tFAW studies have a well-defined
        baseline.
        """
        bank = self._banks[command.bank]
        if bank.open_row is not None:
            raise TimingViolationError(
                f"bank {command.bank}: ROW_SWEEP while row {bank.open_row} is open"
            )
        start = self._earliest_act_time(bank)
        time_cursor = start
        sub_interval = self.sweep_act_interval_ns / self.sweep_acts_per_row
        for _ in range(command.rows * self.sweep_acts_per_row):
            time_cursor = max(time_cursor, self._earliest_act_time(bank))
            self._record_act(time_cursor)
            time_cursor += sub_interval
        time_cursor += self.sweep_tail_ns
        bank.ready_ns = time_cursor
        self.now_ns = max(self.now_ns, time_cursor)
        return start

    def _issue_lisa(self, command: Command) -> float:
        """LISA row-buffer movement: one linked activation per row moved.

        LUT loads carry the row count of the table they stream into the
        subarray; every hop's activation is individually subject to the
        rank-level tRRD/tFAW constraints, like the activations of a Row
        Sweep.
        """
        bank = self._banks[command.bank]
        start = self._earliest_act_time(bank)
        time_cursor = start
        for _ in range(command.rows):
            time_cursor = max(time_cursor, self._earliest_act_time(bank))
            self._record_act(time_cursor)
            time_cursor += self.lisa_hop_ns
        bank.ready_ns = time_cursor
        self.now_ns = max(self.now_ns, time_cursor)
        return start

    def _issue_simple(self, command: Command) -> float:
        bank = self._banks[command.bank]
        if command.kind is CommandType.LISA_RBM:
            return self._issue_lisa(command)
        issue_time = max(self._bus_free_ns, bank.ready_ns)
        if command.kind in (CommandType.RD, CommandType.WR):
            if bank.open_row is None:
                raise TimingViolationError(
                    f"bank {command.bank}: {command.kind.value} with no open row"
                )
            issue_time = self._earliest_col_time(command.bank, issue_time)
            self._record_col(command.bank, issue_time)
            duration = self.timing.t_cl + self.timing.t_burst
        elif command.kind is CommandType.REF:
            duration = self.timing.t_rfc
        elif command.kind in (
            CommandType.TRA,
            CommandType.ROWCLONE,
            CommandType.SHIFT,
        ):
            # ACT-ACT-PRE: the opening activation obeys tRRD/tFAW; the
            # linked second activation follows one tRCD later.
            issue_time = self._earliest_act_time(bank)
            duration = 2 * self.timing.t_rcd + self.timing.t_rp
            self._record_act(issue_time)
            self._record_act(issue_time + self.timing.t_rcd)
        else:
            raise TimingViolationError(f"unsupported command type {command.kind}")
        bank.ready_ns = issue_time + duration
        self._bus_free_ns = max(self._bus_free_ns, issue_time + self.timing.clock_ns)
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

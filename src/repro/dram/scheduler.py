"""Timing-aware DRAM command scheduler.

The scheduler turns a stream of DRAM commands into issue timestamps while
enforcing the timing constraints that matter for pLUTo:

* ``tRCD`` / ``tRP`` / ``tRAS`` intra-bank sequencing,
* ``tRRD`` between activations to different banks,
* ``tFAW`` — at most four activations per rank within a sliding window,
  which Section 8.7 identifies as the key throttle on activation-heavy
  PuM mechanisms.

It is intentionally simpler than a full DDR protocol engine (no command bus
contention, single rank) because that is the fidelity level of the paper's
own simulator: command sequences plus timing-parameter enforcement.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.dram.commands import Command, CommandType
from repro.dram.timing import TimingParameters
from repro.errors import TimingViolationError

__all__ = ["ScheduledCommand", "CommandScheduler"]


@dataclass(frozen=True)
class ScheduledCommand:
    """A command together with the time at which it was issued."""

    command: Command
    issue_time_ns: float


@dataclass
class _BankState:
    """Per-bank protocol state tracked by the scheduler."""

    open_row: int | None = None
    last_act_ns: float = float("-inf")
    last_pre_ns: float = float("-inf")
    ready_ns: float = 0.0


class CommandScheduler:
    """Assigns issue times to DRAM commands under timing constraints."""

    def __init__(self, timing: TimingParameters, *, num_banks: int = 16) -> None:
        self.timing = timing
        self.num_banks = num_banks
        self._banks: dict[int, _BankState] = {
            bank: _BankState() for bank in range(num_banks)
        }
        self._recent_acts: deque[float] = deque()
        self._last_act_any_bank_ns: float = float("-inf")
        #: Time the command bus is next free (one clock per command).
        self._bus_free_ns: float = 0.0
        self.now_ns: float = 0.0
        self.schedule: list[ScheduledCommand] = []

    # ------------------------------------------------------------------ #
    # Issue logic
    # ------------------------------------------------------------------ #
    def issue(self, command: Command) -> ScheduledCommand:
        """Issue one command at the earliest legal time and return it."""
        if command.bank not in self._banks:
            raise TimingViolationError(
                f"bank {command.bank} outside scheduler range [0, {self.num_banks})"
            )
        if command.kind is CommandType.ACT:
            issue_time = self._issue_activate(command)
        elif command.kind is CommandType.ROW_SWEEP:
            issue_time = self._issue_row_sweep(command)
        elif command.kind is CommandType.PRE:
            issue_time = self._issue_precharge(command)
        else:
            issue_time = self._issue_simple(command)
        scheduled = ScheduledCommand(command=command, issue_time_ns=issue_time)
        self.schedule.append(scheduled)
        return scheduled

    def issue_all(self, commands: list[Command]) -> list[ScheduledCommand]:
        """Issue a sequence of commands in order."""
        return [self.issue(command) for command in commands]

    @property
    def elapsed_ns(self) -> float:
        """Total elapsed time after the last issued command completes."""
        return self.now_ns

    # ------------------------------------------------------------------ #
    # Per-type issue rules
    # ------------------------------------------------------------------ #
    def _earliest_act_time(self, bank: _BankState) -> float:
        candidates = [self._bus_free_ns, bank.ready_ns]
        # tRRD with respect to the last ACT on any bank.
        candidates.append(self._last_act_any_bank_ns + self.timing.t_rrd)
        # tFAW: the 5th activation in a window must wait.
        if self.timing.t_faw > 0 and len(self._recent_acts) >= 4:
            candidates.append(self._recent_acts[-4] + self.timing.t_faw)
        return max(candidates)

    def _record_act(self, time_ns: float) -> None:
        self._recent_acts.append(time_ns)
        if len(self._recent_acts) > 16:
            self._recent_acts.popleft()
        self._last_act_any_bank_ns = time_ns
        self._bus_free_ns = max(self._bus_free_ns, time_ns + self.timing.clock_ns)

    def _issue_activate(self, command: Command) -> float:
        bank = self._banks[command.bank]
        if bank.open_row is not None:
            raise TimingViolationError(
                f"bank {command.bank}: ACT to row {command.row} while row "
                f"{bank.open_row} is open"
            )
        issue_time = self._earliest_act_time(bank)
        self._record_act(issue_time)
        bank.open_row = command.row
        bank.last_act_ns = issue_time
        bank.ready_ns = issue_time + self.timing.t_rcd
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

    def _issue_precharge(self, command: Command) -> float:
        bank = self._banks[command.bank]
        issue_time = max(self._bus_free_ns, bank.ready_ns)
        if bank.open_row is not None:
            # Enforce tRAS from the opening ACT.
            issue_time = max(issue_time, bank.last_act_ns + self.timing.t_ras)
        bank.open_row = None
        bank.last_pre_ns = issue_time
        bank.ready_ns = issue_time + self.timing.t_rp
        self._bus_free_ns = max(self._bus_free_ns, issue_time + self.timing.clock_ns)
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

    def _issue_row_sweep(self, command: Command) -> float:
        """A Row Sweep is modelled as ``rows`` back-to-back activations.

        Each activation inside the sweep is subject to tFAW; the per-design
        ACT spacing (with or without interleaved precharges) is supplied by
        the caller through the command's metadata-free ``rows`` count and
        the analytical model — here we conservatively apply the BSA
        ACT+PRE spacing so scheduler-level tFAW studies have a well-defined
        baseline.
        """
        bank = self._banks[command.bank]
        if bank.open_row is not None:
            raise TimingViolationError(
                f"bank {command.bank}: ROW_SWEEP while row {bank.open_row} is open"
            )
        start = self._earliest_act_time(bank)
        time_cursor = start
        for _ in range(command.rows):
            time_cursor = max(time_cursor, self._earliest_act_time(bank))
            self._record_act(time_cursor)
            time_cursor += self.timing.t_rcd + self.timing.t_rp
        bank.ready_ns = time_cursor
        self.now_ns = max(self.now_ns, time_cursor)
        return start

    def _issue_simple(self, command: Command) -> float:
        bank = self._banks[command.bank]
        issue_time = max(self._bus_free_ns, bank.ready_ns)
        if command.kind in (CommandType.RD, CommandType.WR):
            if bank.open_row is None:
                raise TimingViolationError(
                    f"bank {command.bank}: {command.kind.value} with no open row"
                )
            duration = self.timing.t_cl + self.timing.t_burst
        elif command.kind is CommandType.REF:
            duration = self.timing.t_rfc
        elif command.kind in (
            CommandType.TRA,
            CommandType.ROWCLONE,
            CommandType.SHIFT,
        ):
            duration = 2 * self.timing.t_rcd + self.timing.t_rp
            self._record_act(issue_time)
            self._record_act(issue_time + self.timing.t_rcd)
        elif command.kind is CommandType.LISA_RBM:
            duration = self.timing.t_rcd + self.timing.t_rp
            self._record_act(issue_time)
        else:
            raise TimingViolationError(f"unsupported command type {command.kind}")
        bank.ready_ns = issue_time + duration
        self._bus_free_ns = max(self._bus_free_ns, issue_time + self.timing.clock_ns)
        self.now_ns = max(self.now_ns, bank.ready_ns)
        return issue_time

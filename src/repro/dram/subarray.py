"""Functional (bit-accurate) model of a DRAM subarray.

A subarray stores ``rows_per_subarray`` rows of ``row_size_bytes`` bytes and
owns a local row buffer (the sense amplifiers).  The model reproduces the
three-phase access protocol of Section 2.1:

* ``activate(row)`` latches the row's contents into the row buffer and
  (by default) restores the cells — charge restoration is what makes DRAM
  reads non-destructive.  The pLUTo-GSA design disables restoration for
  unmatched bitlines, which the pLUTo-enabled subarray models by calling
  :meth:`activate` with ``restore=False``.
* ``precharge()`` closes the row and clears the "open" state.
* ``read_buffer()`` / ``write_buffer()`` access the row buffer; writes are
  propagated to the open row, as in real DRAM where the bitline drives the
  cell while the wordline is asserted.

State-machine violations raise :class:`SubarrayStateError` so higher layers
(the controllers) are forced to issue legal command sequences.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dram.geometry import DRAMGeometry
from repro.errors import ConfigurationError, SubarrayStateError

__all__ = ["Subarray"]


class Subarray:
    """Bit-accurate storage and row-buffer model of one DRAM subarray."""

    def __init__(self, geometry: DRAMGeometry, index: int = 0) -> None:
        self.geometry = geometry
        self.index = index
        self._rows = np.zeros(
            (geometry.rows_per_subarray, geometry.row_size_bytes), dtype=np.uint8
        )
        self._row_buffer = np.zeros(geometry.row_size_bytes, dtype=np.uint8)
        self._open_row: Optional[int] = None
        #: Rows whose cell contents were destroyed by a non-restoring
        #: activation (pLUTo-GSA semantics) and must be reloaded before use.
        self._invalid_rows: set[int] = set()
        #: Statistics used by tests and the evaluation harness.
        self.activation_count = 0
        self.precharge_count = 0

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #
    @property
    def open_row(self) -> Optional[int]:
        """Index of the currently open row, or ``None`` if precharged."""
        return self._open_row

    @property
    def is_precharged(self) -> bool:
        """Whether the subarray is in the precharged state."""
        return self._open_row is None

    def row_is_valid(self, row: int) -> bool:
        """Whether the given row still holds valid data."""
        self._check_row(row)
        return row not in self._invalid_rows

    # ------------------------------------------------------------------ #
    # DRAM protocol
    # ------------------------------------------------------------------ #
    def activate(self, row: int, *, restore: bool = True) -> np.ndarray:
        """Activate ``row``: latch it into the row buffer.

        With ``restore=True`` (normal DRAM) the cells keep their value.
        With ``restore=False`` (a gated, non-restoring activation as in
        pLUTo-GSA) the row's cells are marked invalid: the charge was shared
        with the bitline but never restored.
        """
        self._check_row(row)
        if self._open_row is not None:
            raise SubarrayStateError(
                f"subarray {self.index}: cannot activate row {row}; "
                f"row {self._open_row} is still open (precharge first)"
            )
        if row in self._invalid_rows:
            raise SubarrayStateError(
                f"subarray {self.index}: row {row} was destroyed by a "
                "non-restoring activation and must be rewritten before use"
            )
        self._row_buffer[:] = self._rows[row]
        self._open_row = row
        self.activation_count += 1
        if not restore:
            self._rows[row] = 0
            self._invalid_rows.add(row)
        return self._row_buffer.copy()

    def precharge(self) -> None:
        """Precharge the subarray (close the open row)."""
        if self._open_row is None:
            # Precharging an already-precharged subarray is legal (NOP-like)
            # and happens at the end of GSA/GMC sweeps.
            self.precharge_count += 1
            return
        self._open_row = None
        self.precharge_count += 1

    def read_buffer(self) -> np.ndarray:
        """Return a copy of the local row buffer contents."""
        if self._open_row is None:
            raise SubarrayStateError(
                f"subarray {self.index}: cannot read the row buffer while precharged"
            )
        return self._row_buffer.copy()

    def write_buffer(self, data: np.ndarray) -> None:
        """Overwrite the row buffer; the open row is updated as well."""
        if self._open_row is None:
            raise SubarrayStateError(
                f"subarray {self.index}: cannot write the row buffer while precharged"
            )
        data = self._coerce_row(data)
        self._row_buffer[:] = data
        self._rows[self._open_row] = data
        self._invalid_rows.discard(self._open_row)

    # ------------------------------------------------------------------ #
    # Direct (out-of-band) access used for initialisation and checking
    # ------------------------------------------------------------------ #
    def load_row(self, row: int, data: np.ndarray) -> None:
        """Directly store ``data`` into ``row`` (models a prior WR/copy)."""
        self._check_row(row)
        self._rows[row] = self._coerce_row(data)
        self._invalid_rows.discard(row)

    def peek_row(self, row: int) -> np.ndarray:
        """Return a copy of a row's stored contents without activating it."""
        self._check_row(row)
        return self._rows[row].copy()

    def load_rows(self, first_row: int, data: np.ndarray) -> None:
        """Store a 2-D array of rows starting at ``first_row``."""
        data = np.asarray(data, dtype=np.uint8)
        if data.ndim != 2 or data.shape[1] != self.geometry.row_size_bytes:
            raise ConfigurationError(
                "load_rows expects shape (n, row_size_bytes), got "
                f"{data.shape}"
            )
        last = first_row + data.shape[0] - 1
        self._check_row(first_row)
        self._check_row(last)
        self._rows[first_row : last + 1] = data
        for row in range(first_row, last + 1):
            self._invalid_rows.discard(row)

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #
    def _check_row(self, row: int) -> None:
        if not 0 <= row < self.geometry.rows_per_subarray:
            raise ConfigurationError(
                f"row {row} out of range [0, {self.geometry.rows_per_subarray})"
            )

    def _coerce_row(self, data: np.ndarray) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint8)
        if data.shape != (self.geometry.row_size_bytes,):
            raise ConfigurationError(
                f"row data must have shape ({self.geometry.row_size_bytes},), "
                f"got {data.shape}"
            )
        return data

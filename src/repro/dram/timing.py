"""DRAM timing parameters.

All values are expressed in nanoseconds.  The defaults follow the evaluated
configuration of the paper (Table 3): DDR4-2400, 17-17-17 timings
(tRCD = tRP = tCL = 14.16 ns) with a nominal tFAW of 13.328 ns, and an
HMC-like 3D-stacked configuration with faster row activation and much
smaller rows.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ConfigurationError

__all__ = [
    "TimingParameters",
    "DDR4_2400",
    "HMC_3DS",
    "scaled_tfaw",
]


@dataclass(frozen=True)
class TimingParameters:
    """Timing constants of a DRAM device (nanoseconds).

    Attributes
    ----------
    t_rcd:
        ACT-to-RD/WR delay; also the time for sense amplifiers to latch a row.
    t_rp:
        PRE-to-ACT delay (precharge time).
    t_ras:
        Minimum ACT-to-PRE delay.
    t_cl:
        CAS latency (RD command to first data).
    t_ccd:
        Column-to-column delay (back-to-back RD/WR bursts).
    t_ccd_l:
        Column-to-column delay between accesses to the *same* bank group
        (DDR4's long variant: the group's shared column circuitry needs
        extra turnaround time).
    t_ccd_s:
        Column-to-column delay between accesses to *different* bank
        groups (the short variant; equals the nominal burst spacing).
    t_faw:
        Four-activation window: at most four ACTs per rank per ``t_faw``.
    t_rrd:
        ACT-to-ACT delay between different banks.
    t_refi:
        Average refresh interval.
    t_rfc:
        Refresh cycle time.
    t_burst:
        Data burst duration for one column access.
    clock_ns:
        Clock period of the memory interface.
    """

    t_rcd: float = 14.16
    t_rp: float = 14.16
    t_ras: float = 32.0
    t_cl: float = 14.16
    t_ccd: float = 3.33
    t_ccd_l: float = 5.0
    t_ccd_s: float = 3.33
    t_faw: float = 13.328
    t_rrd: float = 3.33
    t_refi: float = 7800.0
    t_rfc: float = 350.0
    t_burst: float = 3.33
    clock_ns: float = 0.833

    def __post_init__(self) -> None:
        for name, value in self.__dict__.items():
            if value < 0:
                raise ConfigurationError(f"timing parameter {name} must be >= 0")
        if self.clock_ns <= 0:
            raise ConfigurationError("clock period must be positive")
        if self.t_ccd_l < self.t_ccd_s:
            raise ConfigurationError(
                "tCCD_L (same bank group) cannot be shorter than tCCD_S"
            )

    @property
    def t_rc(self) -> float:
        """Row cycle time (ACT to next ACT on the same bank)."""
        return self.t_ras + self.t_rp

    @property
    def act_pre_cycle(self) -> float:
        """Cost of one ACT + PRE pair as used by the analytical model."""
        return self.t_rcd + self.t_rp

    def with_tfaw_fraction(self, fraction: float) -> "TimingParameters":
        """Return a copy with ``t_faw`` scaled to ``fraction`` of nominal.

        ``fraction == 0`` removes the constraint entirely (the paper's
        "unthrottled" configuration); ``fraction == 1`` keeps the nominal
        value.  Used by the Figure 13 sensitivity study.
        """
        if fraction < 0:
            raise ConfigurationError("tFAW fraction must be >= 0")
        return replace(self, t_faw=self.t_faw * fraction)


def scaled_tfaw(base: TimingParameters, fraction: float) -> TimingParameters:
    """Functional alias of :meth:`TimingParameters.with_tfaw_fraction`."""
    return base.with_tfaw_fraction(fraction)


#: DDR4-2400 17-17-17 (Table 3).  tRCD = tRP = 14.16 ns.
DDR4_2400 = TimingParameters()

#: HMC-like 3D-stacked DRAM: faster activation on short bitlines.
#: The paper attributes the 3DS speedup (~38 % on average) to faster row
#: activations; we model this with ~30 % lower tRCD/tRP.
HMC_3DS = TimingParameters(
    t_rcd=10.2,
    t_rp=10.2,
    t_ras=24.0,
    t_cl=10.2,
    t_ccd=2.5,
    t_ccd_l=3.75,
    t_ccd_s=2.5,
    t_faw=9.6,
    t_rrd=2.5,
    t_refi=3900.0,
    t_rfc=260.0,
    t_burst=1.25,
    clock_ns=0.625,
)

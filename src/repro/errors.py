"""Exception hierarchy for the pLUTo reproduction.

All package-specific exceptions derive from :class:`ReproError` so callers
can catch everything raised by this library with a single ``except`` clause.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class AddressError(ReproError):
    """A physical or logical DRAM address is invalid."""


class TimingViolationError(ReproError):
    """A DRAM command violates a timing constraint (e.g. tRCD, tFAW)."""


class SubarrayStateError(ReproError):
    """A DRAM subarray operation is illegal in its current state."""


class AllocationError(ReproError):
    """pLUTo register / row / subarray allocation failed."""


class CompilationError(ReproError):
    """The pLUTo compiler could not lower an API program to ISA."""


class VerificationError(ConfigurationError):
    """A program failed static verification (:mod:`repro.analyze`).

    Carries the error-severity :class:`~repro.analyze.diagnostics.Diagnostic`
    records as :attr:`diagnostics`, so callers (and the serving tier's
    request rejections) can inspect the structured findings instead of
    parsing the message.  Subclasses :class:`ConfigurationError`: the
    ad-hoc API-layer checks this machinery replaces raised that, and
    existing handlers keep working.
    """

    def __init__(self, diagnostics=(), *, subject: str = "program") -> None:
        self.diagnostics = tuple(diagnostics)
        self.subject = subject
        if self.diagnostics:
            rendered = "; ".join(d.render() for d in self.diagnostics)
            message = f"{subject} failed verification: {rendered}"
        else:
            message = f"{subject} failed verification"
        super().__init__(message)


class ExecutionError(ReproError):
    """The pLUTo controller failed while executing an ISA program."""


class LUTError(ReproError):
    """A lookup table is malformed or incompatible with the operation."""


class WorkloadError(ReproError):
    """A workload was configured with invalid parameters."""


class ServiceError(ReproError):
    """The serving frontend failed to process a request."""


class ServiceOverloadError(ServiceError):
    """The service's bounded request queue is full (backpressure)."""


class ServiceClosedError(ServiceError):
    """A request was submitted to a service that is not running."""


class WorkerCrashedError(ServiceError):
    """A worker process of the serving pool died with requests in flight."""

"""Evaluation harness: one entry point per paper figure/table."""

from repro.evaluation.figures import (
    FigureResult,
    figure06_bitline_reliability,
    figure07_speedup_over_cpu,
    figure08_speedup_per_area,
    figure09_speedup_over_fpga,
    figure10_energy_over_cpu,
    figure11_lut_loading,
    figure12_scalability,
    figure12_sharded_scaling,
    figure13_sharded_tfaw,
    figure13_tfaw_sensitivity,
    figure14_salp_scaling,
    figure_execution_tiers,
    figure_hierarchy_scaling,
    figure_optimizer_gains,
)
from repro.evaluation.harness import (
    PLUTO_CONFIG_LABELS,
    EvaluationHarness,
    WorkloadResult,
    default_pluto_configs,
)
from repro.evaluation.reporting import format_rows, render_markdown_table, render_result
from repro.evaluation.tables import (
    TableResult,
    table01_design_comparison,
    table05_area_breakdown,
    table06_prior_pum_comparison,
    table07_qnn_inference,
)

__all__ = [
    "FigureResult",
    "figure06_bitline_reliability",
    "figure07_speedup_over_cpu",
    "figure08_speedup_per_area",
    "figure09_speedup_over_fpga",
    "figure10_energy_over_cpu",
    "figure11_lut_loading",
    "figure12_scalability",
    "figure12_sharded_scaling",
    "figure13_sharded_tfaw",
    "figure13_tfaw_sensitivity",
    "figure14_salp_scaling",
    "figure_execution_tiers",
    "figure_hierarchy_scaling",
    "figure_optimizer_gains",
    "PLUTO_CONFIG_LABELS",
    "EvaluationHarness",
    "WorkloadResult",
    "default_pluto_configs",
    "format_rows",
    "render_markdown_table",
    "render_result",
    "TableResult",
    "table01_design_comparison",
    "table05_area_breakdown",
    "table06_prior_pum_comparison",
    "table07_qnn_inference",
]

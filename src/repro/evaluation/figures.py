"""One function per evaluation figure of the paper.

Every function returns a :class:`FigureResult` whose rows carry the same
series the corresponding figure plots, so benchmarks, tests, and the
EXPERIMENTS.md generator all consume one representation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.pnm import HMC_PNM
from repro.baselines.prior_pum import SIMDRAM
from repro.circuit.montecarlo import MonteCarloConfig, MonteCarloRunner
from repro.core.analytical import PlutoCostModel
from repro.core.area import AreaModel
from repro.core.designs import PlutoDesign
from repro.core.engine import DDR4, THREE_DS, PlutoConfig, PlutoEngine
from repro.dram.energy import DDR4_ENERGY
from repro.dram.timing import DDR4_2400
from repro.evaluation.harness import EvaluationHarness, default_pluto_configs
from repro.plan.execution_plan import ExecutionPlan
from repro.utils.units import geometric_mean
from repro.workloads.registry import figure7_workloads, figure9_workloads

__all__ = [
    "FigureResult",
    "figure06_bitline_reliability",
    "figure07_speedup_over_cpu",
    "figure08_speedup_per_area",
    "figure09_speedup_over_fpga",
    "figure10_energy_over_cpu",
    "figure11_lut_loading",
    "figure12_scalability",
    "figure12_sharded_scaling",
    "figure13_tfaw_sensitivity",
    "figure13_sharded_tfaw",
    "figure14_salp_scaling",
    "figure_auto_planner",
    "figure_execution_tiers",
    "figure_hierarchy_scaling",
    "figure_latency_breakdown",
    "figure_optimizer_gains",
    "figure_static_verification",
    "figure_worker_scaling",
]


def _sharded_reference_session(elements: int):
    """A one-row-per-bank-friendly 256-entry LUT map program (Table 4 idiom)."""
    from repro.api.luts import color_grade_lut
    from repro.api.session import PlutoSession

    session = PlutoSession()
    source = session.pluto_malloc(elements, 8, "pixels")
    out = session.pluto_malloc(elements, 8, "graded")
    session.api_pluto_map(color_grade_lut(), source, out)
    inputs = {"pixels": np.arange(elements, dtype=np.uint64) % 256}
    return session, inputs


@dataclass
class FigureResult:
    """A reproduced figure: named rows of numeric series."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]


# --------------------------------------------------------------------- #
# Figure 6 — bitline reliability (SPICE substitute)
# --------------------------------------------------------------------- #
def figure06_bitline_reliability(runs: int = 100, seed: int = 2022) -> FigureResult:
    """Monte-Carlo activation study for the baseline and the three designs."""
    runner = MonteCarloRunner(MonteCarloConfig(runs=runs, seed=seed))
    result = FigureResult(
        name="Figure 6",
        description="Bitline voltage settling under 5% process variation",
    )
    for design, outcome in runner.run_all().items():
        margins = [t.sensing_margin for t in outcome.transients]
        result.rows.append(
            {
                "design": design,
                "runs": len(outcome.transients),
                "all_settled": outcome.all_settled,
                "max_disturbance_fraction": outcome.max_disturbance_fraction,
                "min_sensing_margin_v": float(np.min(margins)),
            }
        )
    return result


# --------------------------------------------------------------------- #
# Figures 7 / 8 / 10 — speedup and energy over the CPU baseline
# --------------------------------------------------------------------- #
def _cpu_relative_harness() -> tuple[EvaluationHarness, list]:
    return EvaluationHarness(), figure7_workloads()


def figure07_speedup_over_cpu(scale: float = 1.0) -> FigureResult:
    """Speedup of GPU, PnM, and the six pLUTo configurations over the CPU."""
    harness, workloads = _cpu_relative_harness()
    result = FigureResult(
        name="Figure 7",
        description="Speedup over the CPU baseline (higher is better)",
    )
    labels = list(default_pluto_configs())
    accumulators: dict[str, list[float]] = {label: [] for label in ["GPU", "PnM"] + labels}
    for workload in workloads:
        elements = max(1, int(workload.default_elements * scale))
        evaluation = harness.evaluate(workload, elements)
        row = {
            "workload": workload.name,
            "GPU": evaluation.gpu_speedup_over_cpu,
            "PnM": evaluation.pnm_speedup_over_cpu,
        }
        for label in labels:
            row[label] = evaluation.speedup_over_cpu(label)
        for key, values in accumulators.items():
            values.append(row[key])
        result.rows.append(row)
    gmean_row = {"workload": "GMEAN"}
    gmean_row.update({key: geometric_mean(values) for key, values in accumulators.items()})
    result.rows.append(gmean_row)
    return result


def figure08_speedup_per_area(scale: float = 1.0) -> FigureResult:
    """Speedup over the CPU normalised to chip/board area."""
    harness, workloads = _cpu_relative_harness()
    area_model = AreaModel()
    cpu_area = harness.cpu.area_mm2
    gpu_area = harness.gpu.area_mm2
    #: DDR4 pLUTo uses the modified DRAM chip area (Table 5); 3DS uses the
    #: paper's 4.4 mm^2-per-vault logic overhead across 16 vaults.
    pluto_area = {}
    for label, config in default_pluto_configs().items():
        if config.memory == THREE_DS:
            pluto_area[label] = 4.4 * 16
        else:
            pluto_area[label] = area_model.breakdown(config.design).total
    result = FigureResult(
        name="Figure 8",
        description="Speedup over the CPU per unit area (higher is better)",
    )
    labels = list(default_pluto_configs())
    accumulators: dict[str, list[float]] = {label: [] for label in ["GPU"] + labels}
    for workload in workloads:
        elements = max(1, int(workload.default_elements * scale))
        evaluation = harness.evaluate(workload, elements)
        row = {
            "workload": workload.name,
            "GPU": evaluation.gpu_speedup_over_cpu * cpu_area / gpu_area,
        }
        for label in labels:
            row[label] = evaluation.speedup_over_cpu(label) * cpu_area / pluto_area[label]
        for key, values in accumulators.items():
            values.append(row[key])
        result.rows.append(row)
    gmean_row = {"workload": "GMEAN"}
    gmean_row.update({key: geometric_mean(values) for key, values in accumulators.items()})
    result.rows.append(gmean_row)
    return result


def figure10_energy_over_cpu(scale: float = 1.0) -> FigureResult:
    """CPU-normalised energy savings of the GPU and the pLUTo configurations."""
    harness, workloads = _cpu_relative_harness()
    result = FigureResult(
        name="Figure 10",
        description="CPU energy divided by system energy (higher is better)",
    )
    labels = list(default_pluto_configs())
    accumulators: dict[str, list[float]] = {label: [] for label in ["GPU"] + labels}
    for workload in workloads:
        elements = max(1, int(workload.default_elements * scale))
        evaluation = harness.evaluate(workload, elements)
        row = {
            "workload": workload.name,
            "GPU": evaluation.gpu_energy_saving_over_cpu,
        }
        for label in labels:
            row[label] = evaluation.energy_saving_over_cpu(label)
        for key, values in accumulators.items():
            values.append(row[key])
        result.rows.append(row)
    gmean_row = {"workload": "GMEAN"}
    gmean_row.update({key: geometric_mean(values) for key, values in accumulators.items()})
    result.rows.append(gmean_row)
    return result


# --------------------------------------------------------------------- #
# Figure 9 — comparison against the FPGA baseline
# --------------------------------------------------------------------- #
def figure09_speedup_over_fpga(scale: float = 1.0) -> FigureResult:
    """Speedup of the six pLUTo configurations over the FPGA baseline."""
    harness = EvaluationHarness()
    result = FigureResult(
        name="Figure 9",
        description="Speedup over the FPGA baseline (higher is better)",
    )
    labels = list(default_pluto_configs())
    accumulators: dict[str, list[float]] = {label: [] for label in labels}
    for workload in figure9_workloads():
        elements = max(1, int(min(workload.default_elements, 1 << 22) * scale))
        evaluation = harness.evaluate(workload, elements)
        row = {"workload": workload.name}
        for label in labels:
            row[label] = evaluation.speedup_over_fpga(label)
            accumulators[label].append(row[label])
        result.rows.append(row)
    gmean_row = {"workload": "GMEAN"}
    gmean_row.update({key: geometric_mean(values) for key, values in accumulators.items()})
    result.rows.append(gmean_row)
    return result


# --------------------------------------------------------------------- #
# Figure 11 — LUT loading overhead
# --------------------------------------------------------------------- #
def figure11_lut_loading(
    volumes_mb: tuple[float, ...] = (1, 2, 5, 10, 20, 40, 60, 80, 100, 120),
    lut_entries: int = 256,
) -> FigureResult:
    """Fraction of total time spent loading LUTs, from DRAM and from an SSD."""
    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    geometry = engine.geometry
    lut_bytes = lut_entries * geometry.row_size_bytes
    # Query throughput of the default 16-subarray pLUTo-BSA configuration.
    query_latency_per_row = engine.cost_model.query_latency_ns(
        PlutoDesign.BSA, lut_entries
    )
    elements_per_row = geometry.row_size_bytes  # 8-bit elements
    bytes_per_ns = (
        elements_per_row * engine.parallel_speedup() / query_latency_per_row
    )
    result = FigureResult(
        name="Figure 11",
        description="Fraction of execution time spent loading LUT data",
    )
    for source, bandwidth_gbps in (("DDR4", 19.2), ("SSD", 7.5)):
        for volume_mb in volumes_mb:
            volume_bytes = volume_mb * 1e6
            load_ns = lut_bytes / bandwidth_gbps
            query_ns = volume_bytes / bytes_per_ns
            result.rows.append(
                {
                    "source": source,
                    "volume_mb": volume_mb,
                    "load_fraction": load_ns / (load_ns + query_ns),
                }
            )
    return result


# --------------------------------------------------------------------- #
# Figure 12 — scalability of the LUT query / multiplication efficiency
# --------------------------------------------------------------------- #
def figure12_scalability(
    lut_sizes: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
    bit_widths: tuple[int, ...] = (1, 2, 4, 8, 16, 32),
) -> FigureResult:
    """(a) throughput/energy vs LUT size; (b) multiplication efficiency."""
    model = PlutoCostModel(DDR4_2400, DDR4_ENERGY, 8192, rows_per_subarray=1024)
    result = FigureResult(
        name="Figure 12",
        description="LUT-query scalability and multiplication energy efficiency",
    )
    for size in lut_sizes:
        row = {"panel": "a", "lut_size": size}
        for design in PlutoDesign:
            row[f"{design.display_name}_throughput"] = model.throughput_queries_per_s(
                design, size, 8
            )
            row[f"{design.display_name}_energy_j"] = (
                model.query_energy_nj(design, size) * 1e-9
            )
        result.rows.append(row)

    # Panel (b): multiplications per joule for pLUTo-BSA, SIMDRAM, and PnM.
    for bits in bit_widths:
        nibbles = max(1, -(-bits // 4))
        partials = nibbles * nibbles
        sweeps = 2 * partials - 1
        pluto_energy_per_row = sweeps * model.query_energy_nj(PlutoDesign.BSA, 256)
        elements_per_row = (8192 * 8) // (2 * bits)
        pluto_ops_per_j = elements_per_row / (pluto_energy_per_row * 1e-9)

        simdram_energy_per_row = SIMDRAM.multiplication_energy_nj(bits)
        simdram_elements = (8192 * 8) // max(1, bits)  # bit-serial columns
        simdram_ops_per_j = simdram_elements / (simdram_energy_per_row * 1e-9)

        # PnM: each multiplication is executed by the logic-layer core.
        pnm_energy_per_op = HMC_PNM.energy_per_op_nj * max(1.0, bits / 8.0) + 0.5
        pnm_ops_per_j = 1.0 / (pnm_energy_per_op * 1e-9)

        result.rows.append(
            {
                "panel": "b",
                "bit_width": bits,
                "pLUTo-BSA_ops_per_j": pluto_ops_per_j,
                "SIMDRAM_ops_per_j": simdram_ops_per_j,
                "PnM_ops_per_j": pnm_ops_per_j,
            }
        )
    return result


def figure12_sharded_scaling(
    shard_counts: tuple[int, ...] = (1, 2, 4, 8),
    elements: int = 65536,
    tfaw_fraction: float = 1.0,
) -> FigureResult:
    """Figure 12's scaling trend from *executed* bank-parallel programs.

    Runs one 256-entry LUT-query program (eight source rows at the
    default size) through the sharded dispatcher at increasing bank
    counts and reports the scheduler-derived makespan: more banks sweep
    concurrently, so the makespan falls while the summed serial latency
    does not.  This is the execution-layer counterpart of the analytical
    panel (a) study above.
    """
    from repro.controller.dispatch import ParallelDispatcher

    session, inputs = _sharded_reference_session(elements)
    engine = PlutoEngine(
        PlutoConfig(design=PlutoDesign.BSA, tfaw_fraction=tfaw_fraction)
    )
    result = FigureResult(
        name="Figure 12 (sharded)",
        description="Makespan of one LUT-query program vs. bank-parallel shards",
    )
    dispatcher = ParallelDispatcher(engine)
    executions = {
        shards: dispatcher.execute(session.calls, inputs, shards=shards)
        for shards in shard_counts
    }
    # The speedup baseline is always a true single-shard run, whatever
    # shard counts the caller asked for.
    if 1 in executions:
        reference = executions[1].makespan_ns
    else:
        reference = dispatcher.execute(
            session.calls, inputs, shards=1
        ).makespan_ns
    for shards in shard_counts:
        execution = executions[shards]
        result.rows.append(
            {
                "shards": shards,
                "makespan_ns": execution.makespan_ns,
                "serial_latency_ns": execution.serial_latency_ns,
                "speedup_vs_one_shard": reference / execution.makespan_ns,
            }
        )
    return result


# --------------------------------------------------------------------- #
# Figure 13 — tFAW sensitivity
# --------------------------------------------------------------------- #
def figure13_tfaw_sensitivity(
    fractions: tuple[float, ...] = (0.0, 0.5, 1.0), scale: float = 1.0
) -> FigureResult:
    """Performance relative to the unthrottled (tFAW = 0) configuration."""
    workloads = figure7_workloads()
    baseline = EvaluationHarness(tfaw_fraction=0.0)
    result = FigureResult(
        name="Figure 13",
        description="Relative performance under tFAW activation throttling",
    )
    label = PlutoDesign.BSA.display_name
    reference: dict[str, float] = {}
    for workload in workloads:
        elements = max(1, int(workload.default_elements * scale))
        reference[workload.name] = baseline.evaluate(workload, elements).pluto_latency_ns(label)
    for fraction in fractions:
        harness = EvaluationHarness(tfaw_fraction=fraction)
        relatives = []
        for workload in workloads:
            elements = max(1, int(workload.default_elements * scale))
            latency = harness.evaluate(workload, elements).pluto_latency_ns(label)
            relative = reference[workload.name] / latency
            relatives.append(relative)
            result.rows.append(
                {
                    "tfaw_fraction": fraction,
                    "workload": workload.name,
                    "relative_performance": relative,
                }
            )
        result.rows.append(
            {
                "tfaw_fraction": fraction,
                "workload": "GMEAN",
                "relative_performance": geometric_mean(relatives),
            }
        )
    return result


def figure13_sharded_tfaw(
    fractions: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0),
    shards: int = 16,
    elements: int = 65536,
) -> FigureResult:
    """Section 8.7's tFAW throttle observed on executed sharded programs.

    At sixteen bank-parallel shards the cross-bank activation rate is high
    enough for the four-activation window to bind, so tightening tFAW
    (larger multiples of the nominal window, the Section 8.7 stress axis;
    DDR4's nominal tFAW equals 4 x tRRD, so fractions <= 1 are absorbed by
    tRRD) stretches the scheduler-derived makespan — the execution-layer
    counterpart of the analytical Figure 13 study.
    """
    from repro.controller.dispatch import ParallelDispatcher

    session, inputs = _sharded_reference_session(elements)
    result = FigureResult(
        name="Figure 13 (sharded)",
        description="Sharded makespan under tFAW activation throttling",
    )
    reference: float | None = None
    for fraction in fractions:
        engine = PlutoEngine(
            PlutoConfig(design=PlutoDesign.BSA, tfaw_fraction=fraction)
        )
        dispatcher = ParallelDispatcher(engine)
        execution = dispatcher.execute(session.calls, inputs, shards=shards)
        if reference is None:
            reference = execution.makespan_ns
        result.rows.append(
            {
                "tfaw_fraction": fraction,
                "shards": shards,
                "makespan_ns": execution.makespan_ns,
                "relative_performance": reference / execution.makespan_ns,
            }
        )
    return result


# --------------------------------------------------------------------- #
# Hierarchy scaling — channel/rank/bank decomposition (beyond the paper)
# --------------------------------------------------------------------- #
def figure_hierarchy_scaling(
    hierarchies: tuple[tuple[int, int], ...] = ((1, 1), (1, 2), (2, 1), (2, 2)),
    elements: int = 65536,
    tfaw_fraction: float = 1.0,
) -> FigureResult:
    """Per-level makespans of one LUT-query program across the hierarchy.

    For every ``(channels, ranks)`` device shape the reference 256-entry
    LUT map runs through the hierarchical dispatcher with one shard per
    bank, and the same shard command streams are re-scheduled with levels
    progressively enabled: serial (one bank), bank-parallel (one rank),
    rank-parallel (one channel), and the full hierarchy.  Each level can
    only help, so the four makespans are monotonically non-increasing —
    the execution-layer decomposition of the throughput scaling the
    paper's Section 8 attributes to DRAM-wide parallelism.
    """
    from repro.controller.hierarchy import HierarchicalDispatcher

    session, inputs = _sharded_reference_session(elements)
    result = FigureResult(
        name="Hierarchy scaling",
        description="Makespan decomposition across channel/rank/bank levels",
    )
    for channels, ranks in hierarchies:
        engine = PlutoEngine(
            PlutoConfig(
                design=PlutoDesign.BSA,
                tfaw_fraction=tfaw_fraction,
                channels=channels,
                ranks=ranks,
            )
        )
        execution = HierarchicalDispatcher(engine).execute(session.calls, inputs)
        decomposition = execution.speedup_decomposition
        result.rows.append(
            {
                "channels": channels,
                "ranks": ranks,
                "shards": execution.num_shards,
                "serial_latency_ns": execution.serial_latency_ns,
                "bank_only_makespan_ns": execution.bank_only_makespan_ns,
                "rank_parallel_makespan_ns": execution.rank_parallel_makespan_ns,
                "channel_parallel_makespan_ns": execution.makespan_ns,
                "bank_speedup": decomposition["bank"],
                "rank_speedup": decomposition["rank"],
                "channel_speedup": decomposition["channel"],
                "total_speedup": decomposition["total"],
            }
        )
    return result


# --------------------------------------------------------------------- #
# Optimizer gains — pass-pipeline savings per workload family
# --------------------------------------------------------------------- #
def figure_optimizer_gains(
    elements: int = 4096, shards: int = 8, seed: int = 0
) -> FigureResult:
    """Measured row-sweep and makespan savings of the program optimizer.

    Every registry family's recorded pipeline
    (:func:`repro.workloads.programs.optimizer_workload_programs`) runs
    unoptimized and optimized on the pLUTo-BSA engine; the rows record
    the optimizer's static account (ops / LUT queries before and after)
    next to the *executed* ``ROW_SWEEP`` command counts and the
    bank-parallel scheduler makespans, with the outputs of both runs
    compared bit for bit.
    """
    from repro.dram.commands import CommandType
    from repro.workloads.programs import optimizer_workload_programs

    def row_sweeps(trace) -> int:
        return sum(
            1 for command in trace.commands if command.kind is CommandType.ROW_SWEEP
        )

    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    result = FigureResult(
        name="Optimizer gains",
        description="Pass-pipeline savings per workload family (pLUTo-BSA)",
    )
    for program in optimizer_workload_programs(elements=elements, seed=seed):
        session = program.session
        plain = session.run(
            program.inputs, engine=engine, plan=ExecutionPlan(shards=shards)
        )
        optimized = session.run(
            program.inputs,
            engine=engine,
            plan=ExecutionPlan(shards=shards, optimize=True),
        )
        for name in plain.outputs:
            if not np.array_equal(plain.outputs[name], optimized.outputs[name]):
                raise AssertionError(
                    f"{program.name}: optimized output {name!r} diverged"
                )
        report = optimized.optimization
        sweeps_before = row_sweeps(plain.trace)
        sweeps_after = row_sweeps(optimized.trace)
        result.rows.append(
            {
                "workload": program.name,
                "family": program.family,
                "ops_before": report.before.ops,
                "ops_after": report.after.ops,
                "lut_queries_before": report.before.lut_queries,
                "lut_queries_after": report.after.lut_queries,
                "lut_loads_before": report.before.lut_loads,
                "lut_loads_after": report.after.lut_loads,
                "row_sweeps_before": sweeps_before,
                "row_sweeps_after": sweeps_after,
                "sweep_reduction": (
                    (sweeps_before - sweeps_after) / sweeps_before
                    if sweeps_before
                    else 0.0
                ),
                "makespan_before_ns": plain.makespan_ns,
                "makespan_after_ns": optimized.makespan_ns,
                "makespan_reduction": (
                    (plain.makespan_ns - optimized.makespan_ns) / plain.makespan_ns
                    if plain.makespan_ns
                    else 0.0
                ),
            }
        )
    return result


# --------------------------------------------------------------------- #
# Auto-planner — cost-based plan choice vs the static grid
# --------------------------------------------------------------------- #
def figure_auto_planner(
    elements: int = 4096,
    seed: int = 0,
    shard_grid: tuple[int, ...] = (1, 2, 4, 8, 16),
) -> FigureResult:
    """Auto-planned makespan against the static configuration grid.

    Every registry family (:func:`repro.workloads.programs.optimizer_workload_programs`)
    runs once with ``plan="auto"`` and once per static configuration in
    ``shard_grid`` x optimizer on/off on the pLUTo-BSA engine.  Each row
    records the planner's choice next to the best, worst, and naive
    default (one shard, no optimizer) static makespans, plus the
    planner's predicted-vs-measured error — the analytic model prices
    candidates from the same trace templates execution charges, so the
    error is exactly zero.  Outputs of the auto run are compared bit for
    bit against the default static run.
    """
    from repro.workloads.programs import optimizer_workload_programs

    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    result = FigureResult(
        name="Auto-planner gains",
        description=(
            "Cost-based auto-planning vs the static shard/optimizer grid "
            "(pLUTo-BSA)"
        ),
    )
    for program in optimizer_workload_programs(elements=elements, seed=seed):
        session = program.session
        static: dict[str, float] = {}
        default_run = None
        for shards in shard_grid:
            for optimize in (False, True):
                plan = ExecutionPlan(shards=shards, optimize=optimize)
                run = session.run(program.inputs, engine=engine, plan=plan)
                static[plan.label()] = run.latency_ns
                if shards == 1 and not optimize:
                    default_run = run
        assert default_run is not None
        auto = session.run(program.inputs, engine=engine, plan="auto")
        for name in default_run.outputs:
            if not np.array_equal(default_run.outputs[name], auto.outputs[name]):
                raise AssertionError(
                    f"{program.name}: auto-planned output {name!r} diverged"
                )
        best_label = min(static, key=static.__getitem__)
        worst_label = max(static, key=static.__getitem__)
        report = auto.planner
        result.rows.append(
            {
                "workload": program.name,
                "family": program.family,
                "auto_plan": auto.execution_plan.label(),
                "auto_makespan_ns": auto.latency_ns,
                "best_static": best_label,
                "best_static_makespan_ns": static[best_label],
                "worst_static": worst_label,
                "worst_static_makespan_ns": static[worst_label],
                "default_makespan_ns": default_run.latency_ns,
                "auto_vs_best": (
                    auto.latency_ns / static[best_label]
                    if static[best_label]
                    else 1.0
                ),
                "auto_vs_default": (
                    auto.latency_ns / default_run.latency_ns
                    if default_run.latency_ns
                    else 1.0
                ),
                "candidates": len(report.candidates) if report else 0,
                "prediction_error": (
                    report.prediction_error if report else None
                ),
                "planner_cached": bool(report.cached) if report else False,
            }
        )
    return result


# --------------------------------------------------------------------- #
# Static verification — the verifier over the workload registry
# --------------------------------------------------------------------- #
def figure_static_verification(elements: int = 4096, seed: int = 0) -> FigureResult:
    """Verify every registry workload, as recorded and after optimization.

    Mirrors ``python -m repro.analyze --all-workloads``: each family's
    recorded API pipeline and the optimizer's rewrite of it run through
    the static verifier (:mod:`repro.analyze`), and the rows record the
    call counts alongside the number of error/warning diagnostics —
    all zero for a healthy registry.
    """
    from repro.analyze.verifier import verify_program
    from repro.opt.pipeline import optimize_cached
    from repro.workloads.programs import optimizer_workload_programs

    result = FigureResult(
        name="Static verification",
        description="Registry workloads through the static verifier",
    )
    for program in optimizer_workload_programs(elements=elements, seed=seed):
        recorded = list(program.session.calls)
        optimized = list(optimize_cached(recorded).calls)
        for stage, calls in (("recorded", recorded), ("optimized", optimized)):
            report = verify_program(calls, subject=f"{program.name} ({stage})")
            result.rows.append(
                {
                    "workload": program.name,
                    "family": program.family,
                    "stage": stage,
                    "calls": len(calls),
                    "errors": len(report.errors),
                    "warnings": len(report.warnings),
                    "clean": report.clean,
                }
            )
    return result


# --------------------------------------------------------------------- #
# Figure 14 — subarray-level parallelism scaling
# --------------------------------------------------------------------- #
def figure14_salp_scaling(
    ddr4_subarrays: tuple[int, ...] = (1, 16, 256, 2048),
    threeds_subarrays: tuple[int, ...] = (512, 8192),
    scale: float = 1.0,
) -> FigureResult:
    """Geomean speedup over the CPU for varying subarray-level parallelism."""
    workloads = figure7_workloads()
    result = FigureResult(
        name="Figure 14",
        description="Geomean speedup over the CPU vs. subarray-level parallelism",
    )
    sweeps = [(DDR4, count) for count in ddr4_subarrays] + [
        (THREE_DS, count) for count in threeds_subarrays
    ]
    for memory, subarrays in sweeps:
        configs = {
            design.display_name: PlutoConfig(
                design=design, memory=memory, subarrays=subarrays
            )
            for design in PlutoDesign
        }
        harness = EvaluationHarness(configs=configs)
        speedups: dict[str, list[float]] = {label: [] for label in configs}
        for workload in workloads:
            elements = max(1, int(workload.default_elements * scale))
            evaluation = harness.evaluate(workload, elements)
            for label in configs:
                speedups[label].append(evaluation.speedup_over_cpu(label))
        row = {"memory": memory, "subarrays": subarrays}
        for label, values in speedups.items():
            row[label] = geometric_mean(values)
        result.rows.append(row)
    return result


# --------------------------------------------------------------------- #
# Execution tiers — simulator latency per execution strategy
# --------------------------------------------------------------------- #
def figure_execution_tiers(
    elements: int = 4096,
    workloads: tuple[str, ...] = ("image", "salsa20"),
    rounds: int = 5,
) -> FigureResult:
    """Wall-clock latency of one execution per simulator tier.

    The same compiled serving programs run through the three execution
    strategies — the functional row-sweep oracle, the per-instruction
    interpreted vectorized walk, and the whole-program compiled closure —
    with outputs compared bit for bit across all three.  The compiled
    row is the per-op-Python-overhead gap this repository's JIT tier
    closes; ``benchmarks/test_backend_speed.py`` gates its floor.
    """
    import time

    from repro.api.session import compile_cached_with_key
    from repro.controller.executor import PlutoController
    from repro.workloads.programs import workload_program

    engine = PlutoEngine(PlutoConfig(design=PlutoDesign.BSA))
    tiers = {
        "functional": PlutoController(engine, backend="functional"),
        "interpreted": PlutoController(engine, backend="vectorized", jit=False),
        "compiled": PlutoController(engine, backend="vectorized"),
    }
    result = FigureResult(
        name="Execution tiers",
        description=(
            f"Per-tier simulator latency of the {elements}-element "
            "serving programs"
        ),
    )
    for name in workloads:
        workload = workload_program(name, elements=elements, seed=0)
        compiled, key = compile_cached_with_key(workload.session.calls)
        latencies: dict[str, float] = {}
        outputs: dict[str, dict] = {}
        for tier, controller in tiers.items():
            execution = controller.execute(
                compiled, dict(workload.inputs), structure_key=key
            )  # warm-up: caches, closures
            reps = 1 if tier == "functional" else 30
            best = float("inf")
            for _ in range(1 if tier == "functional" else rounds):
                start = time.perf_counter()
                for _ in range(reps):
                    execution = controller.execute(
                        compiled, dict(workload.inputs), structure_key=key
                    )
                best = min(best, (time.perf_counter() - start) / reps)
            latencies[tier] = best
            outputs[tier] = execution.outputs
        for tier in ("interpreted", "compiled"):
            for output, data in outputs["functional"].items():
                if not np.array_equal(outputs[tier][output], data):
                    raise AssertionError(
                        f"{name}: {tier} output {output!r} diverged from "
                        "the functional oracle"
                    )
        result.rows.append(
            {
                "workload": name,
                "elements": elements,
                "functional_s": latencies["functional"],
                "interpreted_s": latencies["interpreted"],
                "compiled_s": latencies["compiled"],
                "compiled_vs_interpreted": (
                    latencies["interpreted"] / latencies["compiled"]
                ),
                "interpreted_vs_functional": (
                    latencies["functional"] / latencies["interpreted"]
                ),
            }
        )
    return result


# --------------------------------------------------------------------- #
# Worker scaling — the multi-worker serving tier under mixed traffic
# --------------------------------------------------------------------- #
def figure_worker_scaling(
    elements: int = 256,
    per_family: int = 32,
    worker_counts: tuple[int, ...] = (1, 2, 4),
) -> FigureResult:
    """Sustained mixed-structure traffic through the worker pool.

    All six registry families stream through a
    :class:`~repro.serve.pool.PlutoWorkerPool` at each worker count.
    Each row records the wall clock, the aggregate requests/sec, the
    structure-affinity router's family placement, and the *modelled*
    scaling — summed per-worker busy time over the busiest worker —
    which is deterministic and therefore meaningful even on the
    single-core machines where wall clock cannot improve.
    ``benchmarks/test_serving_throughput.py`` gates the floors.
    """
    import time

    from repro.serve import PlutoWorkerPool, fan_out
    from repro.workloads.programs import optimizer_workload_programs

    families = optimizer_workload_programs(elements, 0)
    jobs = [
        (family.session, family.inputs)
        for _ in range(per_family)
        for family in families
    ]
    result = FigureResult(
        name="Worker scaling",
        description=(
            f"Mixed traffic over {len(families)} program families "
            "through the multi-worker serving tier"
        ),
    )
    for workers in worker_counts:
        with PlutoWorkerPool(workers=workers, chunk_size=32) as pool:
            if not pool.wait_ready(120.0):
                raise RuntimeError("worker pool failed to come up")
            start = time.perf_counter()
            served = fan_out(pool, jobs, return_outputs=False)
            wall_s = time.perf_counter() - start
        busy_ns = pool.stats.per_worker_busy_ns
        result.rows.append(
            {
                "workers": workers,
                "requests": len(served),
                "wall_clock_s": wall_s,
                "requests_per_sec": len(served) / wall_s,
                "modelled_scaling": sum(busy_ns) / max(busy_ns),
                "programs_per_worker": list(pool._programs_per_worker),
            }
        )
    return result


# --------------------------------------------------------------------- #
# Latency breakdown — where a served request's wall-clock goes
# --------------------------------------------------------------------- #
def figure_latency_breakdown(
    elements: int = 1024,
    requests: int = 8,
) -> FigureResult:
    """Per-stage latency and energy attribution for every workload family.

    Serves ``requests`` requests of each registry family through the
    async front door with tracing enabled, then reports the mean
    per-stage wall-clock (submit / queue wait / execute, from the span
    trees the observability layer attaches to every served request)
    next to the modelled hardware attribution: DRAM commands, energy in
    picojoules, and refresh overhead.  ``benchmarks/test_obs_overhead.py``
    gates the tracing cost this table relies on staying negligible.
    """
    import asyncio

    from repro.obs.export import stage_summary
    from repro.obs.trace import tracing
    from repro.workloads.programs import workload_program

    async def _serve(program) -> list:
        async with program.session.serve(
            max_queue=max(8, requests)
        ) as service:
            return list(
                await asyncio.gather(
                    *(
                        service.submit(dict(program.inputs))
                        for _ in range(requests)
                    )
                )
            )

    result = FigureResult(
        name="Latency breakdown",
        description=(
            f"Per-stage serving latency and per-request energy of the "
            f"{elements}-element workload programs"
        ),
    )
    families = ("image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops")
    with tracing(True):
        for name in families:
            program = workload_program(name, elements=elements, seed=0)
            served = asyncio.run(_serve(program))
            traces = [
                item.request_trace
                for item in served
                if item.request_trace is not None
            ]
            if len(traces) != requests:
                raise AssertionError(
                    f"{name}: expected {requests} traced requests, "
                    f"got {len(traces)}"
                )
            stages = stage_summary(traces)
            attributes = traces[-1].attributes
            result.rows.append(
                {
                    "workload": name,
                    "elements": elements,
                    "requests": requests,
                    "submit_ns": stages.get("submit", {}).get("mean_ns", 0.0),
                    "queue_wait_ns": stages.get("queue_wait", {}).get(
                        "mean_ns", 0.0
                    ),
                    "execute_ns": stages.get("execute", {}).get("mean_ns", 0.0),
                    "modelled_latency_ns": float(attributes["latency_ns"]),
                    "energy_pj": float(attributes["energy_pj"]),
                    "dram_commands": int(attributes["dram_commands"]),
                    "refresh_overhead_fraction": float(
                        attributes["refresh_overhead_fraction"]
                    ),
                }
            )
    return result

"""Shared evaluation harness.

Runs every workload through the CPU/GPU/FPGA/PnM baselines and the six
pLUTo configurations (three designs x DDR4/3DS) and exposes the speedup and
energy ratios the figures plot.  Serial, non-offloadable work (e.g. the CRC
reduction) is charged at CPU speed using Amdahl's law, as the paper does
(Section 8.2: the CRC serial reduction runs on the CPU or in the HMC logic
layer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.api.session import _LEGACY_UNSET
from repro.baselines.base import BaselineCost
from repro.baselines.pnm import PnmBaseline
from repro.baselines.processor import (
    CPU_XEON_5118,
    FPGA_ZCU102,
    GPU_RTX_3080TI,
    ProcessorBaseline,
)
from repro.core.designs import PlutoDesign
from repro.core.engine import DDR4, THREE_DS, CostReport, PlutoConfig, PlutoEngine
from repro.workloads.base import Workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.session import PlutoSession
    from repro.controller.executor import ExecutionResult
    from repro.plan.execution_plan import ExecutionPlan

__all__ = ["PLUTO_CONFIG_LABELS", "WorkloadResult", "EvaluationHarness", "default_pluto_configs"]


def default_pluto_configs() -> dict[str, PlutoConfig]:
    """The six pLUTo configurations plotted throughout the evaluation."""
    configs: dict[str, PlutoConfig] = {}
    for memory, suffix in ((DDR4, ""), (THREE_DS, "-3DS")):
        for design in (PlutoDesign.GSA, PlutoDesign.BSA, PlutoDesign.GMC):
            configs[f"{design.display_name}{suffix}"] = PlutoConfig(
                design=design, memory=memory
            )
    return configs


#: Canonical configuration label order used in the figures.
PLUTO_CONFIG_LABELS = tuple(default_pluto_configs().keys())


@dataclass
class WorkloadResult:
    """All system costs for one workload at one input size."""

    workload: str
    elements: int
    cpu: BaselineCost
    gpu: BaselineCost
    fpga: BaselineCost
    pnm: BaselineCost
    pluto: dict[str, CostReport] = field(default_factory=dict)
    serial_fraction: float = 0.0

    # ------------------------------------------------------------------ #
    # Latency views
    # ------------------------------------------------------------------ #
    def pluto_latency_ns(self, label: str) -> float:
        """End-to-end pLUTo latency including the Amdahl serial portion."""
        report = self.pluto[label]
        return report.total_latency_ns + self.serial_fraction * self.cpu.latency_ns

    def speedup_over_cpu(self, label: str) -> float:
        """Speedup of one pLUTo configuration over the CPU baseline."""
        return self.cpu.latency_ns / self.pluto_latency_ns(label)

    def speedup_over_fpga(self, label: str) -> float:
        """Speedup of one pLUTo configuration over the FPGA baseline."""
        return self.fpga.latency_ns / self.pluto_latency_ns(label)

    @property
    def gpu_speedup_over_cpu(self) -> float:
        """GPU speedup over the CPU baseline."""
        return self.cpu.latency_ns / self.gpu.latency_ns

    @property
    def pnm_speedup_over_cpu(self) -> float:
        """PnM speedup over the CPU baseline."""
        return self.cpu.latency_ns / self.pnm.latency_ns

    # ------------------------------------------------------------------ #
    # Energy views
    # ------------------------------------------------------------------ #
    def pluto_energy_nj(self, label: str) -> float:
        """pLUTo energy including the serial portion's CPU energy share."""
        report = self.pluto[label]
        return report.total_energy_nj + self.serial_fraction * self.cpu.energy_nj

    def energy_saving_over_cpu(self, label: str) -> float:
        """CPU energy divided by pLUTo energy (higher is better)."""
        return self.cpu.energy_nj / self.pluto_energy_nj(label)

    @property
    def gpu_energy_saving_over_cpu(self) -> float:
        """CPU energy divided by GPU energy."""
        return self.cpu.energy_nj / self.gpu.energy_nj


class EvaluationHarness:
    """Evaluates workloads on every system with consistent settings."""

    def __init__(
        self,
        *,
        configs: dict[str, PlutoConfig] | None = None,
        tfaw_fraction: float = 0.0,
        subarray_override: int | None = None,
        backend: str = "vectorized",
    ) -> None:
        #: Execution backend used for bit-exact program execution
        #: (:meth:`execute_program`); the vectorized NumPy fast path by
        #: default, switchable to the subarray row-sweep path.
        self.backend = backend
        self.cpu = ProcessorBaseline(CPU_XEON_5118)
        self.gpu = ProcessorBaseline(GPU_RTX_3080TI)
        self.fpga = ProcessorBaseline(FPGA_ZCU102)
        self.pnm = PnmBaseline()
        base_configs = configs if configs is not None else default_pluto_configs()
        self.configs: dict[str, PlutoConfig] = {}
        for label, config in base_configs.items():
            self.configs[label] = PlutoConfig(
                design=config.design,
                memory=config.memory,
                subarrays=subarray_override
                if subarray_override is not None
                else config.subarrays,
                tfaw_fraction=tfaw_fraction,
            )
        self.engines = {
            label: PlutoEngine(config) for label, config in self.configs.items()
        }
        #: Warm per-configuration executors (lazy): reusing controllers
        #: and dispatchers across execute_program calls keeps backend LUT
        #: gather arrays, trace templates, and scheduler memos hot.
        self._controllers: dict[object, object] = {}
        self._dispatchers: dict[object, object] = {}

    def evaluate(self, workload: Workload, elements: int | None = None) -> WorkloadResult:
        """Run one workload through every system."""
        recipe = workload.recipe
        if elements is None:
            elements = workload.default_elements
        result = WorkloadResult(
            workload=workload.name,
            elements=elements,
            cpu=self.cpu.evaluate(recipe, elements),
            gpu=self.gpu.evaluate(recipe, elements),
            fpga=self.fpga.evaluate(recipe, elements),
            pnm=self.pnm.evaluate(recipe, elements),
            serial_fraction=recipe.serial_fraction,
        )
        for label, engine in self.engines.items():
            result.pluto[label] = engine.execute(recipe, elements)
        return result

    def evaluate_all(
        self, workloads: list[Workload], elements: int | None = None
    ) -> list[WorkloadResult]:
        """Run a list of workloads through every system."""
        return [self.evaluate(workload, elements) for workload in workloads]

    # ------------------------------------------------------------------ #
    # Bit-exact program execution
    # ------------------------------------------------------------------ #
    def execute_program(
        self,
        session: "PlutoSession",
        inputs: Mapping[str, np.ndarray],
        *,
        plan: "ExecutionPlan | str | None" = None,
        shards: object = _LEGACY_UNSET,
        optimize: object = _LEGACY_UNSET,
    ) -> "dict[str, ExecutionResult]":
        """Execute an API program bit-exactly on every configured engine.

        Unlike :meth:`evaluate` (which costs an analytical recipe), this
        compiles the session's program once (cached by structure) and runs
        it through the controller on each of the six pLUTo configurations,
        so outputs *and* per-configuration command traces come from real
        program execution.  The harness backend (vectorized by default)
        makes this cheap enough to run across all configurations.

        ``plan`` selects the execution configuration exactly as in
        :meth:`PlutoSession.run` — sharded plans run bank-parallel
        through the :class:`~repro.controller.dispatch.ParallelDispatcher`
        (``latency_ns`` becomes the scheduler-derived makespan),
        hierarchical plans spread over channels and ranks, and
        ``plan="auto"`` asks the cost-based planner *per engine*, so
        each configuration gets the plan that is cheapest on *its*
        geometry (the chosen plan rides on ``result.execution_plan``
        with the :class:`~repro.plan.PlannerReport` on
        ``result.planner``).  Controllers and dispatchers are reused
        across calls, so repeated evaluations run on warm LUT,
        trace-template, and scheduler-memo caches.

        Plans with ``optimize=True`` run the program optimizer
        (:mod:`repro.opt`) once — the rewrite is engine-independent —
        and every configuration then compiles and executes the optimized
        program; each result carries the shared report as
        ``.optimization``.  The deprecated ``shards=`` / ``optimize=``
        keywords build the equivalent plan with a ``DeprecationWarning``.
        """
        import warnings

        from repro.api.session import compile_cached_with_key
        from repro.backend.base import resolve_backend
        from repro.controller.dispatch import ParallelDispatcher
        from repro.controller.executor import PlutoController
        from repro.controller.hierarchy import HierarchicalDispatcher
        from repro.errors import ConfigurationError
        from repro.opt.pipeline import optimize_cached
        from repro.plan.execution_plan import ExecutionPlan, resolve_plan
        from repro.plan.planner import plan_program

        legacy: dict[str, object] = {}
        if shards is not _LEGACY_UNSET:
            legacy["shards"] = shards
        if optimize is not _LEGACY_UNSET:
            legacy["optimize"] = optimize
        if legacy:
            if plan is not None:
                raise ConfigurationError(
                    "execute_program() got both plan= and the deprecated "
                    f"{sorted(legacy)} keyword(s); pass only plan="
                )
            names = ", ".join(f"{name}=" for name in sorted(legacy))
            warnings.warn(
                f"execute_program({names}) is deprecated; pass "
                "plan=ExecutionPlan(...) (or plan='auto') instead",
                DeprecationWarning,
                stacklevel=2,
            )
            plan = ExecutionPlan(
                shards=legacy.get("shards"),  # type: ignore[arg-type]
                optimize=legacy.get("optimize"),  # type: ignore[arg-type]
            )
        resolved = resolve_plan(plan)
        supports_batched = resolve_backend(self.backend).supports_batched

        calls_plain = list(session.calls)
        optimized_program = None

        def calls_for(want_optimize: "bool | None") -> "tuple[list, object]":
            nonlocal optimized_program
            if want_optimize:
                if optimized_program is None:
                    optimized_program = optimize_cached(calls_plain)
                return list(optimized_program.calls), optimized_program.report
            return calls_plain, None

        results: dict[str, ExecutionResult] = {}
        for label, engine in self.engines.items():
            chosen, planner_report = resolved, None
            if resolved.is_auto:
                planned = plan_program(
                    calls_plain,
                    engine,
                    request=resolved,
                    modes=("single", "banks", "hierarchy"),
                    supports_batched=supports_batched,
                    subject=f"harness program on {label}",
                )
                chosen, planner_report = planned.plan, planned.report
            calls, report = calls_for(chosen.optimize)
            jit = chosen.tier != "interpreted"
            if chosen.hierarchical:
                key = ("hierarchy", label, chosen.channels, chosen.ranks, jit)
                dispatcher = self._dispatchers.get(key)
                if dispatcher is None:
                    dispatcher = HierarchicalDispatcher(
                        engine,
                        backend=self.backend,
                        jit=jit,
                        channels=chosen.channels,
                        ranks=chosen.ranks,
                    )
                    self._dispatchers[key] = dispatcher
                result = dispatcher.execute(calls, inputs, shards=chosen.shards)
            elif chosen.effective_shards > 1:
                key = ("banks", label, jit)
                dispatcher = self._dispatchers.get(key)
                if dispatcher is None:
                    dispatcher = ParallelDispatcher(
                        engine, backend=self.backend, jit=jit
                    )
                    self._dispatchers[key] = dispatcher
                result = dispatcher.execute(
                    calls, inputs, shards=chosen.effective_shards
                )
            else:
                controller = self._controllers.get((label, jit))
                if controller is None:
                    controller = PlutoController(
                        engine, backend=self.backend, jit=jit
                    )
                    self._controllers[(label, jit)] = controller
                compiled, structure_key = compile_cached_with_key(calls)
                result = controller.execute(
                    compiled, dict(inputs), structure_key=structure_key
                )
            result.optimization = report
            result.execution_plan = chosen
            if planner_report is not None:
                result.planner = planner_report.with_measured(result.latency_ns)
            results[label] = result
        return results

"""Plain-text and Markdown rendering of reproduced figures and tables."""

from __future__ import annotations

from typing import Iterable

from repro.evaluation.figures import FigureResult
from repro.evaluation.tables import TableResult

__all__ = ["format_rows", "render_result", "render_markdown_table"]


def _format_value(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)


def format_rows(rows: list[dict]) -> str:
    """Align a list of dict rows into a fixed-width text table."""
    if not rows:
        return "(no rows)"
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    rendered = [[_format_value(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(column), *(len(line[i]) for line in rendered))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = "\n".join(
        "  ".join(line[i].ljust(widths[i]) for i in range(len(columns)))
        for line in rendered
    )
    return "\n".join([header, separator, body])


def render_result(result: FigureResult | TableResult) -> str:
    """Render a reproduced figure/table with its title and description."""
    title = f"{result.name}: {result.description}"
    return f"{title}\n{'=' * len(title)}\n{format_rows(result.rows)}\n"


def render_markdown_table(rows: list[dict], columns: Iterable[str] | None = None) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    columns = list(columns)
    lines = [
        "| " + " | ".join(columns) + " |",
        "|" + "|".join("---" for _ in columns) + "|",
    ]
    for row in rows:
        lines.append(
            "| " + " | ".join(_format_value(row.get(column)) for column in columns) + " |"
        )
    return "\n".join(lines)

"""One function per evaluation table of the paper (Tables 1, 5, 6, 7)."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.prior_pum import PRIOR_PUM_SYSTEMS
from repro.core.analytical import PlutoCostModel
from repro.core.area import AreaModel
from repro.core.designs import DESIGN_PROPERTIES, PlutoDesign
from repro.dram.energy import DDR4_ENERGY
from repro.dram.timing import DDR4_2400
from repro.nn.inference import table7_configurations

__all__ = [
    "TableResult",
    "table01_design_comparison",
    "table05_area_breakdown",
    "table06_prior_pum_comparison",
    "table07_qnn_inference",
]


@dataclass
class TableResult:
    """A reproduced table: named rows of values."""

    name: str
    description: str
    rows: list[dict] = field(default_factory=list)

    def column(self, key: str) -> list:
        """Extract one column across all rows."""
        return [row[key] for row in self.rows]


# --------------------------------------------------------------------- #
# Table 1 — design comparison
# --------------------------------------------------------------------- #
def table01_design_comparison(lut_entries: int = 256) -> TableResult:
    """Qualitative attributes plus evaluated query latency/energy per design."""
    model = PlutoCostModel(DDR4_2400, DDR4_ENERGY, 8192)
    result = TableResult(
        name="Table 1",
        description=f"pLUTo design comparison (N = {lut_entries} LUT elements)",
    )
    for design in (PlutoDesign.BSA, PlutoDesign.GSA, PlutoDesign.GMC):
        properties = DESIGN_PROPERTIES[design]
        result.rows.append(
            {
                "design": design.display_name,
                "area_efficiency": properties.area_class,
                "throughput": properties.throughput_class,
                "energy_efficiency": properties.energy_class,
                "destructive_reads": properties.destructive_reads,
                "lut_load_per_query": properties.lut_load_per_query,
                "query_latency_ns": model.query_latency_ns(design, lut_entries),
                "query_energy_nj": model.query_energy_nj(design, lut_entries),
            }
        )
    return result


# --------------------------------------------------------------------- #
# Table 5 — area breakdown
# --------------------------------------------------------------------- #
def table05_area_breakdown() -> TableResult:
    """Per-component DRAM chip area of the baseline and the three designs."""
    model = AreaModel()
    result = TableResult(
        name="Table 5", description="DRAM chip area breakdown (mm^2)"
    )
    baseline_total = model.baseline.total
    for label, breakdown in model.table5().items():
        row = {"configuration": label}
        row.update(breakdown.as_dict())
        row["Total"] = breakdown.total
        row["Overhead"] = breakdown.total / baseline_total - 1.0
        result.rows.append(row)
    return result


# --------------------------------------------------------------------- #
# Table 6 — comparison against prior PuM architectures
# --------------------------------------------------------------------- #
def table06_prior_pum_comparison(pluto_subarrays: int = 4) -> TableResult:
    """Per-operation latency of Ambit/SIMDRAM/LAcc/DRISA/pLUTo-BSA.

    The pLUTo-BSA column assumes 4-subarray parallelism, matching the
    table's normalisation note.
    """
    model = PlutoCostModel(DDR4_2400, DDR4_ENERGY, 8192)
    merge_overhead_ns = model.bitwise_latency_ns(1) + model.shift_latency_ns(1)
    result = TableResult(
        name="Table 6",
        description="Operation latency (ns) for prior PuM designs and pLUTo-BSA",
    )

    def pluto_query_ns(lut_entries: int, sweeps: int = 1, merge: bool = True) -> float:
        latency = sweeps * model.query_latency_ns(PlutoDesign.BSA, lut_entries)
        if merge:
            latency += merge_overhead_ns
        return latency / pluto_subarrays

    operations: list[tuple[str, str, object, float | None]] = []
    for bitwise in ("not", "and", "or", "xor", "xnor"):
        operations.append(
            (
                bitwise.upper(),
                "bitwise",
                bitwise,
                pluto_query_ns(4, merge=bitwise != "not"),
            )
        )
    operations.append(("4-bit Addition", "add", 4, pluto_query_ns(256)))
    operations.append(("4-bit Multiplication", "mul", 4, pluto_query_ns(256)))
    operations.append(("4-bit Bit Counting", "bitcount", 4, pluto_query_ns(16, merge=False)))
    operations.append(("8-bit Bit Counting", "bitcount", 8, pluto_query_ns(256, merge=False)))
    operations.append(("6-bit to 2-bit LUT Query", "lut", 6, pluto_query_ns(64, merge=False)))
    operations.append(("8-bit to 8-bit LUT Query", "lut", 8, pluto_query_ns(256, merge=False)))
    operations.append(("8-bit Binarization", "lut", 8, pluto_query_ns(256, merge=False)))
    operations.append(("8-bit Exponentiation", "lut", 8, pluto_query_ns(256, merge=False)))

    for label, kind, parameter, pluto_ns in operations:
        row: dict = {"operation": label, "pLUTo-BSA": pluto_ns}
        for system in PRIOR_PUM_SYSTEMS:
            if kind == "bitwise":
                value = system.bitwise_latency_ns(str(parameter))
            elif kind == "add":
                value = system.addition_latency_ns(int(parameter))
            elif kind == "mul":
                value = system.multiplication_latency_ns(int(parameter))
            elif kind == "bitcount":
                value = system.bitcount_latency_ns(int(parameter))
            else:  # arbitrary LUT queries: unsupported by prior PuM designs
                value = None
            row[system.name] = value
        result.rows.append(row)

    # Physical characteristics row (capacity / area / power).
    result.rows.append(
        {
            "operation": "Area (mm^2)",
            "pLUTo-BSA": 70.5,
            **{system.name: system.area_mm2 for system in PRIOR_PUM_SYSTEMS},
        }
    )
    result.rows.append(
        {
            "operation": "Power (W)",
            "pLUTo-BSA": 11.0,
            **{system.name: system.power_w for system in PRIOR_PUM_SYSTEMS},
        }
    )
    return result


# --------------------------------------------------------------------- #
# Table 7 — quantized LeNet-5 inference
# --------------------------------------------------------------------- #
def table07_qnn_inference() -> TableResult:
    """Inference time and energy of 1-bit and 4-bit LeNet-5 on all systems."""
    result = TableResult(
        name="Table 7",
        description="LeNet-5 inference time (us) and energy (mJ)",
    )
    for model in table7_configurations():
        for row in model.table7_rows():
            result.rows.append(
                {
                    "bits": row.bits,
                    "system": row.system,
                    "time_us": row.latency_us,
                    "energy_mj": row.energy_mj,
                }
            )
    return result

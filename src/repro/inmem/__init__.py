"""Prior Processing-using-Memory primitives that pLUTo builds on.

These are the enhanced-DRAM mechanisms of Section 2.2:

* :mod:`repro.inmem.rowclone` — RowClone-FPM intra-subarray row copy.
* :mod:`repro.inmem.lisa` — LISA-RBM inter-subarray row-buffer movement.
* :mod:`repro.inmem.ambit` — Ambit bulk bitwise MAJ/AND/OR/NOT.
* :mod:`repro.inmem.drisa` — DRISA intra-row bit/byte shifting.
* :mod:`repro.inmem.salp` — MASA-style subarray-level parallelism.
"""

from repro.inmem.ambit import AmbitUnit
from repro.inmem.drisa import DrisaShifter
from repro.inmem.lisa import LisaUnit
from repro.inmem.rowclone import RowCloneUnit
from repro.inmem.salp import SalpScheduler, salp_speedup

__all__ = [
    "AmbitUnit",
    "DrisaShifter",
    "LisaUnit",
    "RowCloneUnit",
    "SalpScheduler",
    "salp_speedup",
]

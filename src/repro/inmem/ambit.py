"""Ambit: in-DRAM bulk bitwise operations.

Ambit performs row-granularity bitwise operations with triple-row
activation (TRA): simultaneously activating three rows computes the bitwise
majority of their contents on the bitlines.  With one operand row fixed to
all-zeros or all-ones, MAJ reduces to AND or OR; NOT uses a dual-contact
cell row.  Operand rows are first copied into designated compute rows with
RowClone, so a full AND/OR costs several ACT-ACT-PRE (AAP) sequences.

The functional model operates directly on row byte vectors; the cost model
counts TRA/ROWCLONE commands consistent with Ambit's command sequences
(and with the latencies reported in Table 6).
"""

from __future__ import annotations

import numpy as np

from repro.dram.commands import CommandTrace, CommandType
from repro.dram.subarray import Subarray
from repro.errors import ConfigurationError

__all__ = ["AmbitUnit"]


class AmbitUnit:
    """Functional + command-level model of Ambit bulk bitwise operations."""

    #: Number of AAP (ACT-ACT-PRE) sequences per operation, following the
    #: Ambit paper's command breakdown: AND/OR need 4 AAPs (2 operand
    #: copies, 1 control-row init, 1 TRA+copy-back), NOT needs 2, XOR/XNOR
    #: are composed from AND/OR/NOT and need ~7.
    AAP_COUNTS = {"not": 2, "and": 4, "or": 4, "nand": 5, "nor": 5, "xor": 7, "xnor": 7, "maj": 3}

    def __init__(self, trace: CommandTrace | None = None) -> None:
        self.trace = trace

    # ------------------------------------------------------------------ #
    # Functional row-vector operations
    # ------------------------------------------------------------------ #
    def majority(self, a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
        """Bitwise majority of three rows (the TRA primitive)."""
        a, b, c = (np.asarray(x, dtype=np.uint8) for x in (a, b, c))
        self._check_same_shape(a, b)
        self._check_same_shape(a, c)
        self._record("maj")
        return (a & b) | (b & c) | (a & c)

    def bitwise_and(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bulk AND via MAJ(a, b, 0)."""
        self._record("and")
        return np.asarray(a, np.uint8) & np.asarray(b, np.uint8)

    def bitwise_or(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bulk OR via MAJ(a, b, 1)."""
        self._record("or")
        return np.asarray(a, np.uint8) | np.asarray(b, np.uint8)

    def bitwise_not(self, a: np.ndarray) -> np.ndarray:
        """Bulk NOT via the dual-contact cell row."""
        self._record("not")
        return np.bitwise_not(np.asarray(a, dtype=np.uint8))

    def bitwise_xor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bulk XOR composed from AND/OR/NOT sequences."""
        self._record("xor")
        return np.asarray(a, np.uint8) ^ np.asarray(b, np.uint8)

    def bitwise_xnor(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Bulk XNOR composed from AND/OR/NOT sequences."""
        self._record("xnor")
        return np.bitwise_not(np.asarray(a, np.uint8) ^ np.asarray(b, np.uint8))

    # ------------------------------------------------------------------ #
    # In-subarray operation (rows addressed by index)
    # ------------------------------------------------------------------ #
    def operate_rows(
        self,
        subarray: Subarray,
        operation: str,
        source_rows: list[int],
        destination_row: int,
    ) -> np.ndarray:
        """Apply a bitwise operation to rows of a subarray, store the result."""
        operation = operation.lower()
        operands = [subarray.peek_row(row) for row in source_rows]
        if operation == "not":
            if len(operands) != 1:
                raise ConfigurationError("NOT takes exactly one source row")
            result = self.bitwise_not(operands[0])
        elif operation in ("and", "or", "xor", "xnor", "nand", "nor"):
            if len(operands) != 2:
                raise ConfigurationError(f"{operation.upper()} takes two source rows")
            if operation == "and":
                result = self.bitwise_and(*operands)
            elif operation == "or":
                result = self.bitwise_or(*operands)
            elif operation == "xor":
                result = self.bitwise_xor(*operands)
            elif operation == "xnor":
                result = self.bitwise_xnor(*operands)
            elif operation == "nand":
                result = self.bitwise_not(self.bitwise_and(*operands))
            else:
                result = self.bitwise_not(self.bitwise_or(*operands))
        elif operation == "maj":
            if len(operands) != 3:
                raise ConfigurationError("MAJ takes three source rows")
            result = self.majority(*operands)
        else:
            raise ConfigurationError(f"unsupported Ambit operation: {operation}")
        subarray.load_row(destination_row, result)
        return result

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def command_count(self, operation: str) -> int:
        """Number of AAP sequences an operation requires."""
        operation = operation.lower()
        if operation not in self.AAP_COUNTS:
            raise ConfigurationError(f"unsupported Ambit operation: {operation}")
        return self.AAP_COUNTS[operation]

    def _record(self, operation: str) -> None:
        if self.trace is None:
            return
        for i in range(self.command_count(operation)):
            self.trace.add(CommandType.TRA, meta=f"ambit {operation} aap {i + 1}")

    @staticmethod
    def _check_same_shape(a: np.ndarray, b: np.ndarray) -> None:
        if a.shape != b.shape:
            raise ConfigurationError(f"row shapes differ: {a.shape} vs {b.shape}")

"""DRISA-style intra-row shifting.

DRISA adds shift circuitry to the DRAM array so the contents of a row can
be shifted by 1 bit or by 8 bits (one byte) per ACT-ACT-PRE command
sequence.  pLUTo uses these shifts to align operands before merging them
into LUT indices (Section 6.3).

The functional model shifts the *packed row* interpreted as a single long
little-endian bit vector, which matches the element packing used by
:func:`repro.utils.bitops.pack_elements`: shifting the row left by ``k``
bits shifts every element's bits towards higher element-local positions,
exactly what operand alignment needs when elements are ``k``-bit wide and
stored contiguously.
"""

from __future__ import annotations

import numpy as np

from repro.dram.commands import CommandTrace, CommandType
from repro.errors import ConfigurationError

__all__ = ["DrisaShifter"]


class DrisaShifter:
    """Functional + command-level model of DRISA shifting."""

    #: Shift amounts supported natively per command.
    NATIVE_STEPS = (1, 8)

    def __init__(self, trace: CommandTrace | None = None) -> None:
        self.trace = trace

    # ------------------------------------------------------------------ #
    # Cost model
    # ------------------------------------------------------------------ #
    def commands_for(self, bits: int) -> int:
        """Number of shift commands needed for a ``bits``-bit shift.

        DRISA shifts by 1 or 8 bits per command; a shift by ``bits`` uses
        as many byte shifts as possible plus single-bit shifts for the rest.
        """
        if bits < 0:
            raise ConfigurationError("shift amount must be non-negative")
        return bits // 8 + bits % 8

    # ------------------------------------------------------------------ #
    # Functional shifts on packed rows
    # ------------------------------------------------------------------ #
    def shift_row_left(self, row: np.ndarray, bits: int) -> np.ndarray:
        """Shift a packed row left (towards higher bit positions) by ``bits``."""
        return self._shift(row, bits, left=True)

    def shift_row_right(self, row: np.ndarray, bits: int) -> np.ndarray:
        """Shift a packed row right (towards lower bit positions) by ``bits``."""
        return self._shift(row, bits, left=False)

    def shift_elements_left(
        self, row: np.ndarray, bits: int, element_bits: int, count: int
    ) -> np.ndarray:
        """Shift each packed element left by ``bits`` within its own field.

        This is the element-wise alignment operation the compiler inserts:
        each ``element_bits``-wide field is shifted independently (bits
        shifted beyond the field are dropped), leaving neighbouring elements
        untouched.
        """
        from repro.utils.bitops import mask_of, pack_elements, unpack_elements

        if bits < 0:
            raise ConfigurationError("shift amount must be non-negative")
        values = unpack_elements(row, element_bits, count)
        shifted = (values << np.uint64(bits)) & np.uint64(mask_of(element_bits))
        self._record(bits)
        return pack_elements(shifted, element_bits, row.size)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    def _shift(self, row: np.ndarray, bits: int, *, left: bool) -> np.ndarray:
        if bits < 0:
            raise ConfigurationError("shift amount must be non-negative")
        row = np.asarray(row, dtype=np.uint8)
        bit_array = np.unpackbits(row, bitorder="little")
        shifted = np.zeros_like(bit_array)
        if bits < bit_array.size:
            if left:
                shifted[bits:] = bit_array[: bit_array.size - bits]
            else:
                shifted[: bit_array.size - bits] = bit_array[bits:]
        self._record(bits)
        return np.packbits(shifted, bitorder="little")

    def _record(self, bits: int) -> None:
        if self.trace is None:
            return
        for i in range(self.commands_for(bits)):
            self.trace.add(CommandType.SHIFT, meta=f"drisa shift step {i + 1}")

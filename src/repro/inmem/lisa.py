"""LISA-RBM: inter-subarray row-buffer movement.

LISA links neighbouring subarrays in a bank with isolation transistors so
the contents of one local row buffer can be driven onto the next subarray's
bitlines, moving a whole row between subarrays without using the memory
channel.  pLUTo uses it (a) to copy the FF-buffer / query output into the
destination subarray's row buffer and (b) to reload LUTs in pLUTo-GSA.

This module models a hop-by-hop row move between two subarrays in the same
bank.  Each hop costs one ``LISA_RBM`` command.
"""

from __future__ import annotations

import numpy as np

from repro.dram.bank import Bank
from repro.dram.commands import CommandTrace, CommandType
from repro.errors import ConfigurationError

__all__ = ["LisaUnit"]


class LisaUnit:
    """Functional + command-level model of LISA row-buffer movement."""

    def __init__(self, trace: CommandTrace | None = None) -> None:
        self.trace = trace

    def hops_between(self, source_subarray: int, destination_subarray: int) -> int:
        """Number of LISA hops needed between two subarrays of a bank."""
        return abs(destination_subarray - source_subarray)

    def move_row(
        self,
        bank: Bank,
        source_subarray: int,
        source_row: int,
        destination_subarray: int,
        destination_row: int,
    ) -> np.ndarray:
        """Move one row across subarrays of ``bank``; returns the row data.

        The source row is read through a normal activation, then the data is
        relayed buffer-to-buffer across intermediate subarrays and finally
        written into the destination row.
        """
        if source_subarray == destination_subarray:
            raise ConfigurationError(
                "LISA moves rows between different subarrays; use RowClone "
                "for intra-subarray copies"
            )
        source = bank.subarray(source_subarray)
        destination = bank.subarray(destination_subarray)
        data = source.activate(source_row)
        source.precharge()

        hops = self.hops_between(source_subarray, destination_subarray)
        if self.trace is not None:
            for hop in range(hops):
                self.trace.add(
                    CommandType.LISA_RBM,
                    bank=bank.index,
                    subarray=source_subarray + np.sign(
                        destination_subarray - source_subarray
                    ) * (hop + 1),
                    meta=f"lisa hop {hop + 1}/{hops}",
                )
        destination.activate(destination_row)
        destination.write_buffer(data)
        destination.precharge()
        return data

    def broadcast_row(
        self,
        bank: Bank,
        source_subarray: int,
        source_row: int,
        destinations: list[tuple[int, int]],
    ) -> None:
        """Copy one row into several (subarray, row) destinations.

        Used when replicating a LUT across multiple pLUTo-enabled subarrays
        for subarray-level parallelism.
        """
        for destination_subarray, destination_row in destinations:
            self.move_row(
                bank,
                source_subarray,
                source_row,
                destination_subarray,
                destination_row,
            )

"""RowClone-FPM: intra-subarray bulk data copy.

RowClone Fast Parallel Mode copies one DRAM row onto another row of the
*same* subarray with two back-to-back activations: the source row is
activated (filling the row buffer), then the destination row's wordline is
asserted while the row buffer still drives the bitlines, overwriting the
destination cells.  The cost is one ACT-ACT-PRE sequence.
"""

from __future__ import annotations

from repro.dram.commands import CommandTrace, CommandType
from repro.dram.subarray import Subarray
from repro.errors import ConfigurationError

__all__ = ["RowCloneUnit"]


class RowCloneUnit:
    """Functional + command-level model of RowClone-FPM."""

    def __init__(self, trace: CommandTrace | None = None) -> None:
        self.trace = trace

    def copy(self, subarray: Subarray, source_row: int, destination_row: int) -> None:
        """Copy ``source_row`` onto ``destination_row`` within ``subarray``."""
        if source_row == destination_row:
            raise ConfigurationError("RowClone source and destination must differ")
        if not subarray.is_precharged:
            raise ConfigurationError(
                "RowClone requires the subarray to start precharged"
            )
        # First activation: source row into the row buffer.
        data = subarray.activate(source_row)
        # Second activation is modelled by writing the buffer contents into
        # the destination row while the buffer is still latched.
        subarray.load_row(destination_row, data)
        subarray.precharge()
        if self.trace is not None:
            self.trace.add(
                CommandType.ROWCLONE,
                subarray=subarray.index,
                row=destination_row,
                meta=f"rowclone {source_row}->{destination_row}",
            )

    def initialize(self, subarray: Subarray, zero_row: int, destination_row: int) -> None:
        """RowClone-based bulk zero-initialisation (copy from a reserved zero row)."""
        self.copy(subarray, zero_row, destination_row)

"""Subarray-level parallelism (MASA / SALP).

MASA overlaps accesses to different subarrays of the same bank, letting
multiple subarrays keep rows open and operate concurrently.  For pLUTo this
means many Row Sweeps can proceed in parallel (Section 5.5); the achievable
parallelism is bounded by the tFAW activation-rate constraint (Section 8.7).

Two views are provided:

* :func:`salp_speedup` — the first-order model used in the figures:
  performance scales linearly with the number of parallel subarrays, then
  is derated by the tFAW activation-rate ceiling.
* :class:`SalpScheduler` — an event-based model that interleaves per-
  subarray activation streams under the tFAW sliding window, used to
  validate the first-order model in tests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from repro.dram.timing import TimingParameters
from repro.errors import ConfigurationError

__all__ = ["salp_speedup", "SalpScheduler", "SweepRequest"]


def salp_speedup(
    subarrays: int,
    timing: TimingParameters,
    *,
    act_interval_ns: float | None = None,
    tfaw_fraction: float = 0.0,
) -> float:
    """First-order speedup of running ``subarrays`` sweeps in parallel.

    Without a tFAW constraint the speedup is exactly ``subarrays``.  With a
    constraint, the aggregate activation rate across all subarrays cannot
    exceed ``4 / tFAW``; the speedup saturates at the ratio between that
    ceiling and a single subarray's activation rate.

    Parameters
    ----------
    subarrays:
        Degree of subarray-level parallelism.
    timing:
        DRAM timing parameters (used for the per-subarray activation rate).
    act_interval_ns:
        Time between consecutive activations of one sweep; defaults to the
        BSA spacing (tRCD + tRP).
    tfaw_fraction:
        Fraction of the nominal tFAW to enforce (0 disables the constraint,
        matching the paper's default "unthrottled" configuration).
    """
    if subarrays <= 0:
        raise ConfigurationError("subarray count must be positive")
    if act_interval_ns is None:
        act_interval_ns = timing.t_rcd + timing.t_rp
    if act_interval_ns <= 0:
        raise ConfigurationError("activation interval must be positive")
    ideal = float(subarrays)
    effective_tfaw = timing.t_faw * tfaw_fraction
    if effective_tfaw <= 0:
        return ideal
    per_subarray_rate = 1.0 / act_interval_ns
    ceiling_rate = 4.0 / effective_tfaw
    max_parallelism = ceiling_rate / per_subarray_rate
    return min(ideal, max(1.0, max_parallelism))


@dataclass(frozen=True)
class SweepRequest:
    """One subarray's share of a parallel Row Sweep."""

    subarray: int
    activations: int
    act_interval_ns: float


class SalpScheduler:
    """Event-based interleaving of parallel activation streams under tFAW."""

    def __init__(self, timing: TimingParameters, *, tfaw_fraction: float = 1.0) -> None:
        self.timing = timing
        self.tfaw_ns = timing.t_faw * tfaw_fraction

    def simulate(self, requests: list[SweepRequest]) -> float:
        """Return the makespan (ns) of executing all requests concurrently."""
        if not requests:
            return 0.0
        for request in requests:
            if request.activations <= 0 or request.act_interval_ns <= 0:
                raise ConfigurationError("requests need positive counts/intervals")

        # Each stream wants to issue its next ACT at `ready`; the global
        # tFAW window may push it later.  A min-heap on ready time gives the
        # interleaving a real controller would produce.
        recent_acts: list[float] = []
        heap: list[tuple[float, int, int]] = []  # (ready, stream, remaining)
        for index, request in enumerate(requests):
            heapq.heappush(heap, (0.0, index, request.activations))
        finish = 0.0
        while heap:
            ready, index, remaining = heapq.heappop(heap)
            issue = ready
            if self.tfaw_ns > 0 and len(recent_acts) >= 4:
                issue = max(issue, recent_acts[-4] + self.tfaw_ns)
            recent_acts.append(issue)
            if len(recent_acts) > 8:
                recent_acts = recent_acts[-8:]
            request = requests[index]
            completion = issue + request.act_interval_ns
            finish = max(finish, completion)
            if remaining > 1:
                heapq.heappush(heap, (completion, index, remaining - 1))
        return finish

    def relative_performance(self, activations: int, subarrays: int) -> float:
        """Performance of a parallel sweep relative to the unthrottled case."""
        interval = self.timing.t_rcd + self.timing.t_rp
        requests = [
            SweepRequest(subarray=i, activations=activations, act_interval_ns=interval)
            for i in range(subarrays)
        ]
        throttled = self.simulate(requests)
        unthrottled = SalpScheduler(self.timing, tfaw_fraction=0.0).simulate(requests)
        if throttled <= 0:
            return 1.0
        return unthrottled / throttled

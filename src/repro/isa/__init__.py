"""The pLUTo ISA extension (Section 6.1)."""

from repro.isa.instructions import (
    BitwiseKind,
    Instruction,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
    ShiftDirection,
)
from repro.isa.program import PlutoProgram
from repro.isa.registers import RegisterFile, RowRegister, SubarrayRegister

__all__ = [
    "BitwiseKind",
    "Instruction",
    "PlutoBitShift",
    "PlutoBitwise",
    "PlutoByteShift",
    "PlutoMove",
    "PlutoOp",
    "PlutoRowAlloc",
    "PlutoSubarrayAlloc",
    "ShiftDirection",
    "PlutoProgram",
    "RegisterFile",
    "RowRegister",
    "SubarrayRegister",
]

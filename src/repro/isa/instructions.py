"""pLUTo ISA extension instructions (Table 2).

Each instruction is an immutable dataclass; :class:`Instruction` is the
common base.  Instructions reference operands through the register objects
of :mod:`repro.isa.registers`, keeping programs symbolic until the
controller's allocation table binds them to physical rows/subarrays.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.isa.registers import RowRegister, SubarrayRegister

__all__ = [
    "Instruction",
    "PlutoRowAlloc",
    "PlutoSubarrayAlloc",
    "PlutoOp",
    "BitwiseKind",
    "PlutoBitwise",
    "ShiftDirection",
    "PlutoBitShift",
    "PlutoByteShift",
    "PlutoMove",
]


class BitwiseKind(enum.Enum):
    """Bitwise logic operations supported in-DRAM (from Ambit)."""

    NOT = "not"
    AND = "and"
    OR = "or"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"


class ShiftDirection(enum.Enum):
    """Shift directions supported by DRISA-style shifting."""

    LEFT = "l"
    RIGHT = "r"


@dataclass(frozen=True)
class Instruction:
    """Base class for all pLUTo ISA instructions."""

    @property
    def mnemonic(self) -> str:
        """Assembly mnemonic (subclasses override)."""
        raise NotImplementedError

    def render(self) -> str:
        """Assembly-style rendering used in program listings."""
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


@dataclass(frozen=True)
class PlutoRowAlloc(Instruction):
    """``pluto_row_alloc dst, size, bitwidth`` — allocate input/output rows."""

    destination: RowRegister
    size_elements: int
    bit_width: int

    def __post_init__(self) -> None:
        if self.size_elements <= 0 or self.bit_width <= 0:
            raise ConfigurationError("pluto_row_alloc needs positive size/bitwidth")

    @property
    def mnemonic(self) -> str:
        return "pluto_row_alloc"

    def render(self) -> str:
        return (
            f"{self.mnemonic} {self.destination.name}, "
            f"{self.size_elements}, {self.bit_width}"
        )


@dataclass(frozen=True)
class PlutoSubarrayAlloc(Instruction):
    """``pluto_subarray_alloc dst, num_rows, lut_file`` — allocate a LUT subarray."""

    destination: SubarrayRegister
    num_rows: int
    lut_name: str

    def __post_init__(self) -> None:
        if self.num_rows <= 0:
            raise ConfigurationError("pluto_subarray_alloc needs a positive row count")

    @property
    def mnemonic(self) -> str:
        return "pluto_subarray_alloc"

    def render(self) -> str:
        return (
            f"{self.mnemonic} {self.destination.name}, {self.num_rows}, "
            f"\"{self.lut_name}\""
        )


@dataclass(frozen=True)
class PlutoOp(Instruction):
    """``pluto_op dst, src, lut_subarr, lut_size, lut_bitw`` — the LUT query."""

    destination: RowRegister
    source: RowRegister
    lut_subarray: SubarrayRegister
    lut_size: int
    lut_bit_width: int

    def __post_init__(self) -> None:
        if self.lut_size <= 0:
            raise ConfigurationError("pluto_op needs a positive LUT size")
        if self.lut_size & (self.lut_size - 1):
            raise ConfigurationError(
                f"pluto_op LUT size must be a power of two, got {self.lut_size}"
            )
        if self.lut_bit_width <= 0:
            raise ConfigurationError("pluto_op needs a positive LUT element width")
        index_bits = (self.lut_size - 1).bit_length()
        if self.lut_bit_width < index_bits:
            raise ConfigurationError(
                "pluto_op LUT element width must be >= the index width "
                f"({self.lut_bit_width} < {index_bits}); zero-pad the inputs"
            )

    @property
    def mnemonic(self) -> str:
        return "pluto_op"

    def render(self) -> str:
        return (
            f"{self.mnemonic} {self.destination.name}, {self.source.name}, "
            f"{self.lut_subarray.name}, {self.lut_size}, {self.lut_bit_width}"
        )


@dataclass(frozen=True)
class PlutoBitwise(Instruction):
    """``pluto_{not,and,or,...} dst, src1[, src2]`` — Ambit bulk bitwise ops."""

    kind: BitwiseKind
    destination: RowRegister
    source1: RowRegister
    source2: RowRegister | None = None

    def __post_init__(self) -> None:
        needs_two = self.kind is not BitwiseKind.NOT
        if needs_two and self.source2 is None:
            raise ConfigurationError(f"pluto_{self.kind.value} needs two source rows")
        if not needs_two and self.source2 is not None:
            raise ConfigurationError("pluto_not takes a single source row")

    @property
    def mnemonic(self) -> str:
        return f"pluto_{self.kind.value}"

    def render(self) -> str:
        operands = [self.destination.name, self.source1.name]
        if self.source2 is not None:
            operands.append(self.source2.name)
        return f"{self.mnemonic} " + ", ".join(operands)


@dataclass(frozen=True)
class PlutoBitShift(Instruction):
    """``pluto_bit_shift_{l,r} src, #N`` — element-wise bit shift (DRISA)."""

    direction: ShiftDirection
    target: RowRegister
    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ConfigurationError("shift amount must be non-negative")

    @property
    def mnemonic(self) -> str:
        return f"pluto_bit_shift_{self.direction.value}"

    def render(self) -> str:
        return f"{self.mnemonic} {self.target.name}, #{self.amount}"


@dataclass(frozen=True)
class PlutoByteShift(Instruction):
    """``pluto_byte_shift_{l,r} src, #N`` — byte-granularity shift (DRISA)."""

    direction: ShiftDirection
    target: RowRegister
    amount: int

    def __post_init__(self) -> None:
        if self.amount < 0:
            raise ConfigurationError("shift amount must be non-negative")

    @property
    def mnemonic(self) -> str:
        return f"pluto_byte_shift_{self.direction.value}"

    def render(self) -> str:
        return f"{self.mnemonic} {self.target.name}, #{self.amount}"


@dataclass(frozen=True)
class PlutoMove(Instruction):
    """``pluto_move dst, src`` — in-DRAM row copy (RowClone / LISA)."""

    destination: RowRegister
    source: RowRegister

    @property
    def mnemonic(self) -> str:
        return "pluto_move"

    def render(self) -> str:
        return f"{self.mnemonic} {self.destination.name}, {self.source.name}"

"""pLUTo ISA programs.

A :class:`PlutoProgram` is an ordered instruction list plus light static
validation: registers must be allocated (by an alloc instruction or
registered up front) before they are used, and LUT subarrays must be
allocated before a ``pluto_op`` references them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import CompilationError
from repro.isa.instructions import (
    Instruction,
    PlutoBitShift,
    PlutoBitwise,
    PlutoByteShift,
    PlutoMove,
    PlutoOp,
    PlutoRowAlloc,
    PlutoSubarrayAlloc,
)
from repro.isa.registers import RowRegister, SubarrayRegister

__all__ = ["PlutoProgram"]


@dataclass
class PlutoProgram:
    """An ordered sequence of pLUTo ISA instructions."""

    instructions: list[Instruction] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def append(self, instruction: Instruction) -> Instruction:
        """Append one instruction and return it."""
        self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: list[Instruction]) -> None:
        """Append several instructions."""
        self.instructions.extend(instructions)

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check def-before-use of row and subarray registers.

        Raises :class:`CompilationError` on the first violation.
        """
        defined_rows: set[int] = set()
        defined_subarrays: set[int] = set()

        def _require_row(register: RowRegister, instruction: Instruction) -> None:
            if register.index not in defined_rows:
                raise CompilationError(
                    f"{instruction.render()}: row register {register.name} "
                    "used before allocation"
                )

        def _require_subarray(register: SubarrayRegister, instruction: Instruction) -> None:
            if register.index not in defined_subarrays:
                raise CompilationError(
                    f"{instruction.render()}: subarray register {register.name} "
                    "used before allocation"
                )

        for instruction in self.instructions:
            if isinstance(instruction, PlutoRowAlloc):
                defined_rows.add(instruction.destination.index)
            elif isinstance(instruction, PlutoSubarrayAlloc):
                defined_subarrays.add(instruction.destination.index)
            elif isinstance(instruction, PlutoOp):
                _require_row(instruction.source, instruction)
                _require_row(instruction.destination, instruction)
                _require_subarray(instruction.lut_subarray, instruction)
            elif isinstance(instruction, PlutoBitwise):
                _require_row(instruction.source1, instruction)
                if instruction.source2 is not None:
                    _require_row(instruction.source2, instruction)
                _require_row(instruction.destination, instruction)
            elif isinstance(instruction, (PlutoBitShift, PlutoByteShift)):
                _require_row(instruction.target, instruction)
            elif isinstance(instruction, PlutoMove):
                _require_row(instruction.source, instruction)
                _require_row(instruction.destination, instruction)

    # ------------------------------------------------------------------ #
    # Statistics and rendering
    # ------------------------------------------------------------------ #
    def count(self, instruction_type: type) -> int:
        """Number of instructions of the given type."""
        return sum(1 for i in self.instructions if isinstance(i, instruction_type))

    @property
    def lut_queries(self) -> int:
        """Number of ``pluto_op`` instructions in the program."""
        return self.count(PlutoOp)

    def listing(self) -> str:
        """Assembly-style listing of the whole program."""
        return "\n".join(instruction.render() for instruction in self.instructions)

"""pLUTo special-purpose registers.

pLUTo instructions operate on two register kinds (Section 6.1):

* **Row registers** (``$prgN``) reference contiguously allocated DRAM rows
  used as LUT-query inputs/outputs or bitwise-operation operands.
* **Subarray registers** (``$lut_rgN``) reference a pLUTo-enabled subarray
  holding a LUT.

The :class:`RegisterFile` hands out registers and records their allocation
metadata; the controller's allocation table later binds them to physical
addresses.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError

__all__ = ["RowRegister", "SubarrayRegister", "RegisterFile"]


@dataclass(frozen=True)
class RowRegister:
    """A pLUTo Row Register: identifies allocated input/output rows."""

    index: int
    size_elements: int
    bit_width: int

    @property
    def name(self) -> str:
        """Assembly-style register name."""
        return f"$prg{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class SubarrayRegister:
    """A pLUTo Subarray Register: identifies a LUT-holding subarray."""

    index: int
    num_rows: int
    lut_name: str

    @property
    def name(self) -> str:
        """Assembly-style register name."""
        return f"$lut_rg{self.index}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


class RegisterFile:
    """Allocates row and subarray registers with monotonically growing indices."""

    def __init__(self, *, max_row_registers: int = 64, max_subarray_registers: int = 32) -> None:
        if max_row_registers <= 0 or max_subarray_registers <= 0:
            raise AllocationError("register-file capacities must be positive")
        self.max_row_registers = max_row_registers
        self.max_subarray_registers = max_subarray_registers
        self._row_registers: list[RowRegister] = []
        self._subarray_registers: list[SubarrayRegister] = []

    # ------------------------------------------------------------------ #
    # Allocation
    # ------------------------------------------------------------------ #
    def allocate_row(self, size_elements: int, bit_width: int) -> RowRegister:
        """Allocate a row register for ``size_elements`` x ``bit_width``-bit data."""
        if size_elements <= 0 or bit_width <= 0:
            raise AllocationError("row allocations need positive size and bit width")
        if len(self._row_registers) >= self.max_row_registers:
            raise AllocationError(
                f"row-register file exhausted ({self.max_row_registers} registers)"
            )
        register = RowRegister(
            index=len(self._row_registers),
            size_elements=size_elements,
            bit_width=bit_width,
        )
        self._row_registers.append(register)
        return register

    def allocate_subarray(self, num_rows: int, lut_name: str) -> SubarrayRegister:
        """Allocate a subarray register for a LUT with ``num_rows`` entries."""
        if num_rows <= 0:
            raise AllocationError("subarray allocations need a positive row count")
        if len(self._subarray_registers) >= self.max_subarray_registers:
            raise AllocationError(
                "subarray-register file exhausted "
                f"({self.max_subarray_registers} registers)"
            )
        register = SubarrayRegister(
            index=len(self._subarray_registers),
            num_rows=num_rows,
            lut_name=lut_name,
        )
        self._subarray_registers.append(register)
        return register

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def row_registers(self) -> tuple[RowRegister, ...]:
        """All allocated row registers, in allocation order."""
        return tuple(self._row_registers)

    @property
    def subarray_registers(self) -> tuple[SubarrayRegister, ...]:
        """All allocated subarray registers, in allocation order."""
        return tuple(self._subarray_registers)

    def row(self, index: int) -> RowRegister:
        """Look up a row register by index."""
        try:
            return self._row_registers[index]
        except IndexError as error:
            raise AllocationError(f"row register {index} was never allocated") from error

    def subarray(self, index: int) -> SubarrayRegister:
        """Look up a subarray register by index."""
        try:
            return self._subarray_registers[index]
        except IndexError as error:
            raise AllocationError(
                f"subarray register {index} was never allocated"
            ) from error

"""Quantized neural network case study (Section 9)."""

from repro.nn.inference import QnnInferenceModel, table7_configurations
from repro.nn.layers import conv2d, dense, max_pool2d, relu
from repro.nn.lenet import LeNet5, LeNetLayer
from repro.nn.mnist import synthetic_mnist
from repro.nn.quantization import dequantize, quantize_tensor, quantize_weights

__all__ = [
    "QnnInferenceModel",
    "table7_configurations",
    "conv2d",
    "dense",
    "max_pool2d",
    "relu",
    "LeNet5",
    "LeNetLayer",
    "synthetic_mnist",
    "dequantize",
    "quantize_tensor",
    "quantize_weights",
]

"""Mapping quantized LeNet-5 inference onto pLUTo and the baselines (Table 7).

The pLUTo mapping follows Section 9: low-bit-width multiply-accumulates are
executed as bulk LUT queries (a 1-bit network's XNOR-popcount uses tiny
bitwise LUTs plus bit-count LUTs; a 4-bit network's products come from
256-entry multiplier LUTs), with accumulations handled by LUT-based adds
and bitwise operations.  Each configuration therefore reduces to a
:class:`~repro.core.recipe.WorkloadRecipe` whose element count is the MAC
count of one inference, which the pLUTo engine and the baseline models
evaluate the same way they evaluate every other workload.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.processor import (
    CPU_XEON_5118,
    FPGA_ZCU102,
    GPU_P100,
    ProcessorBaseline,
)
from repro.core.engine import CostReport, PlutoConfig, PlutoEngine
from repro.core.designs import PlutoDesign
from repro.core.recipe import WorkloadRecipe
from repro.errors import ConfigurationError
from repro.nn.lenet import LeNet5

__all__ = ["QnnInferenceModel", "QnnCostRow", "table7_configurations"]


@dataclass(frozen=True)
class QnnCostRow:
    """One row of the Table 7 reproduction."""

    bits: int
    system: str
    latency_us: float
    energy_mj: float


class QnnInferenceModel:
    """Cost model of one quantized LeNet-5 inference on all systems."""

    def __init__(
        self,
        bits: int,
        network: LeNet5 | None = None,
        backend: str = "vectorized",
    ) -> None:
        if bits not in (1, 4):
            raise ConfigurationError("Table 7 evaluates 1-bit and 4-bit networks")
        self.bits = bits
        self.network = network if network is not None else LeNet5(weight_bits=bits)
        #: Execution backend used for bit-exact kernel validation.
        self.backend = backend

    # ------------------------------------------------------------------ #
    # Recipe
    # ------------------------------------------------------------------ #
    @property
    def recipe(self) -> WorkloadRecipe:
        """Per-MAC command mix of the pLUTo mapping."""
        if self.bits == 1:
            # XNOR (4-entry LUT) + popcount contribution (256-entry LUT,
            # amortised over 8 MACs per byte lane).
            return WorkloadRecipe(
                name="LeNet5-1bit",
                element_bits=2,
                sweeps_per_row=(4, 256),
                luts_loaded=(4, 256),
                bitwise_aaps_per_row=4,
                shift_commands_per_row=1,
                moves_per_row=1,
                output_bits_per_element=8,
                cpu_ops_per_element=2.0,
                # The FPGA baseline is a FINN-style binarized accelerator:
                # thousands of XNOR-popcount lanes operate per fabric cycle,
                # so the per-MAC kernel cost is far below one operation.
                kernel_ops_per_element=0.06,
                simd_efficiency=0.25,
                bytes_per_element=0.5,
                serial_fraction=0.0,
            )
        # 4-bit products from a 256-entry multiplier LUT, accumulated with
        # LUT-based adds (amortised one add sweep per two products).
        return WorkloadRecipe(
            name="LeNet5-4bit",
            element_bits=8,
            sweeps_per_row=(256, 256),
            luts_loaded=(256, 256),
            bitwise_aaps_per_row=6,
            shift_commands_per_row=2,
            moves_per_row=1,
            output_bits_per_element=8,
            cpu_ops_per_element=4.0,
            # 4-bit MACs map to parallel DSP/LUT lanes on the FPGA; fewer
            # lanes fit than in the 1-bit case, so the per-MAC cost rises.
            kernel_ops_per_element=0.25,
            simd_efficiency=0.25,
            bytes_per_element=1.5,
            serial_fraction=0.0,
        )

    @property
    def macs_per_inference(self) -> int:
        """Multiply-accumulate count of one inference."""
        return self.network.macs_per_image

    # ------------------------------------------------------------------ #
    # Bit-exact kernel validation
    # ------------------------------------------------------------------ #
    def validate_mac_kernel(self, elements: int = 1024, seed: int = 0):
        """Execute this configuration's MAC kernel through the full stack.

        Builds the Section 9 LUT decomposition as an API program — XNOR
        (4-entry LUT) + popcount for the 1-bit network, 256-entry
        multiplier LUT + requantization for the 4-bit network — compiles
        it, executes it on the model's backend, checks the outputs against
        a host reference, and returns the
        :class:`~repro.controller.executor.ExecutionResult` (with its full
        command trace).  Raises :class:`ConfigurationError` on mismatch.
        """
        from repro.api.luts import bitcount_lut, quantize_lut
        from repro.api.session import PlutoSession

        rng = np.random.default_rng(seed)
        session = PlutoSession(backend=self.backend)
        if self.bits == 1:
            a = rng.integers(0, 2, elements)
            w = rng.integers(0, 2, elements)
            va = session.pluto_malloc(elements, 1, "act")
            vw = session.pluto_malloc(elements, 1, "wgt")
            xnor = session.pluto_malloc(elements, 2, "xnor")
            out = session.pluto_malloc(elements, 2, "mac")
            session.api_pluto_bitwise_lut("xnor", va, vw, xnor)
            session.api_pluto_map(bitcount_lut(2), xnor, out)
            inputs = {"act": a, "wgt": w}
            expected = 1 - (a ^ w)
        else:
            a = rng.integers(0, 16, elements)
            w = rng.integers(0, 16, elements)
            va = session.pluto_malloc(elements, 4, "act")
            vw = session.pluto_malloc(elements, 4, "wgt")
            product = session.pluto_malloc(elements, 8, "product")
            out = session.pluto_malloc(elements, 8, "mac")
            session.api_pluto_mul(va, vw, product, bit_width=4)
            session.api_pluto_map(quantize_lut(8, 4), product, out)
            inputs = {"act": a, "wgt": w}
            expected = (a * w) >> 4
        result = session.run(inputs)
        if not np.array_equal(result.outputs["mac"], expected):
            raise ConfigurationError(
                f"{self.bits}-bit MAC kernel diverged from the host reference "
                f"on the {result.backend!r} backend"
            )
        return result

    # ------------------------------------------------------------------ #
    # Cost evaluation
    # ------------------------------------------------------------------ #
    def pluto_cost(self, config: PlutoConfig | None = None) -> CostReport:
        """Inference cost on pLUTo (pLUTo-BSA on DDR4 by default, as Table 7)."""
        engine = PlutoEngine(config or PlutoConfig(design=PlutoDesign.BSA))
        return engine.execute(self.recipe, self.macs_per_inference)

    def baseline_costs(self) -> dict[str, tuple[float, float]]:
        """CPU/GPU/FPGA (latency_ns, energy_nj) for one inference."""
        systems = {
            "CPU": ProcessorBaseline(CPU_XEON_5118),
            "GPU": ProcessorBaseline(GPU_P100),
            "FPGA": ProcessorBaseline(FPGA_ZCU102),
        }
        results = {}
        for name, system in systems.items():
            cost = system.evaluate(self.recipe, self.macs_per_inference)
            results[name] = (cost.latency_ns, cost.energy_nj)
        return results

    def table7_rows(self) -> list[QnnCostRow]:
        """All Table 7 rows for this bit width (CPU, GPU, FPGA, pLUTo-BSA)."""
        rows = []
        for system, (latency_ns, energy_nj) in self.baseline_costs().items():
            rows.append(
                QnnCostRow(self.bits, system, latency_ns / 1e3, energy_nj / 1e6)
            )
        pluto = self.pluto_cost()
        rows.append(
            QnnCostRow(
                self.bits,
                "pLUTo-BSA",
                pluto.total_latency_ns / 1e3,
                pluto.total_energy_nj / 1e6,
            )
        )
        return rows


def table7_configurations() -> list[QnnInferenceModel]:
    """The two Table 7 configurations (1-bit and 4-bit LeNet-5)."""
    return [QnnInferenceModel(1), QnnInferenceModel(4)]

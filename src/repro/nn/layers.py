"""Integer neural-network layers implemented from scratch on NumPy.

These layers are deliberately simple (direct convolution loops over output
positions) because the case study's networks are tiny (LeNet-5 on 28x28
inputs); clarity and op-count accountability matter more than speed here.
Every layer reports its multiply-accumulate count, which is what the
pLUTo/CPU/GPU/FPGA cost models consume.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["conv2d", "max_pool2d", "dense", "relu", "conv2d_macs", "dense_macs"]


def conv2d(inputs: np.ndarray, kernels: np.ndarray, stride: int = 1) -> np.ndarray:
    """Valid-padding 2-D convolution.

    ``inputs`` has shape (batch, in_channels, height, width); ``kernels``
    has shape (out_channels, in_channels, kh, kw).  Returns
    (batch, out_channels, out_h, out_w).
    """
    inputs = np.asarray(inputs, dtype=np.float64)
    kernels = np.asarray(kernels, dtype=np.float64)
    if inputs.ndim != 4 or kernels.ndim != 4:
        raise ConfigurationError("conv2d expects 4-D inputs and kernels")
    batch, in_channels, height, width = inputs.shape
    out_channels, kernel_channels, kernel_h, kernel_w = kernels.shape
    if kernel_channels != in_channels:
        raise ConfigurationError(
            f"kernel channels {kernel_channels} != input channels {in_channels}"
        )
    out_h = (height - kernel_h) // stride + 1
    out_w = (width - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ConfigurationError("kernel larger than input")
    output = np.zeros((batch, out_channels, out_h, out_w))
    for row in range(out_h):
        for col in range(out_w):
            window = inputs[
                :,
                :,
                row * stride : row * stride + kernel_h,
                col * stride : col * stride + kernel_w,
            ]
            # (batch, 1, C, kh, kw) * (1, O, C, kh, kw) summed over C/kh/kw.
            output[:, :, row, col] = np.einsum(
                "bchw,ochw->bo", window, kernels
            )
    return output


def conv2d_macs(
    in_channels: int, out_channels: int, kernel: int, out_h: int, out_w: int
) -> int:
    """Multiply-accumulate count of one convolution layer (per image)."""
    return out_channels * out_h * out_w * in_channels * kernel * kernel


def max_pool2d(inputs: np.ndarray, size: int = 2) -> np.ndarray:
    """Non-overlapping max pooling over (batch, channels, h, w)."""
    inputs = np.asarray(inputs, dtype=np.float64)
    batch, channels, height, width = inputs.shape
    if height % size or width % size:
        raise ConfigurationError("pooling size must divide the spatial dimensions")
    reshaped = inputs.reshape(batch, channels, height // size, size, width // size, size)
    return reshaped.max(axis=(3, 5))


def dense(inputs: np.ndarray, weights: np.ndarray) -> np.ndarray:
    """Fully connected layer: (batch, in) x (in, out) -> (batch, out)."""
    inputs = np.asarray(inputs, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if inputs.shape[1] != weights.shape[0]:
        raise ConfigurationError(
            f"dense shape mismatch: {inputs.shape} x {weights.shape}"
        )
    return inputs @ weights


def dense_macs(in_features: int, out_features: int) -> int:
    """Multiply-accumulate count of one dense layer (per image)."""
    return in_features * out_features


def relu(inputs: np.ndarray) -> np.ndarray:
    """Rectified linear activation."""
    return np.maximum(np.asarray(inputs, dtype=np.float64), 0.0)

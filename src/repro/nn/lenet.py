"""Quantized LeNet-5.

The classic LeNet-5 topology on 28x28 inputs:

=====  =====================  ===============  ============
Layer  Type                   Output shape     MACs / image
=====  =====================  ===============  ============
C1     conv 6 x 5x5           6 x 24 x 24      86.4 k
S2     max-pool 2x2           6 x 12 x 12      --
C3     conv 16 x 5x5          16 x 8 x 8       153.6 k
S4     max-pool 2x2           16 x 4 x 4       --
F5     dense 256 -> 120       120              30.7 k
F6     dense 120 -> 84        84               10.1 k
F7     dense 84 -> 10         10               0.8 k
=====  =====================  ===============  ============

Weights and activations are quantized to a configurable bit width (1 or 4
in the paper's Table 7).  Weights are randomly initialised from a fixed
seed and then lightly calibrated with a nearest-class-template output layer
so the synthetic-MNIST accuracy is meaningfully above chance.  The paper
reports accuracy numbers from prior quantization work and measures only
inference time and energy, which depend on the layer op counts, not the
weight values.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.nn.layers import (
    conv2d,
    conv2d_macs,
    dense,
    dense_macs,
    max_pool2d,
    relu,
)
from repro.nn.quantization import dequantize, quantize_tensor

__all__ = ["LeNetLayer", "LeNet5"]


@dataclass(frozen=True)
class LeNetLayer:
    """Descriptor of one parameterised LeNet-5 layer."""

    name: str
    kind: str  # "conv" or "dense"
    macs_per_image: int
    weight_count: int


class LeNet5:
    """A quantized LeNet-5 with deterministic weights."""

    def __init__(
        self, weight_bits: int = 4, activation_bits: int | None = None, seed: int = 7
    ) -> None:
        if weight_bits < 1:
            raise ConfigurationError("weight bit width must be >= 1")
        self.weight_bits = weight_bits
        self.activation_bits = activation_bits if activation_bits is not None else weight_bits
        rng = np.random.default_rng(seed)
        self._conv1 = quantize_tensor(rng.normal(0, 1, (6, 1, 5, 5)), weight_bits)
        self._conv2 = quantize_tensor(rng.normal(0, 1, (16, 6, 5, 5)), weight_bits)
        self._fc1 = quantize_tensor(rng.normal(0, 1, (256, 120)), weight_bits)
        self._fc2 = quantize_tensor(rng.normal(0, 1, (120, 84)), weight_bits)
        self._fc3 = quantize_tensor(rng.normal(0, 1, (84, 10)), weight_bits)
        self._calibrated_head: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    # Topology metadata
    # ------------------------------------------------------------------ #
    @property
    def layers(self) -> list[LeNetLayer]:
        """Parameterised layers with per-image MAC counts."""
        return [
            LeNetLayer("C1", "conv", conv2d_macs(1, 6, 5, 24, 24), 6 * 1 * 25),
            LeNetLayer("C3", "conv", conv2d_macs(6, 16, 5, 8, 8), 16 * 6 * 25),
            LeNetLayer("F5", "dense", dense_macs(256, 120), 256 * 120),
            LeNetLayer("F6", "dense", dense_macs(120, 84), 120 * 84),
            LeNetLayer("F7", "dense", dense_macs(84, 10), 84 * 10),
        ]

    @property
    def macs_per_image(self) -> int:
        """Total multiply-accumulates per inference."""
        return sum(layer.macs_per_image for layer in self.layers)

    @property
    def weight_count(self) -> int:
        """Total number of weights."""
        return sum(layer.weight_count for layer in self.layers)

    # ------------------------------------------------------------------ #
    # Inference
    # ------------------------------------------------------------------ #
    def features(self, images: np.ndarray) -> np.ndarray:
        """Run the network up to the penultimate layer (batch, 84)."""
        images = np.asarray(images, dtype=np.float64)
        if images.ndim != 4 or images.shape[1:] != (1, 28, 28):
            raise ConfigurationError("LeNet-5 expects inputs of shape (n, 1, 28, 28)")
        x = self._quantize_activations(images)
        x = relu(conv2d(x, dequantize(self._conv1)))
        x = max_pool2d(x, 2)
        x = self._quantize_activations(x)
        x = relu(conv2d(x, dequantize(self._conv2)))
        x = max_pool2d(x, 2)
        x = self._quantize_activations(x)
        x = x.reshape(x.shape[0], -1)
        x = relu(dense(x, dequantize(self._fc1)))
        x = self._quantize_activations(x)
        x = relu(dense(x, dequantize(self._fc2)))
        return self._quantize_activations(x)

    def logits(self, images: np.ndarray) -> np.ndarray:
        """Class scores of shape (batch, 10)."""
        features = self.features(images)
        if self._calibrated_head is not None:
            return features @ self._calibrated_head
        return dense(features, dequantize(self._fc3))

    def predict(self, images: np.ndarray) -> np.ndarray:
        """Predicted class labels."""
        return np.argmax(self.logits(images), axis=1)

    def calibrate(self, images: np.ndarray, labels: np.ndarray) -> None:
        """Fit the output layer to class-mean features (nearest-centroid head).

        This stands in for training: it gives the random quantized feature
        extractor a sensible classifier so accuracy on the synthetic dataset
        is well above chance, without requiring a training loop.
        """
        features = self.features(images)
        labels = np.asarray(labels)
        head = np.zeros((features.shape[1], 10))
        for digit in range(10):
            mask = labels == digit
            if mask.any():
                centroid = features[mask].mean(axis=0)
                norm = np.linalg.norm(centroid) or 1.0
                head[:, digit] = centroid / norm
        self._calibrated_head = head

    def accuracy(self, images: np.ndarray, labels: np.ndarray) -> float:
        """Classification accuracy on a labelled set."""
        predictions = self.predict(images)
        return float(np.mean(predictions == np.asarray(labels)))

    # ------------------------------------------------------------------ #
    # Helpers
    # ------------------------------------------------------------------ #
    def _quantize_activations(self, tensor: np.ndarray) -> np.ndarray:
        quantized = quantize_tensor(tensor, self.activation_bits)
        return dequantize(quantized)

"""Synthetic MNIST-like digit dataset.

The paper evaluates LeNet-5 on MNIST; this repository has no network
access, so we generate a deterministic MNIST-like dataset: 28x28 grayscale
images rendered from per-class stroke templates (coarse 7x7 digit glyphs
upsampled to 28x28) plus per-sample jitter and noise.  The dataset has the
same shapes and value ranges as MNIST and is linearly separable enough that
a randomly initialised then lightly calibrated LeNet-5 achieves
well-above-chance accuracy, which is all the Table 7 reproduction needs
(the paper takes accuracy numbers from prior work and measures time/energy).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["synthetic_mnist", "DIGIT_TEMPLATES"]

#: Coarse 7x7 glyphs for the ten digits (1 = stroke, 0 = background).
_RAW_TEMPLATES = {
    0: ["0111110", "1100011", "1100011", "1100011", "1100011", "1100011", "0111110"],
    1: ["0001100", "0011100", "0111100", "0001100", "0001100", "0001100", "0111111"],
    2: ["0111110", "1100011", "0000011", "0001110", "0111000", "1100000", "1111111"],
    3: ["0111110", "1100011", "0000011", "0011110", "0000011", "1100011", "0111110"],
    4: ["0000110", "0001110", "0011010", "0110010", "1111111", "0000010", "0000010"],
    5: ["1111111", "1100000", "1111110", "0000011", "0000011", "1100011", "0111110"],
    6: ["0011110", "0110000", "1100000", "1111110", "1100011", "1100011", "0111110"],
    7: ["1111111", "0000011", "0000110", "0001100", "0011000", "0110000", "0110000"],
    8: ["0111110", "1100011", "1100011", "0111110", "1100011", "1100011", "0111110"],
    9: ["0111110", "1100011", "1100011", "0111111", "0000011", "0000110", "0111100"],
}

DIGIT_TEMPLATES = {
    digit: np.array([[int(c) for c in row] for row in rows], dtype=np.float64)
    for digit, rows in _RAW_TEMPLATES.items()
}


def _render(template: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Upsample a 7x7 glyph to 28x28 with jitter, blur, and noise."""
    upsampled = np.kron(template, np.ones((4, 4)))
    shift_y, shift_x = rng.integers(-2, 3, size=2)
    shifted = np.roll(np.roll(upsampled, shift_y, axis=0), shift_x, axis=1)
    # Cheap separable blur to soften stroke edges.
    blurred = shifted.copy()
    blurred[1:, :] += 0.5 * shifted[:-1, :]
    blurred[:-1, :] += 0.5 * shifted[1:, :]
    blurred[:, 1:] += 0.5 * shifted[:, :-1]
    blurred[:, :-1] += 0.5 * shifted[:, 1:]
    blurred /= blurred.max() or 1.0
    noisy = blurred + rng.normal(0.0, 0.08, size=blurred.shape)
    return np.clip(noisy, 0.0, 1.0)


def synthetic_mnist(
    samples: int, seed: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Generate ``samples`` MNIST-like images and labels.

    Returns ``(images, labels)`` with ``images`` of shape
    (samples, 1, 28, 28) in [0, 1] and integer ``labels`` in [0, 9].
    """
    if samples <= 0:
        raise ConfigurationError("sample count must be positive")
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, 10, size=samples)
    images = np.zeros((samples, 1, 28, 28))
    for index, label in enumerate(labels):
        images[index, 0] = _render(DIGIT_TEMPLATES[int(label)], rng)
    return images, labels.astype(np.int64)

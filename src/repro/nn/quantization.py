"""Weight and activation quantization for low-bit-width networks.

The Table 7 case study evaluates LeNet-5 quantized to 1 and 4 bits.  We use
symmetric uniform quantization: a tensor is scaled into the signed integer
range of the target bit width and rounded; 1-bit quantization degenerates
to the sign function (binary networks).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QuantizedTensor", "quantize_tensor", "quantize_weights", "dequantize"]


@dataclass(frozen=True)
class QuantizedTensor:
    """An integer tensor plus the scale that maps it back to real values."""

    values: np.ndarray
    scale: float
    bits: int

    @property
    def num_elements(self) -> int:
        """Number of quantized values."""
        return int(np.prod(self.values.shape))


def _check_bits(bits: int) -> None:
    if bits < 1 or bits > 16:
        raise ConfigurationError(f"quantization width {bits} outside [1, 16]")


def quantize_tensor(tensor: np.ndarray, bits: int) -> QuantizedTensor:
    """Symmetric uniform quantization of a real tensor.

    For ``bits == 1`` the result is the sign of each value in {-1, +1}
    scaled by the tensor's mean magnitude (the standard BNN formulation).
    """
    _check_bits(bits)
    tensor = np.asarray(tensor, dtype=np.float64)
    if bits == 1:
        scale = float(np.mean(np.abs(tensor))) or 1.0
        values = np.where(tensor >= 0, 1, -1).astype(np.int64)
        return QuantizedTensor(values=values, scale=scale, bits=1)
    max_magnitude = float(np.max(np.abs(tensor))) or 1.0
    levels = (1 << (bits - 1)) - 1
    scale = max_magnitude / levels
    values = np.clip(np.round(tensor / scale), -levels - 1, levels).astype(np.int64)
    return QuantizedTensor(values=values, scale=scale, bits=bits)


def quantize_weights(weights: np.ndarray, bits: int) -> QuantizedTensor:
    """Alias of :func:`quantize_tensor` for readability at call sites."""
    return quantize_tensor(weights, bits)


def dequantize(tensor: QuantizedTensor) -> np.ndarray:
    """Map a quantized tensor back to real values."""
    return tensor.values.astype(np.float64) * tensor.scale

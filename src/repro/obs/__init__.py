"""End-to-end observability: request tracing, metrics, energy attribution.

Three pieces (see ISSUE 10 / the ROADMAP's energy-realism item):

* :mod:`repro.obs.trace` — a cheap, optional :class:`RequestTrace` span
  tree wired through every pipeline stage (plan → verify → optimize →
  compile → execute → schedule), propagated across the worker-pool
  process boundary.
* :mod:`repro.obs.metrics` — a process-wide registry of counters /
  gauges / histograms unifying the cache-stats islands, serving-latency
  histograms, and per-request DRAM-command/energy/refresh attribution.
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto),
  Prometheus text exposition, JSON snapshots, and terminal tables.

``python -m repro.obs`` runs a workload with tracing on and prints the
per-stage breakdown and energy-per-request attribution.
"""

from repro.obs.export import (
    chrome_trace_events,
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    render_stage_breakdown,
    stage_summary,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    command_counts,
    record_cache_stats,
    record_served_request,
    registry,
    request_accounting,
    reset_metrics,
)
from repro.obs.trace import (
    RequestTrace,
    Span,
    activate,
    current_trace,
    deactivate,
    enable_tracing,
    new_trace,
    span_of,
    stage,
    tracing,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RequestTrace",
    "Span",
    "activate",
    "chrome_trace_events",
    "chrome_trace_json",
    "command_counts",
    "current_trace",
    "deactivate",
    "enable_tracing",
    "metrics_json",
    "new_trace",
    "prometheus_text",
    "record_cache_stats",
    "record_served_request",
    "registry",
    "render_stage_breakdown",
    "request_accounting",
    "reset_metrics",
    "span_of",
    "stage",
    "stage_summary",
    "tracing",
    "tracing_enabled",
]

"""``python -m repro.obs`` — trace a workload and print its breakdown.

Runs one of the registry workload families through the async serving
front door with tracing enabled, then prints the per-stage latency
breakdown, the DRAM-command/energy attribution of a served request, and
(optionally) writes the Chrome trace, Prometheus exposition, and metrics
JSON snapshot to files.

Examples::

    python -m repro.obs --workload image --requests 16
    python -m repro.obs --workload crc --chrome /tmp/trace.json
"""

from __future__ import annotations

import argparse
import asyncio
from pathlib import Path
from typing import Any

from repro.obs.export import (
    chrome_trace_json,
    metrics_json,
    prometheus_text,
    render_stage_breakdown,
)
from repro.obs.metrics import record_cache_stats  # noqa: F401  (re-export site)
from repro.obs.trace import RequestTrace, enable_tracing

WORKLOADS = ("image", "crc", "salsa20", "vmpc", "bitcount", "vector_ops")


async def _serve(workload: str, requests: int, elements: int) -> list[Any]:
    from repro.workloads.programs import workload_program

    program = workload_program(workload, elements=elements)
    async with program.session.serve(max_queue=max(8, requests)) as service:
        return list(
            await asyncio.gather(
                *(service.submit(dict(program.inputs)) for _ in range(requests))
            )
        )


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description=(__doc__ or "").split("\n\n")[0]
    )
    parser.add_argument("--workload", choices=WORKLOADS, default="image")
    parser.add_argument("--requests", type=int, default=16)
    parser.add_argument("--elements", type=int, default=4096)
    parser.add_argument("--chrome", type=Path, default=None,
                        help="write Chrome trace-event JSON (Perfetto) here")
    parser.add_argument("--prometheus", type=Path, default=None,
                        help="write the Prometheus text exposition here")
    parser.add_argument("--json", type=Path, default=None,
                        help="write the metrics JSON snapshot here")
    arguments = parser.parse_args(argv)

    enable_tracing(True)
    results = asyncio.run(
        _serve(arguments.workload, arguments.requests, arguments.elements)
    )
    traces: list[RequestTrace] = [
        served.request_trace for served in results if served.request_trace is not None
    ]

    print(
        f"{arguments.workload}: served {len(results)} requests "
        f"({arguments.elements} elements each)"
    )
    print()
    print(render_stage_breakdown(traces, title="per-stage latency breakdown"))
    print()

    last = results[-1]
    attributes = traces[-1].attributes if traces else {}
    print("per-request hardware attribution (last request):")
    print(f"  modelled latency     {last.latency_ns:.1f} ns")
    print(f"  modelled energy      {last.energy_nj * 1000.0:.1f} pJ")
    for key in (
        "dram_commands",
        "refresh_overhead_fraction",
        "refresh_inflated_latency_ns",
    ):
        if key in attributes:
            print(f"  {key:<20} {attributes[key]}")
    by_type = attributes.get("dram_commands_by_type")
    if by_type:
        rendered = ", ".join(f"{kind}={count}" for kind, count in by_type.items())
        print(f"  commands by type     {rendered}")

    if arguments.chrome is not None:
        arguments.chrome.write_text(chrome_trace_json(traces))
        print(f"wrote Chrome trace to {arguments.chrome}")
    if arguments.prometheus is not None:
        arguments.prometheus.write_text(prometheus_text())
        print(f"wrote Prometheus exposition to {arguments.prometheus}")
    if arguments.json is not None:
        arguments.json.write_text(metrics_json())
        print(f"wrote metrics snapshot to {arguments.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

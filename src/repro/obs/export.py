"""Exposition formats for traces and metrics.

Three consumers are supported:

* **Chrome trace-event JSON** (:func:`chrome_trace_json`) — load the file
  in Perfetto / ``chrome://tracing`` to see the span tree of one or many
  requests on a timeline.
* **Prometheus text exposition** (:func:`prometheus_text`) — scrapeable
  dump of the process-wide registry; histograms render as summaries with
  quantile labels.
* **JSON snapshot** (:func:`metrics_json`) — the registry as one plain
  JSON object, for ad-hoc tooling and tests.

Plus :func:`render_stage_breakdown`, the human-readable per-stage table
used by ``python -m repro.obs`` and ``examples/serving_demo.py``.
"""

from __future__ import annotations

import json
from typing import Any, Iterable, Sequence

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
)
from repro.obs.trace import RequestTrace, Span

__all__ = [
    "chrome_trace_events",
    "chrome_trace_json",
    "metrics_json",
    "prometheus_text",
    "render_stage_breakdown",
    "stage_summary",
]


# --------------------------------------------------------------------------- #
# Chrome trace-event format
# --------------------------------------------------------------------------- #


def _span_events(
    span: Span, *, pid: int, tid: int, origin_ns: int, out: list[dict[str, Any]]
) -> None:
    event: dict[str, Any] = {
        "name": span.name,
        "cat": "pluto",
        "ph": "X",
        # The trace-event format measures ts/dur in microseconds.
        "ts": (span.start_ns - origin_ns) / 1000.0,
        "dur": span.duration_ns / 1000.0,
        "pid": pid,
        "tid": tid,
    }
    if span.attributes:
        event["args"] = _jsonable(span.attributes)
    out.append(event)
    for child in span.children:
        _span_events(child, pid=pid, tid=tid, origin_ns=origin_ns, out=out)


def _jsonable(value: Any) -> Any:
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


def chrome_trace_events(
    traces: "RequestTrace | Iterable[RequestTrace]",
) -> list[dict[str, Any]]:
    """Convert one or more traces into Chrome trace-event dicts."""

    if isinstance(traces, RequestTrace):
        traces = [traces]
    trace_list = list(traces)
    starts = [
        span.start_ns for trace in trace_list for span in trace.spans
    ]
    origin_ns = min(starts) if starts else 0
    events: list[dict[str, Any]] = []
    for tid, trace in enumerate(trace_list):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": trace.name},
            }
        )
        for span in trace.spans:
            _span_events(span, pid=0, tid=tid, origin_ns=origin_ns, out=events)
    return events


def chrome_trace_json(traces: "RequestTrace | Iterable[RequestTrace]") -> str:
    """Serialize traces as a Perfetto-loadable trace-event JSON document."""

    return json.dumps({"traceEvents": chrome_trace_events(traces)}, indent=1)


# --------------------------------------------------------------------------- #
# Prometheus text exposition
# --------------------------------------------------------------------------- #


def _render_labels(labels: Sequence[tuple[str, str]], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def prometheus_text(source: MetricsRegistry | None = None) -> str:
    """Render the registry in the Prometheus text exposition format."""

    reg = source if source is not None else registry()
    grouped: dict[str, list[Counter | Gauge | Histogram]] = {}
    for metric in reg:
        grouped.setdefault(metric.name, []).append(metric)
    lines: list[str] = []
    for name in sorted(grouped):
        family = grouped[name]
        first = family[0]
        kind = (
            "counter"
            if isinstance(first, Counter)
            else "gauge" if isinstance(first, Gauge) else "summary"
        )
        help_text = reg.help_for(name) or first.help
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for metric in family:
            if isinstance(metric, (Counter, Gauge)):
                lines.append(
                    f"{name}{_render_labels(metric.labels)} {_format(metric.value)}"
                )
            else:
                for quantile in (0.5, 0.95, 0.99):
                    value = metric.quantile(quantile)
                    extra = f'quantile="{quantile}"'
                    lines.append(
                        f"{name}{_render_labels(metric.labels, extra)} {_format(value)}"
                    )
                lines.append(
                    f"{name}_sum{_render_labels(metric.labels)} {_format(metric.total)}"
                )
                lines.append(
                    f"{name}_count{_render_labels(metric.labels)} {metric.count}"
                )
    return "\n".join(lines) + "\n"


def _format(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# --------------------------------------------------------------------------- #
# JSON snapshot
# --------------------------------------------------------------------------- #


def metrics_json(source: MetricsRegistry | None = None, *, indent: int = 2) -> str:
    """The whole registry as one JSON document."""

    reg = source if source is not None else registry()
    return json.dumps(reg.snapshot(), indent=indent, sort_keys=True)


# --------------------------------------------------------------------------- #
# Human-readable per-stage breakdown
# --------------------------------------------------------------------------- #


def stage_summary(
    traces: "RequestTrace | Iterable[RequestTrace]",
) -> dict[str, dict[str, float]]:
    """Aggregate per-stage totals across traces.

    Returns ``{stage: {"total_ns", "mean_ns", "count"}}`` over the
    *top-level* spans of each trace (nested detail stays in the span tree;
    top-level durations are the ones that sum to the end-to-end latency).
    """

    if isinstance(traces, RequestTrace):
        traces = [traces]
    totals: dict[str, dict[str, float]] = {}
    for trace in traces:
        for span in trace.spans:
            row = totals.setdefault(span.name, {"total_ns": 0.0, "count": 0.0})
            row["total_ns"] += span.duration_ns
            row["count"] += 1
    for row in totals.values():
        row["mean_ns"] = row["total_ns"] / row["count"] if row["count"] else 0.0
    return totals


def render_stage_breakdown(
    traces: "RequestTrace | Iterable[RequestTrace]", *, title: str = "stage breakdown"
) -> str:
    """Format a per-stage latency table for terminal output."""

    summary = stage_summary(traces)
    grand_total = sum(row["total_ns"] for row in summary.values()) or 1.0
    width = max([len(name) for name in summary] + [len("stage")])
    lines = [
        title,
        f"  {'stage'.ljust(width)}  {'mean':>12}  {'total':>12}  {'share':>6}",
    ]
    for name, row in sorted(
        summary.items(), key=lambda item: item[1]["total_ns"], reverse=True
    ):
        lines.append(
            f"  {name.ljust(width)}  {_fmt_ns(row['mean_ns']):>12}  "
            f"{_fmt_ns(row['total_ns']):>12}  {row['total_ns'] / grand_total:>6.1%}"
        )
    return "\n".join(lines)


def _fmt_ns(value_ns: float) -> str:
    if value_ns >= 1e9:
        return f"{value_ns / 1e9:.2f} s"
    if value_ns >= 1e6:
        return f"{value_ns / 1e6:.2f} ms"
    if value_ns >= 1e3:
        return f"{value_ns / 1e3:.2f} us"
    return f"{value_ns:.0f} ns"

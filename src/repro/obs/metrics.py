"""Process-wide metrics registry unifying the stack's stats islands.

Before this module the repository had four disjoint stats surfaces: the
``cache_stats()`` dict of memo-layer hit counters, the mergeable latency
histograms in ``serve/stats.py``, the shed/crash/drain counters on the
worker pool, and the per-command latency/energy accounting inside
``dram/commands.py``.  :class:`MetricsRegistry` gives them one home as
Prometheus-style counters, gauges, and histograms, and adds the
per-request *energy attribution* the ROADMAP calls for: DRAM command
counts by type, energy in picojoules, and refresh overhead drawn from
:class:`repro.dram.refresh.RefreshModel`.

Everything here is pure bookkeeping over plain dicts — no third-party
client library — and the exposition formats live in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import math
import threading
from typing import TYPE_CHECKING, Any, Iterator, Mapping

if TYPE_CHECKING:
    from repro.dram.commands import CommandTrace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "command_counts",
    "record_cache_stats",
    "record_served_request",
    "registry",
    "request_accounting",
    "reset_metrics",
]

#: Bucket-boundary growth factor; matches ``repro.serve.stats`` so merged
#: quantiles agree with the serving tier's own histograms (~7% resolution).
_GROWTH = 1.07
_LOG_GROWTH = math.log(_GROWTH)
#: Smallest resolvable observation.  Observations are recorded in seconds
#: or nanoseconds depending on the metric; 1e-9 resolves both.
_FLOOR = 1e-9

LabelPairs = tuple[tuple[str, str], ...]


def _label_pairs(labels: Mapping[str, str]) -> LabelPairs:
    return tuple(sorted((str(key), str(value)) for key, value in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Log-bucketed streaming histogram with quantile estimation.

    Same bucket math as ``repro.serve.stats.LatencyHistogram`` (growth
    ``1.07``) so quantiles computed here line up with the serving tier's
    summaries, but label-aware and unit-agnostic.
    """

    __slots__ = ("name", "help", "labels", "buckets", "count", "total", "max_value")

    def __init__(self, name: str, help: str = "", labels: LabelPairs = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets: dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def observe(self, value: float) -> None:
        if value < 0:
            value = 0.0
        bucket = 0 if value < _FLOOR else int(math.log(value / _FLOOR) / _LOG_GROWTH) + 1
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value

    @staticmethod
    def _bucket_value(bucket: int) -> float:
        if bucket <= 0:
            return 0.0
        # Geometric midpoint of the bucket's [lo, lo*growth) range.
        return _FLOOR * (_GROWTH ** (bucket - 1)) * math.sqrt(_GROWTH)

    def quantile(self, q: float) -> float:
        if self.count == 0:
            return 0.0
        q = min(max(q, 0.0), 1.0)
        rank = q * (self.count - 1)
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen > rank:
                return self._bucket_value(bucket)
        return self._bucket_value(max(self.buckets))

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        return {
            "count": float(self.count),
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "max": self.max_value,
        }


Metric = Counter | Gauge | Histogram


class MetricsRegistry:
    """Get-or-create store of named, optionally labelled metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: dict[tuple[str, LabelPairs], Metric] = {}
        self._help: dict[str, str] = {}

    def _get(
        self,
        kind: type[Counter] | type[Gauge] | type[Histogram],
        name: str,
        help: str,
        labels: Mapping[str, str],
    ) -> Metric:
        pairs = _label_pairs(labels) if labels else ()
        key = (name, pairs)
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    if help:
                        self._help.setdefault(name, help)
                    metric = kind(name, self._help.get(name, help), pairs)
                    self._metrics[key] = metric
        if not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as {type(metric).__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        metric = self._get(Counter, name, help, labels)
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        metric = self._get(Gauge, name, help, labels)
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help: str = "", **labels: str) -> Histogram:
        metric = self._get(Histogram, name, help, labels)
        assert isinstance(metric, Histogram)
        return metric

    def __iter__(self) -> Iterator[Metric]:
        return iter(list(self._metrics.values()))

    def __len__(self) -> int:
        return len(self._metrics)

    def help_for(self, name: str) -> str:
        return self._help.get(name, "")

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view of every metric (JSON-serialisable)."""

        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, float]] = {}
        for metric in self:
            label = _render_name(metric.name, metric.labels)
            if isinstance(metric, Counter):
                counters[label] = metric.value
            elif isinstance(metric, Gauge):
                gauges[label] = metric.value
            else:
                histograms[label] = metric.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        with self._lock:
            self._metrics.clear()
            self._help.clear()


def _render_name(name: str, labels: LabelPairs) -> str:
    if not labels:
        return name
    rendered = ",".join(f'{key}="{value}"' for key, value in labels)
    return f"{name}{{{rendered}}}"


#: The process-wide registry every layer records into.
REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """Return the process-wide registry."""

    return REGISTRY


def reset_metrics() -> None:
    """Clear the process-wide registry (tests and benchmarks)."""

    REGISTRY.reset()


# --------------------------------------------------------------------------- #
# Cache-stats bridge
# --------------------------------------------------------------------------- #


def record_cache_stats(stats: Mapping[str, Any]) -> None:
    """Mirror a ``cache_stats()`` dict into ``pluto_cache_*`` gauges.

    Accepts the exact nested dict shape ``repro.api.session.cache_stats``
    returns (including the per-engine sub-dicts of ``engine_helpers``) and
    leaves it untouched — the dict remains the public API; the gauges are
    the unified view.
    """

    _record_cache_layer("pluto_cache", stats)


def _record_cache_layer(prefix: str, stats: Mapping[str, Any]) -> None:
    for key, value in stats.items():
        if isinstance(value, Mapping):
            _record_cache_layer(f"{prefix}_{key}", value)
        elif isinstance(value, (int, float)):
            REGISTRY.gauge(
                f"{prefix}_{key}", help="Memo-layer statistic from cache_stats()"
            ).set(float(value))


# --------------------------------------------------------------------------- #
# Per-request DRAM command and energy attribution
# --------------------------------------------------------------------------- #


def _pin_store(trace: Any) -> dict[str, Any]:
    """The dict observability results are memoized in for ``trace``.

    Traces realized from a :class:`~repro.controller.executor.TraceTemplate`
    carry ``_obs_pins`` — a reference to the template's own ``__dict__`` —
    so every realization of one program structure shares a single memo;
    free-standing traces memoize on themselves.
    """

    store: dict[str, Any] | None = trace.__dict__.get("_obs_pins")
    if store is not None:
        return store
    own: dict[str, Any] = trace.__dict__
    return own


def command_counts(trace: "CommandTrace | Any") -> dict[str, int]:
    """Per-type DRAM command counts for a command trace, memoized in place.

    Works on both :class:`~repro.dram.commands.CommandTrace` instances and
    :class:`~repro.controller.executor.TraceTemplate` realisations; the
    counts are pinned on the trace's shared pin store so the hot serving
    path (which reuses one template per structure key) computes them
    exactly once per program structure.
    """

    store = _pin_store(trace)
    cached: dict[str, int] | None = store.get("_obs_command_counts")
    if cached is not None:
        return dict(cached)
    counts: dict[str, int] = {}
    for command in trace.commands:
        kind = command.kind.value
        counts[kind] = counts.get(kind, 0) + 1
    store["_obs_command_counts"] = counts
    return dict(counts)


def request_accounting(trace: "CommandTrace | Any") -> dict[str, Any]:
    """Full hardware-cost attribution for one request's command trace.

    Returns a JSON-friendly dict with the paper's units: DRAM command
    counts by type, modelled energy in picojoules, and the refresh
    overhead the ROADMAP asks to fold into served-path accounting
    (refresh-inflated latency, refresh commands falling inside the
    request's window).  Memoized on the trace object like
    :func:`command_counts`.
    """

    store = _pin_store(trace)
    cached: dict[str, Any] | None = store.get("_obs_accounting")
    if cached is not None:
        return dict(cached)
    from repro.dram.refresh import RefreshModel

    refresh = RefreshModel(trace.timing)
    latency_ns = float(trace.total_latency_ns)
    counts = command_counts(trace)
    overhead = refresh.overhead_fraction
    inflated = (
        refresh.inflate_latency(latency_ns) if overhead < 1.0 else float("inf")
    )
    accounting: dict[str, Any] = {
        "dram_commands": int(sum(counts.values())),
        "dram_commands_by_type": counts,
        "energy_pj": float(trace.total_energy_nj) * 1000.0,
        "refresh_overhead_fraction": overhead,
        "refresh_commands": refresh.refreshes_during(latency_ns),
        "refresh_inflated_latency_ns": inflated,
    }
    store["_obs_accounting"] = accounting
    return dict(accounting)


# --------------------------------------------------------------------------- #
# Served-request recording
# --------------------------------------------------------------------------- #


def record_served_request(
    *,
    path: str,
    end_to_end_s: float,
    queue_wait_s: float = 0.0,
    execute_s: float = 0.0,
    energy_nj: float = 0.0,
    commands: Mapping[str, int] | None = None,
) -> None:
    """Record one served request into the process-wide registry."""

    REGISTRY.counter("pluto_requests_total", "Requests served", path=path).inc()
    REGISTRY.counter(
        "pluto_energy_pj_total", "Modelled DRAM energy spent serving", path=path
    ).inc(energy_nj * 1000.0)
    REGISTRY.histogram(
        "pluto_request_seconds", "End-to-end request latency", path=path
    ).observe(end_to_end_s)
    if queue_wait_s:
        REGISTRY.histogram(
            "pluto_queue_wait_seconds", "Time spent queued before execution", path=path
        ).observe(queue_wait_s)
    if execute_s:
        REGISTRY.histogram(
            "pluto_execute_seconds", "Time spent executing on the device", path=path
        ).observe(execute_s)
    if commands:
        for kind, count in commands.items():
            REGISTRY.counter(
                "pluto_dram_commands_total", "DRAM commands issued", type=kind
            ).inc(float(count))

"""Low-overhead end-to-end request tracing.

A :class:`RequestTrace` is a tree of :class:`Span` records with monotonic
``time.perf_counter_ns`` timestamps.  Tracing is off by default and every
instrumentation point collapses to a single boolean check plus a no-op
context manager, so the hot serving path pays (measurably, see
``benchmarks/test_obs_overhead.py``) under 5% with tracing enabled and
effectively nothing with it disabled.

The active trace travels through the stack via a :class:`contextvars.ContextVar`
so deeply nested layers (optimizer passes, the analytic scheduler, the
compile cache) can attach spans without any API plumbing.  Traces are
picklable, which lets :class:`repro.serve.pool.PlutoWorkerPool` ship a
worker-side trace back across the process boundary and graft it into the
pool-level trace (see :meth:`RequestTrace.graft`).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar, Token
from typing import Any, Iterator

__all__ = [
    "NOOP_SPAN",
    "RequestTrace",
    "Span",
    "activate",
    "current_trace",
    "deactivate",
    "enable_tracing",
    "new_trace",
    "span_of",
    "stage",
    "tracing",
    "tracing_enabled",
]

_ENABLED: bool = False

#: Bound once so the span scopes skip the ``time`` attribute lookup.
_now = time.perf_counter_ns

_ACTIVE: ContextVar["RequestTrace | None"] = ContextVar(
    "pluto_active_request_trace", default=None
)


def tracing_enabled() -> bool:
    """Return whether tracing is globally enabled in this process."""

    return _ENABLED


def enable_tracing(on: bool = True) -> None:
    """Globally enable (or disable) tracing for this process."""

    global _ENABLED
    _ENABLED = on


@contextmanager
def tracing(on: bool = True) -> Iterator[None]:
    """Scoped :func:`enable_tracing`: restores the previous state on exit."""

    global _ENABLED
    previous = _ENABLED
    _ENABLED = on
    try:
        yield
    finally:
        _ENABLED = previous


class Span:
    """One timed stage of a request, possibly with nested child stages.

    ``start_ns`` comes from ``time.perf_counter_ns`` and is therefore only
    meaningful relative to other spans recorded in the same process;
    :meth:`RequestTrace.graft` rebases spans that crossed a process boundary.

    A plain ``__slots__`` class rather than a dataclass: spans are the unit
    of allocation on the traced hot path, and the <5% overhead gate in
    ``benchmarks/test_obs_overhead.py`` is won or lost on their cost.
    """

    __slots__ = (
        "name",
        "start_ns",
        "duration_ns",
        "attributes",
        "children",
        "_trace",
    )

    #: Bound by stage()/span_of()/RequestTrace.span() before __enter__,
    #: deleted again on __exit__; unset on completed spans.
    _trace: "RequestTrace"

    def __init__(
        self,
        name: str,
        start_ns: int = 0,
        duration_ns: int = 0,
        attributes: dict[str, Any] | None = None,
        children: list["Span"] | None = None,
    ) -> None:
        self.name = name
        self.start_ns = start_ns
        self.duration_ns = duration_ns
        # ``attributes``/``children`` stay unset slots for bare leaf spans
        # (the common case); __getattr__ materialises them on first access.
        # Surviving allocations are what tip extra gen-0 GC runs into traced
        # serving bursts, so every per-span container matters here.
        if attributes is not None:
            self.attributes = attributes
        if children is not None:
            self.children = children

    def __getattr__(self, item: str) -> Any:
        # Only reached when a slot is unset — i.e. the lazy containers.
        if item == "attributes":
            attributes: dict[str, Any] = {}
            self.attributes = attributes
            return attributes
        if item == "children":
            children: list["Span"] = []
            self.children = children
            return children
        raise AttributeError(item)

    # Spans double as their own context managers: :func:`stage` and
    # :func:`span_of` bind ``_trace`` and the ``with`` block opens/closes
    # the span with no separate scope allocation.

    def __enter__(self) -> "Span":
        trace = self._trace
        stack = trace._stack
        if stack:
            stack[-1].children.append(self)
        else:
            trace.spans.append(self)
        stack.append(self)
        self.start_ns = _now()
        return self

    def __exit__(self, *exc: object) -> None:
        self.duration_ns = _now() - self.start_ns
        trace = self._trace
        stack = trace._stack
        if stack and stack[-1] is self:
            stack.pop()
        del self._trace  # break the span->trace->span cycle

    def __repr__(self) -> str:
        return (
            f"Span(name={self.name!r}, start_ns={self.start_ns}, "
            f"duration_ns={self.duration_ns}, attributes={self.attributes!r}, "
            f"children={self.children!r})"
        )

    def set(self, **attributes: Any) -> None:
        """Attach key/value attributes to this span."""

        self.attributes.update(attributes)

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth first."""

        yield self
        for child in self.children:
            yield from child.walk()

    @property
    def end_ns(self) -> int:
        return self.start_ns + self.duration_ns


class _NoopSpan:
    """Shared do-nothing span used when tracing is off or no trace is active."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> None:
        return None

    def set(self, **attributes: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class RequestTrace:
    """A tree of spans describing one request's trip through the stack.

    A plain class (one allocation per served request) with a ``__dict__``:
    the pickle hooks below rely on it, and the metrics layer pins memoized
    accounting onto traces via ``__dict__`` as well.
    """

    def __init__(
        self,
        name: str,
        request_id: int | None = None,
        attributes: dict[str, Any] | None = None,
        spans: list[Span] | None = None,
    ) -> None:
        self.name = name
        self.request_id = request_id
        self.attributes = {} if attributes is None else attributes
        self.spans = [] if spans is None else spans
        self._stack: list[Span] = []

    def __repr__(self) -> str:
        return (
            f"RequestTrace(name={self.name!r}, request_id={self.request_id!r}, "
            f"attributes={self.attributes!r}, spans={self.spans!r})"
        )

    # -- recording ---------------------------------------------------------

    def span(self, name: str, **attributes: Any) -> Span:
        """Open a timed child span as a context manager."""

        span = Span(name, 0, 0, attributes or None)
        span._trace = self
        return span

    def add_span(
        self,
        name: str,
        duration_ns: int,
        *,
        start_ns: int | None = None,
        **attributes: Any,
    ) -> Span:
        """Record an already-measured span (e.g. queue wait) explicitly."""

        if start_ns is None:
            start_ns = _now() - duration_ns
        span = Span(name, start_ns, duration_ns, attributes or None)
        if self._stack:
            self._stack[-1].children.append(span)
        else:
            self.spans.append(span)
        return span

    def annotate(self, **attributes: Any) -> None:
        """Attach key/value attributes to the trace as a whole."""

        self.attributes.update(attributes)

    def graft(
        self,
        other: "RequestTrace",
        *,
        under: str = "worker",
        start_ns: int | None = None,
        duration_ns: int | None = None,
        **attributes: Any,
    ) -> Span:
        """Splice another trace's spans under a new top-level wrapper span.

        Used to merge a worker-process trace into a pool-level trace: the
        worker's ``perf_counter_ns`` clock is unrelated to ours, so its spans
        are shifted such that the earliest one aligns with the wrapper span's
        start.  The wrapper's duration defaults to the grafted trace's
        top-level total so stage sums stay within the end-to-end latency.
        """

        if duration_ns is None:
            duration_ns = other.total_ns
        if start_ns is None:
            start_ns = time.perf_counter_ns() - duration_ns
        wrapper = self.add_span(under, duration_ns, start_ns=start_ns, **attributes)
        if other.attributes:
            wrapper.attributes.setdefault("worker_attributes", dict(other.attributes))
        if other.spans:
            offset = start_ns - min(span.start_ns for span in other.spans)
            for span in other.spans:
                for node in span.walk():
                    node.start_ns += offset
                wrapper.children.append(span)
        return wrapper

    # -- queries -----------------------------------------------------------

    @property
    def total_ns(self) -> int:
        """Sum of top-level span durations (stage time accounted so far)."""

        return sum(span.duration_ns for span in self.spans)

    def stage_totals(self) -> dict[str, int]:
        """Aggregate top-level span durations by stage name."""

        totals: dict[str, int] = {}
        for span in self.spans:
            totals[span.name] = totals.get(span.name, 0) + span.duration_ns
        return totals

    def find(self, name: str) -> Span | None:
        """Return the first span (depth first) with the given name."""

        for top in self.spans:
            for span in top.walk():
                if span.name == name:
                    return span
        return None

    def walk(self) -> Iterator[Span]:
        """Yield every span in the trace, depth first."""

        for span in self.spans:
            yield from span.walk()

    # -- pickling ----------------------------------------------------------

    def __getstate__(self) -> dict[str, Any]:
        state = dict(self.__dict__)
        state["_stack"] = []  # never ship open spans across a process boundary
        return state

    def __setstate__(self, state: dict[str, Any]) -> None:
        self.__dict__.update(state)


def new_trace(name: str, *, request_id: int | None = None) -> RequestTrace | None:
    """Create a trace when tracing is enabled, else ``None``."""

    if not _ENABLED:
        return None
    return RequestTrace(name=name, request_id=request_id)


def current_trace() -> RequestTrace | None:
    """Return the trace active on this context, if any."""

    return _ACTIVE.get()


def activate(trace: RequestTrace | None) -> "Token[RequestTrace | None] | None":
    """Make ``trace`` the active trace; returns a token for :func:`deactivate`."""

    if trace is None:
        return None
    return _ACTIVE.set(trace)


def deactivate(token: "Token[RequestTrace | None] | None") -> None:
    """Undo a previous :func:`activate`."""

    if token is not None:
        _ACTIVE.reset(token)


def span_of(
    trace: RequestTrace | None, name: str, **attributes: Any
) -> "Span | _NoopSpan":
    """Open a span on ``trace``, or a no-op when ``trace`` is ``None``."""

    if trace is None:
        return NOOP_SPAN
    span = Span(name, 0, 0, attributes or None)
    span._trace = trace
    return span


def stage(name: str, **attributes: Any) -> "Span | _NoopSpan":
    """Open a span on the context-active trace; a cheap no-op otherwise.

    This is the instrumentation entry point used by inner layers (planner,
    optimizer, compiler, scheduler): one global boolean check when tracing is
    disabled, one ``ContextVar`` read when enabled.
    """

    if not _ENABLED:
        return NOOP_SPAN
    trace = _ACTIVE.get()
    if trace is None:
        return NOOP_SPAN
    span = Span(name, 0, 0, attributes or None)
    span._trace = trace
    return span

"""Program optimizer: a pass pipeline over recorded pLUTo API programs.

pLUTo computation is table lookup, so programs admit rewrites that cut
the number of DRAM row sweeps — the dominant latency and energy term —
without changing a single output bit:

* **LUT-chain fusion** — consecutive element-wise LUT queries whose
  intermediate has one consumer compose into one query of a
  compile-time-composed table (:class:`~repro.opt.passes.LutChainFusionPass`);
* **common-subexpression elimination** — a repeated computation reuses
  the earlier result (:class:`~repro.opt.passes.CommonSubexpressionEliminationPass`);
* **dead-op elimination** — computations no preserved output depends on
  are dropped (:class:`~repro.opt.passes.DeadOpEliminationPass`);
* **LUT deduplication** — content-identical tables share one subarray
  allocation and ROM load (:class:`~repro.opt.passes.LutDeduplicationPass`).

The pipeline runs before compilation (``PlutoSession.run(...,
optimize=True)``, ``PlutoConfig(optimize=True)``, ``PlutoService(...,
optimize=True)``), and every optimization is summarised by an
:class:`~repro.opt.report.OptimizationReport`.
"""

from repro.opt.compose import can_compose, compose_cache_stats, compose_luts
from repro.opt.passes import (
    CommonSubexpressionEliminationPass,
    DeadOpEliminationPass,
    LutChainFusionPass,
    LutDeduplicationPass,
    OptimizationPass,
)
from repro.opt.pipeline import (
    OptimizedProgram,
    PassManager,
    clear_optimizer_cache,
    default_passes,
    optimize_cached,
    optimize_program,
    optimizer_cache_stats,
)
from repro.opt.report import (
    OptimizationReport,
    PassStats,
    ProgramMetrics,
    program_metrics,
)

__all__ = [
    "OptimizationPass",
    "LutChainFusionPass",
    "CommonSubexpressionEliminationPass",
    "DeadOpEliminationPass",
    "LutDeduplicationPass",
    "PassManager",
    "OptimizedProgram",
    "default_passes",
    "optimize_program",
    "optimize_cached",
    "optimizer_cache_stats",
    "clear_optimizer_cache",
    "OptimizationReport",
    "PassStats",
    "ProgramMetrics",
    "program_metrics",
    "can_compose",
    "compose_luts",
    "compose_cache_stats",
]

"""Program-shape queries shared by the optimization passes.

Passes reason about an API program as a single-assignment dataflow graph
over vector *names*: every vector is written by at most one call, so
"producer of name" and "consumers of name" are well defined, and the
*natural outputs* — vectors produced but never consumed — are exactly
what :class:`~repro.compiler.dependency_graph.DependencyGraph` (and
therefore :class:`~repro.controller.executor.ExecutionResult.outputs`)
treats as the program results.  Preserving that set bit-identically is
the optimizer's contract.
"""

from __future__ import annotations

from typing import Sequence

from repro.api.handles import ApiCall
from repro.compiler.dependency_graph import DependencyGraph
from repro.errors import CompilationError

__all__ = [
    "consumer_counts",
    "producer_index",
    "natural_output_names",
    "topological_calls",
]


def consumer_counts(calls: Sequence[ApiCall]) -> dict[str, int]:
    """Vector name -> number of calls reading it (a call counts once per read)."""
    counts: dict[str, int] = {}
    for call in calls:
        for operand in call.inputs:
            counts[operand.name] = counts.get(operand.name, 0) + 1
    return counts


def producer_index(calls: Sequence[ApiCall]) -> dict[str, int]:
    """Vector name -> index of the call producing it (single-assignment)."""
    producers: dict[str, int] = {}
    for index, call in enumerate(calls):
        if call.output.name in producers:
            raise CompilationError(
                f"vector {call.output.name!r} is written by more than one "
                "API call; pLUTo programs are single-assignment"
            )
        producers[call.output.name] = index
    return producers


def natural_output_names(calls: Sequence[ApiCall]) -> frozenset[str]:
    """Names of vectors produced but never consumed (the program results)."""
    produced = {call.output.name for call in calls}
    consumed = {operand.name for call in calls for operand in call.inputs}
    return frozenset(produced - consumed)


def topological_calls(calls: Sequence[ApiCall]) -> list[ApiCall]:
    """The calls in dependency order (producers before consumers).

    Recording order already is topological for programs built through
    :class:`~repro.api.session.PlutoSession` handles, so the common case
    returns the input order unchanged; out-of-order recordings are
    normalised through the compiler's dependency graph (which also
    validates single assignment and acyclicity).
    """
    seen: set[str] = set()
    produced = {call.output.name for call in calls}
    for call in calls:
        if any(name.name in produced and name.name not in seen for name in call.inputs):
            return DependencyGraph(list(calls)).execution_order()
        seen.add(call.output.name)
    # Already topological; still validate single assignment.
    producer_index(calls)
    return list(calls)

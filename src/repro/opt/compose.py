"""LUT composition: the algebra behind LUT-chain fusion.

pLUTo computation is table lookup, so element-wise operations are closed
under composition: if ``t = f(x)`` and ``y = g(t)`` are both LUT queries,
then ``y = (g o f)(x)`` is *also* a LUT query — over ``f``'s index
domain, with ``g``'s element width — and the composed table is built at
compile time by evaluating ``g`` over ``f``'s entries.  For the 8-bit
domains the paper evaluates this is a 256-entry host-side gather; the
row sweep the intermediate would have cost in DRAM disappears entirely.
"""

from __future__ import annotations

from functools import lru_cache

from repro.core.lut import LookupTable

__all__ = [
    "can_compose",
    "compose_luts",
    "compose_cache_stats",
    "clear_compose_cache",
    "MAX_COMPOSE_ENTRIES",
]

#: Largest inner-LUT domain composed eagerly.  Every LUT that fits a
#: subarray (<= rows_per_subarray entries, typically 512) is far below
#: this; the bound only guards against pathological synthetic tables.
MAX_COMPOSE_ENTRIES = 1 << 16


def can_compose(inner: LookupTable, outer: LookupTable) -> bool:
    """Whether ``outer[inner[i]]`` is defined for every entry of ``inner``.

    Requires every inner element to be a valid outer index and a
    tractable inner domain (:data:`MAX_COMPOSE_ENTRIES`).
    """
    if inner.num_entries > MAX_COMPOSE_ENTRIES:
        return False
    return max(inner.values) < outer.num_entries


@lru_cache(maxsize=4096)
def compose_luts(inner: LookupTable, outer: LookupTable) -> LookupTable:
    """The composed table ``(outer o inner)``: index with ``inner``'s domain.

    ``LookupTable`` is frozen, so compositions are memoized on the pair —
    a fused chain appearing in a million served requests composes its
    tables once.  The composed name records the provenance for traces.
    """
    values = tuple(outer.values[value] for value in inner.values)
    return LookupTable(
        values=values,
        index_bits=inner.index_bits,
        element_bits=outer.element_bits,
        name=f"fuse({inner.name},{outer.name})",
    )


def compose_cache_stats() -> dict[str, int]:
    """Hit/miss counters of the composed-LUT cache."""
    info = compose_luts.cache_info()
    return {"hits": info.hits, "misses": info.misses, "size": info.currsize}


def clear_compose_cache() -> None:
    """Drop every memoized LUT composition."""
    compose_luts.cache_clear()

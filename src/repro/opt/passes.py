"""The optimization passes: fusion, CSE, dead-op and LUT-load elimination.

Every pass is a pure rewrite ``calls -> calls`` over a topologically
ordered, single-assignment API program, parameterised by the set of
*preserved* vector names (the program outputs the caller observes).  The
shared contract, which makes the whole pipeline bit-identical:

* the preserved vectors keep their names, sizes, widths, and values;
* no preserved vector gains a consumer (so the compiler's natural-output
  derivation — produced but never consumed — is unchanged);
* every rewrite replaces a computation with one producing the exact same
  element values (LUT composition is exact; CSE only merges calls whose
  operation, operands, table, parameters, *and* output width coincide).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Protocol, Sequence

from repro.api.handles import ApiCall, PlutoVector
from repro.opt.analysis import consumer_counts, producer_index
from repro.opt.compose import can_compose, compose_luts
from repro.opt.report import PassStats

__all__ = [
    "OptimizationPass",
    "LutDeduplicationPass",
    "LutChainFusionPass",
    "CommonSubexpressionEliminationPass",
    "DeadOpEliminationPass",
    "FUSED_BINARY_OPERATION",
]

#: Operation name of a fused binary-headed LUT chain.  The ``_lut``
#: suffix routes it through the compiler's binary shift+OR+pluto_op
#: lowering, exactly like the ``add``/``mul``/``*_lut`` call it replaces.
FUSED_BINARY_OPERATION = "fused_lut"


class OptimizationPass(Protocol):
    """One rewrite of a topologically ordered API program."""

    name: str

    def run(
        self, calls: list[ApiCall], preserved: frozenset[str]
    ) -> tuple[list[ApiCall], PassStats]:
        """Rewrite ``calls``; report how many calls changed."""
        ...  # pragma: no cover - protocol


class LutDeduplicationPass:
    """Share one table object between content-identical LUTs.

    The compiler allocates one subarray register (and one ROM load) per
    distinct :class:`~repro.core.lut.LookupTable`; tables that hold the
    same values under different names would each pay a
    ``pluto_subarray_alloc`` and a load sweep.  Rewriting every call to
    the first content-equal instance collapses them into one binding.
    """

    name = "lut-dedup"

    def run(
        self, calls: list[ApiCall], preserved: frozenset[str]
    ) -> tuple[list[ApiCall], PassStats]:
        canonical: dict[tuple, object] = {}
        rewritten: list[ApiCall] = []
        changed = 0
        for call in calls:
            if call.lut is not None:
                key = (call.lut.values, call.lut.index_bits, call.lut.element_bits)
                canon = canonical.setdefault(key, call.lut)
                if canon is not call.lut and canon != call.lut:
                    call = replace(call, lut=canon)
                    changed += 1
            rewritten.append(call)
        return rewritten, PassStats(self.name, changed, {"tables_shared": changed})


class LutChainFusionPass:
    """Compose single-consumer LUT chains into one table lookup.

    ``t = f(...); y = map(g, t)`` with ``t`` consumed only by the map and
    not itself a program output becomes one query of the composed table
    ``g o f`` (:mod:`repro.opt.compose`).  The head ``f`` may be unary
    (``map`` — the fused call stays a ``map``) or binary (``add``,
    ``mul``, ``*_lut``, or an earlier fusion — the fused call keeps the
    binary operand-merge lowering under :data:`FUSED_BINARY_OPERATION`).
    Applied to fixpoint, a whole unary chain collapses into the head.
    """

    name = "lut-chain-fusion"

    def run(
        self, calls: list[ApiCall], preserved: frozenset[str]
    ) -> tuple[list[ApiCall], PassStats]:
        calls = list(calls)
        fused_chains = 0
        while True:
            applied = self._fuse_one(calls, preserved)
            if not applied:
                break
            fused_chains += 1
        return calls, PassStats(
            self.name, fused_chains, {"fused_chains": fused_chains}
        )

    @staticmethod
    def _fuse_one(calls: list[ApiCall], preserved: frozenset[str]) -> bool:
        counts = consumer_counts(calls)
        producers = producer_index(calls)
        for index, tail in enumerate(calls):
            if tail.operation != "map" or tail.lut is None:
                continue
            source = tail.inputs[0]
            head_index = producers.get(source.name)
            if head_index is None:
                continue
            head = calls[head_index]
            if head.lut is None:
                continue
            if counts.get(source.name) != 1 or source.name in preserved:
                continue
            if not can_compose(head.lut, tail.lut):
                continue
            operation = "map" if head.operation == "map" else FUSED_BINARY_OPERATION
            fused = ApiCall(
                operation=operation,
                inputs=head.inputs,
                output=tail.output,
                lut=compose_luts(head.lut, tail.lut),
                parameters=dict(head.parameters),
            )
            calls[head_index] = fused
            del calls[index]
            return True
        return False


class CommonSubexpressionEliminationPass:
    """Reuse the earlier result of a repeated computation.

    Two calls compute the same values when their operation, input vectors
    (by name, size, and width), table contents, parameters, and output
    width all coincide — the output width matters because bitwise and
    shift results are masked to it.  Later duplicates are dropped and
    their consumers redirected to the first result; a duplicate whose
    output is itself a program result is instead rewritten into an
    in-DRAM ``move`` (RowClone) when that trades a row sweep for a copy.
    Duplicates of a program result are left alone: aliasing consumers
    onto a preserved vector would give it consumers and change the
    program's output set.
    """

    name = "cse"

    def run(
        self, calls: list[ApiCall], preserved: frozenset[str]
    ) -> tuple[list[ApiCall], PassStats]:
        rename: dict[str, PlutoVector] = {}
        first_by_key: dict[tuple, ApiCall] = {}
        rewritten: list[ApiCall] = []
        deduped = 0
        moved = 0
        for call in calls:
            call = self._rewrite_inputs(call, rename)
            key = self._expression_key(call)
            earlier = first_by_key.get(key) if key is not None else None
            if earlier is None:
                if key is not None:
                    first_by_key[key] = call
                rewritten.append(call)
                continue
            if earlier.output.name in preserved:
                # Reading a preserved vector would make it a consumed
                # intermediate; keep the duplicate as recorded.
                rewritten.append(call)
                continue
            if call.output.name in preserved:
                if call.lut is not None:
                    # The duplicate's result must stay materialised under
                    # its own name: copy it instead of re-sweeping.
                    rewritten.append(
                        ApiCall(
                            operation="move",
                            inputs=(earlier.output,),
                            output=call.output,
                        )
                    )
                    moved += 1
                else:
                    rewritten.append(call)
                continue
            rename[call.output.name] = earlier.output
            deduped += 1
        return rewritten, PassStats(
            self.name, deduped + moved, {"reused": deduped, "moved": moved}
        )

    @staticmethod
    def _rewrite_inputs(call: ApiCall, rename: dict[str, PlutoVector]) -> ApiCall:
        if not any(operand.name in rename for operand in call.inputs):
            return call
        return replace(
            call,
            inputs=tuple(rename.get(operand.name, operand) for operand in call.inputs),
        )

    @staticmethod
    def _expression_key(call: ApiCall) -> tuple | None:
        key = (
            call.operation,
            tuple(
                (operand.name, operand.size, operand.bit_width)
                for operand in call.inputs
            ),
            call.lut,
            tuple(sorted(call.parameters.items())),
            call.output.size,
            call.output.bit_width,
        )
        try:
            hash(key)  # unhashable parameter values: never merged
        except TypeError:
            return None
        return key


class DeadOpEliminationPass:
    """Drop calls whose results cannot reach a preserved output.

    A backward sweep from the preserved names over the (topological)
    call list; anything not transitively needed — dead branches the
    caller declared away, or intermediates detached by fusion and CSE —
    is removed, together with its row allocations and sweeps.
    """

    name = "dead-op-elimination"

    def run(
        self, calls: Sequence[ApiCall], preserved: frozenset[str]
    ) -> tuple[list[ApiCall], PassStats]:
        needed = set(preserved)
        kept_reversed: list[ApiCall] = []
        for call in reversed(list(calls)):
            if call.output.name not in needed:
                continue
            kept_reversed.append(call)
            needed.update(operand.name for operand in call.inputs)
        kept = list(reversed(kept_reversed))
        removed = len(calls) - len(kept)
        return kept, PassStats(self.name, removed, {"removed": removed})

"""The pass manager: run the pipeline to fixpoint and report the savings.

:func:`optimize_program` is the subsystem's front door: it normalises a
recorded call list into dependency order, fixes the set of *preserved*
outputs (the program's natural outputs by default, or an explicit
subset), runs the pass pipeline until a round changes nothing, and
returns the rewritten program together with an
:class:`~repro.opt.report.OptimizationReport`.

:func:`optimize_cached` memoizes whole optimizations on the program
structure key (the same key the compile cache uses), so the serving path
optimises each distinct program shape once no matter how many requests
carry it; its hit/miss counters surface through
``PlutoSession.cache_stats()["optimizer"]``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.analyze.verifier import check_pass_invariants, verification_enabled
from repro.api.handles import ApiCall, PlutoVector
from repro.errors import CompilationError
from repro.opt.analysis import natural_output_names, topological_calls
from repro.opt.passes import (
    CommonSubexpressionEliminationPass,
    DeadOpEliminationPass,
    LutChainFusionPass,
    LutDeduplicationPass,
    OptimizationPass,
)
from repro.obs.trace import stage
from repro.opt.report import OptimizationReport, program_metrics
from repro.utils.memo import BoundedMemo

__all__ = [
    "OptimizedProgram",
    "PassManager",
    "default_passes",
    "optimize_program",
    "optimize_cached",
    "seed_optimizer_cache",
    "optimizer_cache_stats",
    "clear_optimizer_cache",
]


def default_passes() -> tuple[OptimizationPass, ...]:
    """The standard pipeline, in dependency order.

    Dedup first (so fusion and CSE see canonical tables), then fusion
    (which detaches intermediates), then CSE (fusion can expose
    duplicates), then dead-op elimination to sweep up whatever the
    earlier passes orphaned.  The manager re-runs the whole pipeline
    until a round is a no-op, so enabling opportunities across passes
    (a removed consumer turning a chain single-consumer, say) are found.
    """
    return (
        LutDeduplicationPass(),
        LutChainFusionPass(),
        CommonSubexpressionEliminationPass(),
        DeadOpEliminationPass(),
    )


@dataclass(frozen=True)
class OptimizedProgram:
    """An optimized API program plus the account of what was saved."""

    calls: tuple[ApiCall, ...]
    report: OptimizationReport
    #: Names of the outputs the optimization preserved bit-identically.
    output_names: frozenset[str]


class PassManager:
    """Runs an ordered pass pipeline over API programs to fixpoint.

    ``verify`` re-verifies the program through the IR verifier
    (:func:`repro.analyze.verifier.check_pass_invariants`) after every
    pass that changed it, so a broken rewrite is caught at the pass that
    introduced it: ``"always"`` unconditionally, ``"debug"`` (the
    default) only under ``__debug__`` — i.e. on in tests and normal
    runs, compiled away under ``python -O`` — and ``"off"`` never.
    Serving overhead is ~zero either way because whole optimizations
    are memoized on the program structure key
    (:func:`optimize_cached`), so each shape pays for its verification
    exactly once.
    """

    def __init__(
        self,
        passes: Sequence[OptimizationPass] | None = None,
        *,
        max_rounds: int = 8,
        verify: str | None = None,
    ) -> None:
        if max_rounds <= 0:
            raise CompilationError("the pass pipeline needs at least one round")
        self.passes: tuple[OptimizationPass, ...] = (
            tuple(passes) if passes is not None else default_passes()
        )
        self.max_rounds = max_rounds
        self.verify = "debug" if verify is None else verify
        verification_enabled(self.verify)  # reject unknown modes eagerly

    def optimize(
        self,
        calls: Sequence[ApiCall],
        *,
        outputs: Iterable[PlutoVector | str] | None = None,
    ) -> OptimizedProgram:
        """Optimize ``calls``, preserving ``outputs`` bit-identically.

        ``outputs`` defaults to the program's natural outputs (vectors
        produced but never consumed — exactly what execution returns), in
        which case the optimized program has the *same* output set.  An
        explicit subset additionally licenses dead-op elimination to drop
        every computation the named outputs do not depend on.
        """
        original = list(calls)
        if not original:
            raise CompilationError("cannot optimize an empty API program")
        work = topological_calls(original)
        preserved = self._preserved_names(work, outputs)
        before = program_metrics(original)

        checking = verification_enabled(self.verify)
        trail = []
        rounds = 0
        for _ in range(self.max_rounds):
            rounds += 1
            round_changed = False
            for optimization_pass in self.passes:
                with stage(f"opt:{optimization_pass.name}", round=rounds):
                    work, stats = optimization_pass.run(work, preserved)
                if stats.changed:
                    trail.append(stats)
                    round_changed = True
                    if checking:
                        check_pass_invariants(
                            work,
                            preserved=preserved,
                            pass_name=optimization_pass.name,
                        )
            if not round_changed:
                break
        if outputs is None and natural_output_names(work) != preserved:
            raise CompilationError(
                "optimizer invariant violated: the program's output set "
                f"changed from {sorted(preserved)} to "
                f"{sorted(natural_output_names(work))}"
            )
        report = OptimizationReport(
            before=before,
            after=program_metrics(work),
            passes=tuple(trail),
            rounds=rounds,
        )
        return OptimizedProgram(
            calls=tuple(work), report=report, output_names=preserved
        )

    @staticmethod
    def _preserved_names(
        calls: Sequence[ApiCall],
        outputs: Iterable[PlutoVector | str] | None,
    ) -> frozenset[str]:
        if outputs is None:
            return natural_output_names(calls)
        names = frozenset(
            output.name if isinstance(output, PlutoVector) else str(output)
            for output in outputs
        )
        if not names:
            raise CompilationError("cannot optimize away every program output")
        produced = {call.output.name for call in calls}
        missing = names - produced
        if missing:
            raise CompilationError(
                f"declared outputs {sorted(missing)} are not produced by any "
                "API call"
            )
        return names


def optimize_program(
    calls: Sequence[ApiCall],
    *,
    outputs: Iterable[PlutoVector | str] | None = None,
    passes: Sequence[OptimizationPass] | None = None,
    verify: str | None = None,
) -> OptimizedProgram:
    """Optimize one API program with the default (or given) pipeline."""
    return PassManager(passes, verify=verify).optimize(calls, outputs=outputs)


#: Structure key -> OptimizedProgram (natural outputs, default pipeline).
_OPTIMIZE_MEMO: BoundedMemo[OptimizedProgram] = BoundedMemo(512)


def optimize_cached(calls: Sequence[ApiCall]) -> OptimizedProgram:
    """Optimize with the default pipeline, memoized on program structure.

    The key is :func:`repro.compiler.lowering.program_structure_key` —
    the same identity the compile, trace-template, and makespan memos
    use, so a served program shape pays for its optimization exactly
    once.  Unhashable structures (list-valued parameters) bypass the
    memo and are counted as ``uncached``.
    """
    from repro.compiler.lowering import program_structure_key

    try:
        key = program_structure_key(list(calls))
        # The key tuple builds fine around unhashable parameter values
        # and only fails at hash time — probe before touching the memo.
        hash(key)
    except TypeError:
        _OPTIMIZE_MEMO.note_uncached()
        return optimize_program(calls)
    optimized = _OPTIMIZE_MEMO.get(key)
    if optimized is None:
        optimized = optimize_program(calls)
        _OPTIMIZE_MEMO.put(key, optimized)
    return optimized


def seed_optimizer_cache(key: tuple, optimized: OptimizedProgram) -> None:
    """Install an optimization under its structure key (warm start).

    Used by the shared artifact store (:mod:`repro.serve.store`) to hand
    a fresh process the optimizations a previous one already paid for.
    """
    _OPTIMIZE_MEMO.put(key, optimized)


def optimizer_cache_stats() -> dict[str, int]:
    """Hit/miss counters and size of the memoized-optimization cache."""
    return _OPTIMIZE_MEMO.stats()


def clear_optimizer_cache() -> None:
    """Drop every memoized optimization and reset the counters."""
    _OPTIMIZE_MEMO.clear()

"""Optimization accounting: per-pass statistics and the overall report.

Every pass returns a :class:`PassStats` describing what it changed, and
the :class:`~repro.opt.pipeline.PassManager` folds them — together with
before/after :class:`ProgramMetrics` snapshots — into one
:class:`OptimizationReport`.  The report is deliberately expressed in the
units the rest of the stack optimises for: *LUT queries* (each lowers to
one ``pluto_op``, i.e. one row sweep per source row), *swept LUT rows*
(the activation count behind those sweeps), and *LUT loads* (one
``pluto_subarray_alloc`` + ROM load per distinct table).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.handles import ApiCall

__all__ = ["PassStats", "ProgramMetrics", "OptimizationReport", "program_metrics"]


@dataclass(frozen=True)
class PassStats:
    """What one pass changed during one pipeline round."""

    name: str
    #: Number of calls this pass removed, fused away, or rewrote.
    changed: int = 0
    #: Pass-specific counters (e.g. ``{"fused_chains": 3}``).
    detail: dict[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class ProgramMetrics:
    """Cost-relevant shape of one API program.

    ``swept_lut_rows`` counts the LUT rows activated per source row of
    input (each LUT query sweeps ``lut.num_entries`` rows), so the ratio
    of before/after values equals the row-sweep activation reduction for
    any input size.  ``lut_loads`` counts distinct tables as the compiler
    binds them (one subarray allocation and ROM load each).
    """

    ops: int
    lut_queries: int
    swept_lut_rows: int
    lut_loads: int
    lut_rows_loaded: int


def program_metrics(calls: "Sequence[ApiCall]") -> ProgramMetrics:
    """Compute the cost-relevant metrics of a call list."""
    lut_calls = [call for call in calls if call.lut is not None]
    distinct_luts = {call.lut for call in lut_calls}
    return ProgramMetrics(
        ops=len(calls),
        lut_queries=len(lut_calls),
        swept_lut_rows=sum(call.lut.num_entries for call in lut_calls),
        lut_loads=len(distinct_luts),
        lut_rows_loaded=sum(lut.num_entries for lut in distinct_luts),
    )


@dataclass(frozen=True)
class OptimizationReport:
    """Before/after metrics plus the per-pass trail of one optimization."""

    before: ProgramMetrics
    after: ProgramMetrics
    passes: tuple[PassStats, ...] = ()
    #: Pipeline rounds run before the program reached a fixpoint.
    rounds: int = 0

    # ------------------------------------------------------------------ #
    # Savings
    # ------------------------------------------------------------------ #
    @property
    def ops_saved(self) -> int:
        """API calls eliminated (each was at least one DRAM operation)."""
        return self.before.ops - self.after.ops

    @property
    def lut_queries_saved(self) -> int:
        """``pluto_op`` instructions eliminated (one row sweep per source row)."""
        return self.before.lut_queries - self.after.lut_queries

    @property
    def swept_rows_saved(self) -> int:
        """LUT-row activations saved per source row of input."""
        return self.before.swept_lut_rows - self.after.swept_lut_rows

    @property
    def lut_loads_saved(self) -> int:
        """Distinct-table subarray allocations (and ROM loads) eliminated."""
        return self.before.lut_loads - self.after.lut_loads

    @property
    def lut_query_reduction(self) -> float:
        """Fraction of LUT queries eliminated, in [0, 1]."""
        if self.before.lut_queries == 0:
            return 0.0
        return self.lut_queries_saved / self.before.lut_queries

    @property
    def sweep_reduction(self) -> float:
        """Fraction of swept LUT rows eliminated, in [0, 1]."""
        if self.before.swept_lut_rows == 0:
            return 0.0
        return self.swept_rows_saved / self.before.swept_lut_rows

    @property
    def changed(self) -> bool:
        """Whether any pass rewrote the program at all."""
        return any(stats.changed for stats in self.passes)

    def counters(self) -> dict[str, int]:
        """The savings as a flat counter dict (service/stats surfaces)."""
        return {
            "ops_saved": self.ops_saved,
            "lut_queries_saved": self.lut_queries_saved,
            "swept_rows_saved": self.swept_rows_saved,
            "lut_loads_saved": self.lut_loads_saved,
        }

    def summary(self) -> str:
        """Human-readable multi-line report (used by the examples)."""
        lines = [
            f"ops            : {self.before.ops} -> {self.after.ops} "
            f"({self.ops_saved} saved)",
            f"LUT queries    : {self.before.lut_queries} -> "
            f"{self.after.lut_queries} "
            f"({100.0 * self.lut_query_reduction:.0f}% fewer row sweeps)",
            f"swept LUT rows : {self.before.swept_lut_rows} -> "
            f"{self.after.swept_lut_rows} (per source row)",
            f"LUT loads      : {self.before.lut_loads} -> {self.after.lut_loads}",
            f"rounds         : {self.rounds}",
        ]
        applied = [stats for stats in self.passes if stats.changed]
        if applied:
            lines.append(
                "passes         : "
                + ", ".join(f"{stats.name} x{stats.changed}" for stats in applied)
            )
        return "\n".join(lines)

"""Execution planning: the :class:`ExecutionPlan` front door + auto-planner.

One frozen :class:`ExecutionPlan` value describes how a recorded program
executes (shards, hierarchy placement, optimizer, tier) — replacing the
scattered per-entry-point keyword knobs — and :func:`plan_program` picks
that configuration automatically by pricing candidates with the analytic
makespan model.  See :mod:`repro.plan.execution_plan` and
:mod:`repro.plan.planner`.
"""

from repro.plan.execution_plan import (
    ExecutionPlan,
    plan_conflict_diagnostics,
    resolve_plan,
)
from repro.plan.planner import (
    CandidatePlan,
    CostPriors,
    PlannedExecution,
    PlannerReport,
    clear_planner_cache,
    cost_priors,
    plan_program,
    planner_cache_stats,
    reset_cost_priors,
)

__all__ = [
    "ExecutionPlan",
    "resolve_plan",
    "plan_conflict_diagnostics",
    "CandidatePlan",
    "CostPriors",
    "PlannedExecution",
    "PlannerReport",
    "plan_program",
    "cost_priors",
    "reset_cost_priors",
    "planner_cache_stats",
    "clear_planner_cache",
]

"""The unified execution front door: :class:`ExecutionPlan`.

Before this module, callers tuned execution with a zoo of scattered
keywords — ``shards=``, ``channels=``, ``ranks=``, ``optimize=`` and the
backend selection — each living on a different entry point.  An
:class:`ExecutionPlan` is one frozen, hashable value object describing
*how* a recorded program should execute:

* ``mode="explicit"`` (default): execute exactly this configuration.
* ``mode="auto"``: defer the configuration to the cost-based planner
  (:mod:`repro.plan.planner`), which prices candidate configurations
  with the analytic makespan model and picks the cheapest.  The session
  entry points also accept the string ``"auto"`` as shorthand.

Plans validate at construction through the shared
:class:`~repro.analyze.diagnostics.Diagnostic` machinery, so
contradictory settings (an auto plan pinning explicit geometry, a
placement wider than it is allowed to be) fail with structured
diagnostics instead of deep inside dispatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError, VerificationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analyze.diagnostics import Diagnostic
    from repro.dram.geometry import DRAMGeometry

__all__ = [
    "ExecutionPlan",
    "resolve_plan",
    "plan_conflict_diagnostics",
]


_MODES = ("explicit", "auto")
_TIERS = ("auto", "compiled", "interpreted")


@dataclass(frozen=True)
class ExecutionPlan:
    """One execution configuration for a recorded pLUTo program.

    ``shards`` partitions the element space across DRAM banks
    (``None`` means the route's default: 1 for plain runs, every bank in
    the device for hierarchical runs).  ``hierarchical`` spreads the
    shards over the channel/rank/bank hierarchy; ``channels`` / ``ranks``
    optionally *narrow* that placement to a subset of the device's
    interface levels (they require ``hierarchical=True``).

    ``optimize`` runs the program optimizer before compilation
    (``None`` defers to ``PlutoConfig(optimize=...)``).  ``tier`` picks
    the execution tier: ``"compiled"`` (whole-program cached closures),
    ``"interpreted"`` (the per-instruction walk), or ``"auto"`` (the
    backend's best).

    ``mode="auto"`` hands the geometry decision to the cost-based
    planner; pinning ``optimize`` or ``tier`` on an auto plan narrows
    the search, but pinning geometry (``shards`` / ``hierarchical`` /
    ``channels`` / ``ranks``) contradicts it and is rejected.
    """

    mode: str = "explicit"
    shards: int | None = None
    hierarchical: bool = False
    channels: int | None = None
    ranks: int | None = None
    optimize: bool | None = None
    tier: str = "auto"

    def __post_init__(self) -> None:
        from repro.analyze.diagnostics import Diagnostic, Severity

        if self.mode not in _MODES:
            raise ConfigurationError(
                f"unknown plan mode {self.mode!r}; expected one of {list(_MODES)}"
            )
        if self.tier not in _TIERS:
            raise ConfigurationError(
                f"unknown execution tier {self.tier!r}; expected one of "
                f"{list(_TIERS)}"
            )
        if self.shards is not None and self.shards < 1:
            raise ConfigurationError("shard count must be >= 1")
        if self.channels is not None and self.channels < 1:
            raise ConfigurationError("plan channel count must be >= 1")
        if self.ranks is not None and self.ranks < 1:
            raise ConfigurationError("plan rank count must be >= 1")
        diagnostics: list[Diagnostic] = []
        if not self.hierarchical and (
            self.channels is not None or self.ranks is not None
        ):
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="plan-placement",
                    message=(
                        "channel/rank placement applies to hierarchical "
                        "execution only; this plan has hierarchical=False"
                    ),
                    hint="pass hierarchical=True or drop channels=/ranks=",
                )
            )
        if self.mode == "auto" and self._pinned_geometry():
            pinned = ", ".join(self._pinned_geometry())
            diagnostics.append(
                Diagnostic(
                    severity=Severity.ERROR,
                    code="plan-contradiction",
                    message=(
                        "an auto plan delegates the execution geometry to "
                        f"the planner but pins {pinned}"
                    ),
                    hint=(
                        "drop the explicit geometry, or use mode='explicit' "
                        "to run exactly that configuration"
                    ),
                )
            )
        if diagnostics:
            raise VerificationError(diagnostics, subject="execution plan")

    def _pinned_geometry(self) -> list[str]:
        """Names of explicitly pinned geometry fields (empty when free)."""
        pinned: list[str] = []
        if self.shards is not None:
            pinned.append(f"shards={self.shards}")
        if self.hierarchical:
            pinned.append("hierarchical=True")
        if self.channels is not None:
            pinned.append(f"channels={self.channels}")
        if self.ranks is not None:
            pinned.append(f"ranks={self.ranks}")
        return pinned

    @classmethod
    def auto(
        cls, *, optimize: bool | None = None, tier: str = "auto"
    ) -> "ExecutionPlan":
        """An auto plan, optionally pinning the optimizer or the tier."""
        return cls(mode="auto", optimize=optimize, tier=tier)

    @property
    def is_auto(self) -> bool:
        """Whether the planner picks the geometry for this plan."""
        return self.mode == "auto"

    @property
    def effective_shards(self) -> int:
        """The shard count this plan executes with (1 when unset)."""
        return self.shards if self.shards is not None else 1

    def label(self) -> str:
        """Compact human-readable description, e.g. ``shards=16+opt``."""
        if self.is_auto:
            return "auto"
        parts: list[str] = []
        if self.hierarchical:
            placement = ""
            if self.channels is not None or self.ranks is not None:
                placement = f"@{self.channels or 'all'}x{self.ranks or 'all'}"
            shards = "device" if self.shards is None else str(self.shards)
            parts.append(f"hierarchical{placement}:{shards}")
        else:
            parts.append(f"shards={self.effective_shards}")
        if self.optimize:
            parts.append("opt")
        if self.tier != "auto":
            parts.append(self.tier)
        return "+".join(parts)


def resolve_plan(plan: "ExecutionPlan | str | None") -> ExecutionPlan:
    """Normalize a ``plan=`` argument to an :class:`ExecutionPlan`.

    ``None`` means the default explicit plan (one shard, engine-config
    optimize, best tier); the string ``"auto"`` is shorthand for
    :meth:`ExecutionPlan.auto`.  The two named plans are shared
    singletons — resolution on the hot ``run()`` path costs no
    allocation.
    """
    if plan is None:
        return _DEFAULT_PLAN
    if isinstance(plan, str):
        if plan == "auto":
            return _AUTO_PLAN
        raise ConfigurationError(
            f"unknown plan {plan!r}; expected 'auto' or an ExecutionPlan"
        )
    if isinstance(plan, ExecutionPlan):
        return plan
    raise ConfigurationError(
        f"plan must be an ExecutionPlan, 'auto', or None, got {type(plan).__name__}"
    )


_DEFAULT_PLAN = ExecutionPlan()
_AUTO_PLAN = ExecutionPlan.auto()


def plan_conflict_diagnostics(
    plan: ExecutionPlan, geometry: "DRAMGeometry"
) -> "tuple[Diagnostic, ...]":
    """Diagnostics for a plan that contradicts a device geometry.

    Used by ``PlutoConfig`` to reject contradictory settings at
    construction — a shard count beyond the addressable banks, or a
    channel/rank placement wider than the device — instead of failing
    deep inside dispatch.  Returns an empty tuple when the plan fits.
    """
    from repro.analyze.diagnostics import Diagnostic, Severity
    from repro.analyze.verifier import shards_overcommit_diagnostic

    diagnostics: list[Diagnostic] = []
    if plan.channels is not None and plan.channels > geometry.channels:
        diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="plan-placement",
                message=(
                    f"plan spreads shards over {plan.channels} channels but "
                    f"the geometry has {geometry.channels}"
                ),
                hint="raise PlutoConfig(channels=...) or narrow the plan",
            )
        )
    if plan.ranks is not None and plan.ranks > geometry.ranks:
        diagnostics.append(
            Diagnostic(
                severity=Severity.ERROR,
                code="plan-placement",
                message=(
                    f"plan spreads shards over {plan.ranks} ranks but "
                    f"the geometry has {geometry.ranks}"
                ),
                hint="raise PlutoConfig(ranks=...) or narrow the plan",
            )
        )
    if plan.shards is not None:
        if plan.hierarchical:
            channels = plan.channels or geometry.channels
            ranks = plan.ranks or geometry.ranks
            capacity = channels * ranks * geometry.banks
            if plan.shards > capacity:
                diagnostics.append(
                    Diagnostic(
                        severity=Severity.ERROR,
                        code="shards-overcommit",
                        message=(
                            f"cannot run {plan.shards} shards on a device "
                            f"offering {capacity} banks ({channels} channels "
                            f"x {ranks} ranks x {geometry.banks} banks)"
                        ),
                        hint="lower the shard count or widen the geometry",
                    )
                )
        else:
            overcommit = shards_overcommit_diagnostic(
                plan.shards, geometry.banks
            )
            if overcommit is not None:
                diagnostics.append(overcommit)
    return tuple(diagnostics)

"""The cost-based auto-planner.

Given a recorded program and an engine, :func:`plan_program` enumerates
candidate execution configurations — shard counts, channel/rank
placements, optimizer on/off, execution tier — prices each with the
memoized analytic makespan model (the same
:func:`~repro.controller.dispatch.merged_makespan_ns` /
:func:`~repro.controller.hierarchy.hierarchical_makespan_ns` the
dispatchers charge executions with, backed by
:mod:`repro.dram.analytic`), adds measured compile/optimize wall-clock
priors, and picks the argmin.  Because pricing and execution share one
model *and* one memo, the planner's predicted makespan is exact with
respect to the model — and the merges it performs are warm-cache hits
when the chosen plan executes.

Chosen plans are memoized on the program structure key (the same
identity the compile/optimize/verify/template memos use), surfaced in
``cache_stats()["planner"]``: planning a structurally repeated program
is a dict hit with **zero** analytic-model calls.  Every chosen sharded
plan passes :func:`~repro.analyze.verifier.verify_shard_plans` before it
is cached or executed.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, ClassVar, Sequence

from repro.errors import ConfigurationError
from repro.plan.execution_plan import ExecutionPlan
from repro.utils.memo import BoundedMemo

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.handles import ApiCall
    from repro.controller.executor import PlutoController, TraceTemplate
    from repro.core.engine import PlutoEngine
    from repro.dram.commands import Command

__all__ = [
    "CostPriors",
    "CandidatePlan",
    "PlannerReport",
    "PlannedExecution",
    "plan_program",
    "plan_memo_key",
    "seed_planner_cache",
    "cost_priors",
    "reset_cost_priors",
    "planner_cache_stats",
    "clear_planner_cache",
]


#: Candidates within this fraction of the best predicted makespan are
#: considered tied; ties break toward the cheaper wall-clock (and then
#: simpler) plan, so auto never gives up more than this sliver of
#: modelled makespan to save real compile/optimize seconds.
TIE_BREAK_FRACTION = 0.005


@dataclass
class CostPriors:
    """EMA priors of the measured one-time wall-clock costs.

    The analytic model prices *modelled DRAM time*; picking between
    near-tied candidates additionally needs the *host* cost a candidate
    implies — optimizing the program, compiling shard replicas, and the
    per-run Python dispatch of each tier.  These priors start from
    conservative estimates and blend in measurements taken while the
    planner prepares candidates, so long-running sessions converge to
    the machine's real costs.
    """

    optimize_s_per_call: float = 2.0e-4
    compile_s_per_call: float = 1.0e-4
    interpreted_s_per_instruction: float = 2.0e-5
    compiled_s_per_instruction: float = 2.0e-6
    updates: int = 0

    _ALPHA: ClassVar[float] = 0.3

    def observe_optimize(self, seconds: float, calls: int) -> None:
        """Blend one measured optimizer run into the prior."""
        per_call = seconds / max(calls, 1)
        self.optimize_s_per_call += self._ALPHA * (
            per_call - self.optimize_s_per_call
        )
        self.updates += 1

    def observe_compile(self, seconds: float, calls: int) -> None:
        """Blend one measured compile into the prior."""
        per_call = seconds / max(calls, 1)
        self.compile_s_per_call += self._ALPHA * (
            per_call - self.compile_s_per_call
        )
        self.updates += 1

    def snapshot(self) -> tuple[tuple[str, float], ...]:
        """The priors as a hashable name/value tuple (for reports)."""
        return (
            ("optimize_s_per_call", self.optimize_s_per_call),
            ("compile_s_per_call", self.compile_s_per_call),
            ("interpreted_s_per_instruction", self.interpreted_s_per_instruction),
            ("compiled_s_per_instruction", self.compiled_s_per_instruction),
            ("updates", float(self.updates)),
        )


_PRIORS = CostPriors()


def cost_priors() -> CostPriors:
    """The process-wide cost priors the planner prices with."""
    return _PRIORS


def reset_cost_priors() -> None:
    """Reset the measured priors to their conservative defaults."""
    global _PRIORS
    _PRIORS = CostPriors()


@dataclass(frozen=True)
class CandidatePlan:
    """One priced candidate configuration."""

    plan: ExecutionPlan
    #: Modelled DRAM makespan of executing the plan once.
    predicted_makespan_ns: float
    #: Estimated host wall-clock to prepare and run the plan once
    #: (optimize + per-replica compiles + tier dispatch), from the priors.
    wall_cost_s: float


@dataclass(frozen=True)
class PlannerReport:
    """What the planner considered and what it chose.

    ``measured_makespan_ns`` is attached by the execution front doors
    after the run, so callers can hold prediction against measurement;
    ``cached`` marks reports served from the plan memo.
    """

    subject: str
    candidates: tuple[CandidatePlan, ...]
    chosen: ExecutionPlan
    predicted_makespan_ns: float
    #: Predicted makespan of the naive default (one shard, unoptimized).
    baseline_makespan_ns: float
    priors: tuple[tuple[str, float], ...]
    planning_wall_s: float
    cached: bool = False
    measured_makespan_ns: float | None = None

    @property
    def predicted_gain(self) -> float:
        """Baseline over chosen predicted makespan (>= 1 when auto helps)."""
        if self.predicted_makespan_ns <= 0:
            return float("inf")
        return self.baseline_makespan_ns / self.predicted_makespan_ns

    @property
    def prediction_error(self) -> float | None:
        """Relative |predicted - measured| / measured, when measured."""
        if self.measured_makespan_ns is None or self.measured_makespan_ns <= 0:
            return None
        return (
            abs(self.predicted_makespan_ns - self.measured_makespan_ns)
            / self.measured_makespan_ns
        )

    def with_measured(self, makespan_ns: float) -> "PlannerReport":
        """This report with the measured makespan attached."""
        return replace(self, measured_makespan_ns=makespan_ns)


@dataclass(frozen=True)
class PlannedExecution:
    """A chosen concrete plan plus the report that led to it."""

    plan: ExecutionPlan
    report: PlannerReport


#: (structure key, engine config, modes, batched, optimize pin, tier pin)
#: -> PlannedExecution.  A hit returns the chosen plan with zero
#: analytic-model calls.
_PLAN_MEMO: BoundedMemo[PlannedExecution] = BoundedMemo(512)


def plan_memo_key(
    structure_key: tuple,
    config: object,
    modes: tuple[str, ...],
    supports_batched: bool,
    request: ExecutionPlan,
) -> tuple:
    """The chosen-plan memo identity for one planning query.

    Exported so the shared artifact store (:mod:`repro.serve.store`) can
    seed the memo with decisions a previous process already paid for;
    :func:`plan_program` builds its keys through this same function, so
    the two can never drift apart.
    """
    return (
        structure_key,
        config,
        tuple(modes),
        supports_batched,
        request.optimize,
        request.tier,
    )


def seed_planner_cache(memo_key: tuple, planned: PlannedExecution) -> None:
    """Install a chosen plan under its memo key (shared-store warm start)."""
    _PLAN_MEMO.put(memo_key, planned)


def planner_cache_stats() -> dict[str, int]:
    """Hit/miss counters and size of the chosen-plan memo."""
    return _PLAN_MEMO.stats()


def clear_planner_cache() -> None:
    """Drop every memoized chosen plan and reset the counters."""
    _PLAN_MEMO.clear()


def _shard_grid(limit: int, size: int) -> list[int]:
    """Candidate shard counts: powers of two up to ``min(limit, size)``."""
    cap = min(limit, size)
    grid: set[int] = {1}
    power = 2
    while power <= cap:
        grid.add(power)
        power *= 2
    grid.add(cap)
    return sorted(grid)


def _placements(
    channels: int, ranks: int
) -> list[tuple[int, int]]:
    """Hierarchy placements worth pricing: full device plus each level alone."""
    placements = [(channels, ranks)]
    if ranks > 1 and channels > 1:
        placements.append((channels, 1))
        placements.append((1, ranks))
    return placements


def _tiers(request: ExecutionPlan, supports_batched: bool) -> tuple[str, ...]:
    if request.tier != "auto":
        return (request.tier,)
    if supports_batched:
        return ("compiled", "interpreted")
    return ("interpreted",)


def _template_for(
    controller: "PlutoController",
    calls: Sequence["ApiCall"],
    priors: CostPriors,
) -> "TraceTemplate":
    """Compile (cached) and build the accounting template, timing it."""
    from repro.api.session import compile_cached_with_key

    started = time.perf_counter()
    compiled, key = compile_cached_with_key(list(calls))
    priors.observe_compile(time.perf_counter() - started, len(calls))
    return controller.trace_template(compiled, structure_key=key)


def _tier_run_cost_s(tier: str, instructions: int, priors: CostPriors) -> float:
    per_instruction = (
        priors.compiled_s_per_instruction
        if tier == "compiled"
        else priors.interpreted_s_per_instruction
    )
    return instructions * per_instruction


def _complexity(plan: ExecutionPlan) -> tuple[int, int, int]:
    """Tie-break ordering: prefer simpler plans at equal cost."""
    return (
        1 if plan.hierarchical else 0,
        plan.effective_shards,
        0 if plan.tier == "compiled" else 1,
    )


def _verify_chosen(
    plan: ExecutionPlan,
    calls: Sequence["ApiCall"],
    engine: "PlutoEngine",
) -> None:
    """Run the chosen shard plan through the static shard-plan verifier."""
    from dataclasses import replace as replace_dataclass

    from repro.analyze.verifier import verify_shard_plans
    from repro.controller.dispatch import ShardPlanner
    from repro.controller.hierarchy import HierarchyPlanner

    geometry = engine.geometry
    if plan.hierarchical:
        placement = geometry
        if plan.channels is not None or plan.ranks is not None:
            placement = replace_dataclass(
                geometry,
                channels=plan.channels or geometry.channels,
                ranks=plan.ranks or geometry.ranks,
            )
        plans = HierarchyPlanner(placement).plan(calls, plan.shards)
        verify_shard_plans(
            plans, num_banks=geometry.banks, subject="auto-planned shard plan"
        ).raise_if_errors()
    elif plan.effective_shards > 1:
        planner = ShardPlanner(num_banks=geometry.banks)
        plans_ = planner.plan(calls, plan.effective_shards)
        verify_shard_plans(
            plans_, num_banks=geometry.banks, subject="auto-planned shard plan"
        ).raise_if_errors()


def _enumerate(
    calls: Sequence["ApiCall"],
    engine: "PlutoEngine",
    *,
    modes: tuple[str, ...],
    request: ExecutionPlan,
    supports_batched: bool,
    priors: CostPriors,
) -> tuple[list[CandidatePlan], dict[bool, Sequence["ApiCall"]]]:
    """Price every candidate configuration for ``calls`` on ``engine``."""
    from repro.controller.dispatch import ShardPlanner, merged_makespan_ns
    from repro.controller.executor import PlutoController
    from repro.controller.hierarchy import hierarchical_makespan_ns
    from repro.opt.pipeline import optimize_cached

    controller = PlutoController(engine, backend="vectorized", jit=False)
    geometry = engine.geometry
    tiers = _tiers(request, supports_batched)
    optimize_options = (
        (bool(request.optimize),)
        if request.optimize is not None
        else (False, True)
    )
    # Hierarchy placement on a single-channel single-rank device adds a
    # bus bound on top of the identical bank merge — strictly dominated
    # by the plain bank-parallel mode whenever that mode is searched.
    effective_modes = list(modes)
    if (
        "hierarchy" in effective_modes
        and "banks" in effective_modes
        and geometry.channels * geometry.ranks == 1
    ):
        effective_modes.remove("hierarchy")

    candidates: list[CandidatePlan] = []
    calls_by_optimize: dict[bool, Sequence["ApiCall"]] = {}
    for optimize in optimize_options:
        optimize_cost_s = 0.0
        if optimize:
            started = time.perf_counter()
            optimized = optimize_cached(list(calls))
            priors.observe_optimize(time.perf_counter() - started, len(calls))
            plan_calls: Sequence["ApiCall"] = list(optimized.calls)
            optimize_cost_s = len(calls) * priors.optimize_s_per_call
        else:
            plan_calls = list(calls)
        calls_by_optimize[optimize] = plan_calls

        try:
            size: int | None = ShardPlanner._uniform_size(plan_calls)
        except ConfigurationError:
            # Non-uniform (or empty) element space: only the unsharded
            # mode applies.  Entry points that demand a sharded layout
            # (run_hierarchical) get the shard planner's own error
            # rather than a silent fall back to a single-bank plan.
            if "single" not in effective_modes:
                raise
            size = None

        templates: dict[int, "TraceTemplate"] = {}

        def template_of(shard_calls: Sequence["ApiCall"], length: int) -> "TraceTemplate":
            template = templates.get(length)
            if template is None:
                template = _template_for(controller, shard_calls, priors)
                templates[length] = template
            return template

        if "single" in effective_modes or size is None:
            full = len(plan_calls)
            if full == 0:
                continue
            whole = template_of(plan_calls, size if size is not None else -1)
            compile_cost_s = len(plan_calls) * priors.compile_s_per_call
            for tier in tiers:
                candidates.append(
                    CandidatePlan(
                        plan=ExecutionPlan(
                            shards=1, optimize=optimize, tier=tier
                        ),
                        predicted_makespan_ns=whole.total_latency_ns,
                        wall_cost_s=optimize_cost_s
                        + compile_cost_s
                        + _tier_run_cost_s(
                            tier, whole.instructions_executed, priors
                        ),
                    )
                )
        if size is None:
            continue

        if "banks" in effective_modes:
            for shards in _shard_grid(geometry.banks, size):
                if shards == 1:
                    continue
                slices = ShardPlanner.plan_slices(plan_calls, shards)
                streams: list[Sequence["Command"]] = []
                instructions = 0
                distinct = 0
                seen: set[int] = set()
                for index, (start, stop, shard_calls) in enumerate(slices):
                    template = template_of(shard_calls, stop - start)
                    if (stop - start) not in seen:
                        seen.add(stop - start)
                        distinct += 1
                    instructions += template.instructions_executed
                    streams.append(
                        template.realize(
                            engine.timing, engine.energy, bank=index
                        ).commands
                    )
                predicted = merged_makespan_ns(streams, engine)
                compile_cost_s = (
                    distinct * len(plan_calls) * priors.compile_s_per_call
                )
                for tier in tiers:
                    candidates.append(
                        CandidatePlan(
                            plan=ExecutionPlan(
                                shards=shards, optimize=optimize, tier=tier
                            ),
                            predicted_makespan_ns=predicted,
                            wall_cost_s=optimize_cost_s
                            + compile_cost_s
                            + _tier_run_cost_s(tier, instructions, priors),
                        )
                    )

        if "hierarchy" in effective_modes:
            for channels, ranks in _placements(
                geometry.channels, geometry.ranks
            ):
                total_banks = channels * ranks * geometry.banks
                for shards in _shard_grid(total_banks, size):
                    slices = ShardPlanner.plan_slices(plan_calls, shards)
                    streams_h: list[Sequence["Command"]] = []
                    instructions = 0
                    distinct = 0
                    seen = set()
                    for start, stop, shard_calls in slices:
                        template = template_of(shard_calls, stop - start)
                        if (stop - start) not in seen:
                            seen.add(stop - start)
                            distinct += 1
                        instructions += template.instructions_executed
                        # The hierarchical scheduler reassigns banks by
                        # stream index, so bank-0 realizations price
                        # exactly what the dispatcher will charge.
                        streams_h.append(template.commands)
                    predicted = hierarchical_makespan_ns(
                        streams_h, engine, channels=channels, ranks=ranks
                    )
                    compile_cost_s = (
                        distinct * len(plan_calls) * priors.compile_s_per_call
                    )
                    plan_channels = (
                        channels if channels != geometry.channels else None
                    )
                    plan_ranks = ranks if ranks != geometry.ranks else None
                    for tier in tiers:
                        candidates.append(
                            CandidatePlan(
                                plan=ExecutionPlan(
                                    shards=shards,
                                    hierarchical=True,
                                    channels=plan_channels,
                                    ranks=plan_ranks,
                                    optimize=optimize,
                                    tier=tier,
                                ),
                                predicted_makespan_ns=predicted,
                                wall_cost_s=optimize_cost_s
                                + compile_cost_s
                                + _tier_run_cost_s(tier, instructions, priors),
                            )
                        )
    return candidates, calls_by_optimize


def _choose(candidates: Sequence[CandidatePlan]) -> CandidatePlan:
    """Argmin predicted makespan, ties broken by wall cost then simplicity."""
    best = min(candidate.predicted_makespan_ns for candidate in candidates)
    window = best * (1.0 + TIE_BREAK_FRACTION) if best > 0 else 0.0
    tied = [
        candidate
        for candidate in candidates
        if candidate.predicted_makespan_ns <= window
    ] or list(candidates)
    return min(
        tied,
        key=lambda candidate: (
            candidate.wall_cost_s,
            _complexity(candidate.plan),
            candidate.predicted_makespan_ns,
        ),
    )


def _baseline_makespan(candidates: Sequence[CandidatePlan]) -> float:
    """Predicted makespan of the naive default (one shard, unoptimized)."""
    for candidate in candidates:
        plan = candidate.plan
        if (
            not plan.hierarchical
            and plan.effective_shards == 1
            and not plan.optimize
        ):
            return candidate.predicted_makespan_ns
    return max(candidate.predicted_makespan_ns for candidate in candidates)


def plan_program(
    calls: Sequence["ApiCall"],
    engine: "PlutoEngine | None" = None,
    *,
    request: ExecutionPlan | None = None,
    modes: tuple[str, ...] = ("single", "banks", "hierarchy"),
    supports_batched: bool = True,
    subject: str = "program",
) -> PlannedExecution:
    """Pick the cheapest execution configuration for ``calls``.

    ``request`` is the auto plan carrying any pinned ``optimize`` /
    ``tier``; ``modes`` restricts the searched geometry families
    (``"single"``, ``"banks"``, ``"hierarchy"``) — the hierarchical
    front door passes ``("hierarchy",)`` so auto stays hierarchical.
    ``supports_batched`` describes the backend that will execute the
    plan (the functional oracle cannot fuse shards or run the compiled
    tier).

    Chosen plans are memoized on the program structure key plus the
    engine configuration and search constraints; a hit performs **zero**
    analytic-model calls.  The returned plan is concrete
    (``mode="explicit"``) and its shard plan, when sharded, has passed
    :func:`~repro.analyze.verifier.verify_shard_plans`.
    """
    from repro.api.session import hashable_structure_key
    from repro.core.engine import PlutoConfig, PlutoEngine

    if engine is None:
        engine = PlutoEngine(PlutoConfig())
    if request is None:
        request = ExecutionPlan.auto()
    if not request.is_auto:
        raise ConfigurationError(
            "plan_program expects an auto plan; explicit plans execute as-is"
        )

    structure_key = hashable_structure_key(calls)
    memo_key: tuple | None = None
    if structure_key is not None:
        memo_key = plan_memo_key(
            structure_key,
            engine.config,
            tuple(modes),
            supports_batched,
            request,
        )
        cached = _PLAN_MEMO.get(memo_key)
        if cached is not None:
            return PlannedExecution(
                plan=cached.plan,
                report=replace(cached.report, cached=True),
            )
    else:
        _PLAN_MEMO.note_uncached()

    started = time.perf_counter()
    priors = _PRIORS
    candidates, calls_by_optimize = _enumerate(
        calls,
        engine,
        modes=modes,
        request=request,
        supports_batched=supports_batched,
        priors=priors,
    )
    if not candidates:
        raise ConfigurationError(
            "the planner found no viable execution configuration "
            f"(modes={list(modes)})"
        )
    chosen = _choose(candidates)
    plan = chosen.plan
    _verify_chosen(plan, calls_by_optimize[bool(plan.optimize)], engine)
    report = PlannerReport(
        subject=subject,
        candidates=tuple(candidates),
        chosen=plan,
        predicted_makespan_ns=chosen.predicted_makespan_ns,
        baseline_makespan_ns=_baseline_makespan(candidates),
        priors=priors.snapshot(),
        planning_wall_s=time.perf_counter() - started,
    )
    planned = PlannedExecution(plan=plan, report=report)
    if memo_key is not None:
        _PLAN_MEMO.put(memo_key, planned)
    return planned

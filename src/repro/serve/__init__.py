"""The multi-worker serving tier.

Layered above :class:`~repro.api.service.PlutoService`:

* :mod:`repro.serve.stats` — streaming mergeable latency histograms
  (p50/p95/p99 for queue wait, execution, end-to-end);
* :mod:`repro.serve.store` — the persistent shared warm-artifact store
  (compile products keyed on program structure, versioned invalidation,
  instant worker warm start);
* :mod:`repro.serve.pool` — the dispatcher + N worker processes with
  structure-key-affinity routing, admission control, and graceful drain;
* :mod:`repro.serve.client` — synchronous bulk fan-out helpers.
"""

from repro.serve.client import fan_out, map_parallel
from repro.serve.pool import PlutoWorkerPool, PoolStats, WorkerResult
from repro.serve.stats import LatencyBreakdown, LatencyHistogram
from repro.serve.store import (
    ARTIFACT_SCHEMA_VERSION,
    SharedArtifactStore,
    WarmArtifacts,
    WarmStartReport,
    collect_artifacts,
    install_artifacts,
    reset_shared_store_stats,
    shared_store_stats,
)

__all__ = [
    "LatencyHistogram",
    "LatencyBreakdown",
    "SharedArtifactStore",
    "WarmArtifacts",
    "WarmStartReport",
    "ARTIFACT_SCHEMA_VERSION",
    "collect_artifacts",
    "install_artifacts",
    "shared_store_stats",
    "reset_shared_store_stats",
    "PlutoWorkerPool",
    "PoolStats",
    "WorkerResult",
    "map_parallel",
    "fan_out",
]

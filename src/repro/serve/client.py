"""Bulk client helpers for the serving tiers.

Benchmarks and examples kept hand-rolling the same submit/gather loop
around :class:`~repro.serve.pool.PlutoWorkerPool` futures; this module
is the one copy.  :func:`map_parallel` is the synchronous fan-out: ship
every input set, wait for every result, preserve submission order, and
surface the first failure — the ``ThreadPoolExecutor.map`` idiom shaped
for the pool's affinity routing (all requests of one program land on one
worker, in chunks).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

    from repro.api.session import PlutoSession
    from repro.serve.pool import PlutoWorkerPool, WorkerResult

__all__ = ["map_parallel", "fan_out"]


def map_parallel(
    pool: "PlutoWorkerPool",
    session: "PlutoSession",
    inputs_list: "Sequence[Mapping[str, np.ndarray]]",
    *,
    return_outputs: bool = True,
) -> "list[WorkerResult]":
    """Serve every input set of one program and return results in order.

    Blocking: applies the pool's per-worker backpressure on submission
    and waits for every result.  The first failed request re-raises its
    error (after every submission has settled, so no work is abandoned
    mid-flight).
    """
    futures = pool.submit_many(
        session, list(inputs_list), return_outputs=return_outputs
    )
    results = []
    error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as failure:  # re-raise after the gather
            if error is None:
                error = failure
    if error is not None:
        raise error
    return results


def fan_out(
    pool: "PlutoWorkerPool",
    jobs: "Iterable[tuple[PlutoSession, Mapping[str, np.ndarray]]]",
    *,
    return_outputs: bool = True,
) -> "list[WorkerResult]":
    """Serve mixed-program (session, inputs) jobs and gather in order.

    The mixed-structure analogue of :func:`map_parallel`: each job routes
    to its program's affine worker, so a stream of interleaved program
    families spreads across the pool while every family stays on its
    warm worker.
    """
    futures = [
        pool.submit(session, inputs, return_outputs=return_outputs)
        for session, inputs in jobs
    ]
    results = []
    error: BaseException | None = None
    for future in futures:
        try:
            results.append(future.result())
        except BaseException as failure:
            if error is None:
                error = failure
    if error is not None:
        raise error
    return results

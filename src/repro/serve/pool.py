"""The multi-worker serving tier: a dispatcher over N worker processes.

:class:`PlutoWorkerPool` scales the single-process
:class:`~repro.api.service.PlutoService` across CPU cores: each worker
process runs one warm service loop (coalescing, fused batches, every
process-wide memo layer), and the dispatcher routes requests to workers
with **structure-key affinity** — every request of one program structure
lands on the same worker, so that worker's caches stay hot and
same-structure requests still coalesce into fused batches.  Requests and
results cross the process boundary in chunks to amortize pickling.

Admission control sits dispatcher-side: each worker has a bounded
in-flight depth, :meth:`PlutoWorkerPool.submit` blocks (backpressure)
while its worker is full, and ``shed=True`` raises
:class:`~repro.errors.ServiceOverloadError` immediately instead —
the pool-wide analogue of ``submit`` vs ``submit_nowait`` on the
single-process service.  :meth:`PlutoWorkerPool.close` drains
gracefully: a stop sentinel rides each worker's FIFO inbox behind every
accepted chunk, so queued requests complete, workers report their final
statistics, and anything left unresolved fails with
:class:`~repro.errors.ServiceClosedError` — no orphaned processes.

Workers warm-start from a :class:`~repro.serve.store.SharedArtifactStore`
when one is configured, and export the warm artifacts of every program
they serve back to it, so a freshly spawned worker's first request runs
the fully warm path.
"""

from __future__ import annotations

import multiprocessing
import pickle
import threading
import time
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import (
    ConfigurationError,
    ServiceClosedError,
    ServiceError,
    ServiceOverloadError,
    WorkerCrashedError,
)
from repro.obs.trace import new_trace, tracing_enabled
from repro.serve.stats import LatencyBreakdown

if TYPE_CHECKING:  # pragma: no cover - typing only
    import concurrent.futures

    import numpy as np

    from repro.api.session import PlutoSession
    from repro.core.engine import PlutoConfig
    from repro.obs.trace import RequestTrace
    from repro.plan.execution_plan import ExecutionPlan

__all__ = ["PlutoWorkerPool", "WorkerResult", "PoolStats"]


@dataclass
class WorkerResult:
    """One request served by a pool worker (the picklable result shape).

    ``outputs`` is ``None`` when the request was submitted with
    ``return_outputs=False`` — the benchmark mode where shipping arrays
    back through the pipe would dominate; ``digests`` (CRC32 of each
    output array's bytes) always crosses, so bit-identity stays checkable
    either way.
    """

    outputs: "dict[str, np.ndarray] | None"
    digests: dict[str, int]
    latency_ns: float
    energy_nj: float
    queue_wait_s: float
    execute_s: float
    batch_size: int
    backend: str
    #: Worker-side span tree (when tracing was enabled at pool creation);
    #: the dispatcher grafts it into a pool-level trace on resolution.
    request_trace: "RequestTrace | None" = None


@dataclass
class PoolStats:
    """Dispatcher-side aggregates over the pool's lifetime."""

    workers: int
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    per_worker_served: list[int] = field(default_factory=list)
    #: Modelled DRAM busy-time per worker (summed request latency_ns) —
    #: the device-level load-balance view of the affinity router.
    per_worker_busy_ns: list[float] = field(default_factory=list)
    latency: LatencyBreakdown = field(default_factory=LatencyBreakdown)

    def summary(self) -> dict:
        """Counters plus streaming p50/p95/p99 of the three latencies."""
        return {
            "workers": self.workers,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "per_worker_served": list(self.per_worker_served),
            "per_worker_busy_ns": list(self.per_worker_busy_ns),
            "latency": self.latency.summary(),
        }


def _portable_error(error: BaseException) -> BaseException:
    """``error`` if it survives pickling, else a plain-text stand-in."""
    try:
        pickle.loads(pickle.dumps(error))
        return error
    except Exception:
        return ServiceError(f"{type(error).__name__}: {error}")


def _digest(array: "np.ndarray") -> int:
    return zlib.crc32(array.tobytes())


# ---------------------------------------------------------------------- #
# The worker process
# ---------------------------------------------------------------------- #
def _zero_inputs(calls) -> dict:
    """Fabricated all-zero external inputs for a recorded program.

    A vector is external when some call reads it before any call wrote
    it; zero is valid for every bit width and LUT, so the result always
    executes.  Used to prime a warm-started worker's service instance.
    """
    import numpy as np

    produced: set[str] = set()
    zeros: dict = {}
    for call in calls:
        for vector in call.inputs:
            if vector.name not in produced and vector.name not in zeros:
                zeros[vector.name] = np.zeros(vector.size, dtype=np.uint64)
        produced.add(call.output.name)
    return zeros


def _worker_main(
    worker_id: int,
    config: "PlutoConfig | None",
    plan: "ExecutionPlan | str | None",
    max_queue: int,
    max_batch: int,
    verify: bool,
    tracing: bool,
    store_path: str | None,
    inbox: "multiprocessing.Queue",
    results: "multiprocessing.Queue",
) -> None:
    """One worker: a persistent :class:`PlutoService` loop fed by a queue.

    The asyncio loop persists across chunks, so the service's worker
    task, warm controllers, and coalescing state survive between them;
    each ``run`` chunk resumes the loop, gathers its submissions (same-
    structure requests coalesce into fused batches inside the service),
    and ships the per-request results (or portable errors) back.
    """
    import asyncio

    from repro.api.service import PlutoService
    from repro.api.session import PlutoSession, cache_stats
    from repro.core.engine import PlutoEngine
    from repro.obs.trace import enable_tracing

    # Inherit the dispatcher's tracing state: spawn-started workers do not
    # share the parent's module globals, so the flag rides the arg list.
    enable_tracing(tracing)
    engine = PlutoEngine(config) if config is not None else None
    warm_report = None
    store = None
    if store_path is not None:
        from repro.serve.store import SharedArtifactStore

        store = SharedArtifactStore(store_path)
        report = store.warm_start(engine)
        warm_report = {
            "entries": report.entries,
            "installed": report.installed,
            "stale": report.stale,
            "load_time_s": report.load_time_s,
        }
    results.put(("ready", worker_id, warm_report))

    loop = asyncio.new_event_loop()
    service: "PlutoService | None" = None
    sessions: dict[int, PlutoSession] = {}
    exported: set[int] = set()

    async def _start(fresh: "PlutoService") -> None:
        fresh.start()

    async def _serve(
        session: PlutoSession, chunk: list, return_outputs: bool
    ) -> list:
        assert service is not None
        served = await asyncio.gather(
            *(service.submit(inputs, session=session) for inputs in chunk),
            return_exceptions=True,
        )
        entries: list = []
        for item in served:
            if isinstance(item, BaseException):
                entries.append(_portable_error(item))
                continue
            entries.append(
                WorkerResult(
                    outputs=dict(item.outputs) if return_outputs else None,
                    digests={
                        name: _digest(array)
                        for name, array in item.outputs.items()
                    },
                    latency_ns=item.latency_ns,
                    energy_nj=item.energy_nj,
                    queue_wait_s=item.queue_wait_s,
                    execute_s=item.execute_s,
                    batch_size=item.batch_size,
                    backend=item.backend,
                    request_trace=item.request_trace,
                )
            )
        return entries

    def _export(program_id: int) -> None:
        """Persist the warm artifacts of a just-served program (cheap:
        every pipeline stage is a cache hit by now)."""
        if store is None or program_id in exported:
            return
        exported.add(program_id)
        session = sessions[program_id]
        try:
            from repro.backend.base import resolve_backend

            store.export(
                session.calls,
                engine,
                plan=plan,
                supports_batched=resolve_backend(
                    session.backend
                ).supports_batched,
            )
        except Exception:
            pass  # the store is an accelerator, never a failure source

    try:
        while True:
            message = inbox.get()
            kind = message[0]
            if kind == "stop":
                break
            if kind == "program":
                _, program_id, calls, backend = message
                session = PlutoSession(calls=list(calls), backend=backend)
                sessions[program_id] = session
                if service is None:
                    service = PlutoService(
                        session,
                        engine=engine,
                        max_queue=max_queue,
                        max_batch=max_batch,
                        plan=plan,
                        verify=verify,
                    )
                    loop.run_until_complete(_start(service))
                if warm_report is not None and warm_report["installed"]:
                    # Prime the service instance so the first real request
                    # of a warm-started worker runs the fully hot path —
                    # every pipeline stage is already installed, so this
                    # dry request costs memo hits plus one closure call.
                    try:
                        loop.run_until_complete(
                            service.submit(
                                _zero_inputs(session.calls), session=session
                            )
                        )
                    except Exception:
                        pass  # priming is best-effort
                continue
            if kind == "run":
                _, chunk_id, program_id, chunk, return_outputs = message
                session = sessions.get(program_id)
                if session is None or service is None:
                    error = _portable_error(
                        ServiceError(
                            f"worker {worker_id} has no program "
                            f"{program_id} registered"
                        )
                    )
                    results.put(
                        ("done", chunk_id, worker_id, [error] * len(chunk))
                    )
                    continue
                entries = loop.run_until_complete(
                    _serve(session, chunk, return_outputs)
                )
                results.put(("done", chunk_id, worker_id, entries))
                _export(program_id)
    finally:
        payload: dict = {"programs": len(sessions)}
        if service is not None:
            loop.run_until_complete(service.close())
            payload["service"] = service.stats.summary()
        try:
            payload["cache_stats"] = cache_stats()
        except Exception:
            pass
        loop.close()
        results.put(("stopped", worker_id, payload))


# ---------------------------------------------------------------------- #
# The dispatcher
# ---------------------------------------------------------------------- #
class PlutoWorkerPool:
    """A dispatcher routing pLUTo requests across N warm worker processes.

    Use as a context manager::

        with PlutoWorkerPool(workers=4, store_path="/tmp/pluto-store") as pool:
            futures = pool.submit_many(session, inputs_list)
            results = [future.result() for future in futures]

    ``engine`` / ``plan`` / ``max_queue`` / ``max_batch`` / ``verify``
    configure every worker's inner :class:`~repro.api.service.PlutoService`
    identically.  ``store_path`` enables the shared warm-artifact store:
    workers warm-start from it and export what they serve back to it.
    ``max_inflight`` bounds each worker's dispatcher-side in-flight
    depth; ``chunk_size`` caps how many requests ride one IPC message.
    ``start_method`` picks the multiprocessing start method (``None`` =
    platform default; ``"spawn"`` gives genuinely cold processes, the
    warm-start proof mode).
    """

    def __init__(
        self,
        *,
        workers: int = 2,
        engine_config: "PlutoConfig | None" = None,
        plan: "ExecutionPlan | str | None" = None,
        max_queue: int = 256,
        max_batch: int = 16,
        verify: bool = True,
        store_path: str | None = None,
        max_inflight: int = 512,
        chunk_size: int = 64,
        start_method: str | None = None,
    ) -> None:
        if workers <= 0:
            raise ConfigurationError("a worker pool needs at least one worker")
        if max_inflight <= 0:
            raise ConfigurationError("max_inflight must be positive")
        if chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        self.workers = workers
        self.max_inflight = max_inflight
        # A chunk larger than the in-flight window could never be
        # admitted — blocking submission would deadlock on itself.
        self.chunk_size = min(chunk_size, max_inflight)
        self.stats = PoolStats(
            workers=workers,
            per_worker_served=[0] * workers,
            per_worker_busy_ns=[0.0] * workers,
        )
        #: Per-worker warm-start reports (``None`` until ready / no store).
        self.warm_reports: list[dict | None] = [None] * workers
        #: Per-worker final payloads (service stats, cache stats) at close.
        self.worker_reports: dict[int, dict] = {}

        context = multiprocessing.get_context(start_method)
        self._results: "multiprocessing.Queue" = context.Queue()
        self._inboxes: "list[multiprocessing.Queue]" = []
        self._processes: list = []
        for worker_id in range(workers):
            inbox = context.Queue()
            process = context.Process(
                target=_worker_main,
                args=(
                    worker_id,
                    engine_config,
                    plan,
                    max_queue,
                    max_batch,
                    verify,
                    tracing_enabled(),
                    store_path,
                    inbox,
                    self._results,
                ),
                daemon=True,
            )
            process.start()
            self._inboxes.append(inbox)
            self._processes.append(process)

        self._admission = threading.Condition()
        self._inflight = [0] * workers
        self._closed = False
        self._dead: set[int] = set()
        self._ready = threading.Event()
        self._ready_seen: set[int] = set()
        self._stopped_seen: set[int] = set()
        self._all_stopped = threading.Event()
        #: structure key -> (program id, worker index)
        self._programs: dict[tuple, tuple[int, int]] = {}
        self._programs_per_worker = [0] * workers
        self._next_program = 0
        self._next_chunk = 0
        #: chunk id -> (worker, futures, submit times)
        self._chunks: dict[int, tuple[int, list, list[float]]] = {}
        self._collector = threading.Thread(
            target=self._collect, name="pluto-pool-collector", daemon=True
        )
        self._collector.start()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "PlutoWorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def wait_ready(self, timeout: float | None = None) -> bool:
        """Block until every worker finished starting (and warm-starting)."""
        return self._ready.wait(timeout)

    def close(self, timeout: float = 30.0) -> None:
        """Drain every worker and stop the pool (idempotent).

        The stop sentinel rides each inbox *behind* every accepted chunk,
        so queued requests complete before their worker exits; workers
        report their final statistics (collected into
        :attr:`worker_reports`).  Anything still unresolved afterwards —
        a worker crashed, or the drain timed out — fails with
        :class:`~repro.errors.ServiceClosedError`.  Worker processes are
        joined, then terminated if the deadline passes: no orphans.
        """
        with self._admission:
            if self._closed:
                return
            self._closed = True
            self._admission.notify_all()
        for worker_id, inbox in enumerate(self._inboxes):
            if worker_id not in self._dead:
                inbox.put(("stop",))
        self._all_stopped.wait(timeout)
        deadline = time.monotonic() + timeout
        for process in self._processes:
            process.join(max(0.0, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(5.0)
        self._collector.join(5.0)
        self._fail_unresolved(
            ServiceClosedError("pool closed before the request ran")
        )

    def _fail_unresolved(self, error: BaseException) -> None:
        with self._admission:
            chunks, self._chunks = self._chunks, {}
            self._inflight = [0] * self.workers
            self._admission.notify_all()
        for _, futures, _ in chunks.values():
            for future in futures:
                if not future.done():
                    self.stats.failed += 1
                    future.set_exception(error)

    # ------------------------------------------------------------------ #
    # Routing
    # ------------------------------------------------------------------ #
    def _route(self, session: "PlutoSession") -> tuple[int, int]:
        """(program id, worker index) for a session's program structure.

        First sighting of a structure registers it on the live worker
        with the fewest programs (sticky thereafter), so distinct
        structures spread across workers while every request of one
        structure keeps hitting the same warm caches.
        """
        from repro.api.session import hashable_structure_key

        key = hashable_structure_key(session.calls)
        if key is None:
            raise ConfigurationError(
                "the worker pool routes on the program structure key, which "
                "this program does not have (list-valued call parameters); "
                "serve it through an in-process PlutoService instead"
            )
        if not isinstance(session.backend, str):
            raise ConfigurationError(
                "worker-pool sessions must select their backend by name; "
                "backend instances cannot cross process boundaries"
            )
        registered = self._programs.get(key)
        if registered is not None:
            program_id, worker_id = registered
            if worker_id in self._dead:
                raise WorkerCrashedError(
                    f"worker {worker_id} serving this program structure died"
                )
            return registered
        candidates = [
            worker_id
            for worker_id in range(self.workers)
            if worker_id not in self._dead
        ]
        if not candidates:
            raise WorkerCrashedError("every worker of the pool has died")
        worker_id = min(candidates, key=lambda w: self._programs_per_worker[w])
        program_id = self._next_program
        self._next_program += 1
        self._programs[key] = (program_id, worker_id)
        self._programs_per_worker[worker_id] += 1
        self._inboxes[worker_id].put(
            ("program", program_id, list(session.calls), session.backend)
        )
        return program_id, worker_id

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(
        self,
        session: "PlutoSession",
        inputs: "Mapping[str, np.ndarray]",
        *,
        shed: bool = False,
        return_outputs: bool = True,
    ) -> "concurrent.futures.Future[WorkerResult]":
        """Route one request to its affine worker; returns a future.

        Blocks while the worker's in-flight window is full
        (backpressure); with ``shed=True`` raises
        :class:`~repro.errors.ServiceOverloadError` immediately instead.
        """
        return self.submit_many(
            session, [inputs], shed=shed, return_outputs=return_outputs
        )[0]

    def submit_many(
        self,
        session: "PlutoSession",
        inputs_list: "Sequence[Mapping[str, np.ndarray]]",
        *,
        shed: bool = False,
        return_outputs: bool = True,
    ) -> "list[concurrent.futures.Future[WorkerResult]]":
        """Route a bulk of same-program requests; one future per request.

        Requests ride the IPC channel in chunks of ``chunk_size``; every
        chunk lands on the program's affine worker, where consecutive
        same-structure submissions coalesce into fused batches.
        """
        import concurrent.futures

        if not inputs_list:
            return []
        with self._admission:
            if self._closed:
                raise ServiceClosedError("the worker pool is closed")
            program_id, worker_id = self._route(session)
        futures: "list[concurrent.futures.Future[WorkerResult]]" = []
        for start in range(0, len(inputs_list), self.chunk_size):
            chunk = [
                dict(inputs) for inputs in inputs_list[start : start + self.chunk_size]
            ]
            chunk_futures = [
                concurrent.futures.Future() for _ in range(len(chunk))
            ]
            self._admit(worker_id, len(chunk), shed=shed)
            with self._admission:
                chunk_id = self._next_chunk
                self._next_chunk += 1
                self._chunks[chunk_id] = (
                    worker_id,
                    chunk_futures,
                    [time.monotonic()] * len(chunk),
                )
            self._inboxes[worker_id].put(
                ("run", chunk_id, program_id, chunk, return_outputs)
            )
            self.stats.submitted += len(chunk)
            futures.extend(chunk_futures)
        return futures

    def _admit(self, worker_id: int, count: int, *, shed: bool) -> None:
        """Take ``count`` in-flight slots on a worker, or block/shed."""
        with self._admission:
            while True:
                if self._closed:
                    raise ServiceClosedError("the worker pool is closed")
                if worker_id in self._dead:
                    raise WorkerCrashedError(
                        f"worker {worker_id} died; its requests cannot be "
                        "admitted"
                    )
                if self._inflight[worker_id] + count <= self.max_inflight:
                    self._inflight[worker_id] += count
                    return
                if shed:
                    self.stats.shed += 1
                    raise ServiceOverloadError(
                        f"worker {worker_id} is at its in-flight limit "
                        f"({self.max_inflight} requests)"
                    )
                self._admission.wait(0.05)

    # ------------------------------------------------------------------ #
    # The collector thread
    # ------------------------------------------------------------------ #
    def _collect(self) -> None:
        import queue as queue_module

        while True:
            try:
                message = self._results.get(timeout=0.1)
            except queue_module.Empty:
                self._check_workers()
                if self._all_stopped.is_set() and not self._chunks:
                    return
                continue
            kind = message[0]
            if kind == "ready":
                _, worker_id, warm_report = message
                self.warm_reports[worker_id] = warm_report
                self._ready_seen.add(worker_id)
                if len(self._ready_seen) == self.workers:
                    self._ready.set()
            elif kind == "done":
                self._resolve_chunk(message[1], message[3])
            elif kind == "stopped":
                _, worker_id, payload = message
                self.worker_reports[worker_id] = payload
                self._stopped_seen.add(worker_id)
                if len(self._stopped_seen | self._dead) >= self.workers:
                    self._all_stopped.set()
                    if not self._chunks:
                        return

    def _resolve_chunk(self, chunk_id: int, entries: list) -> None:
        with self._admission:
            registered = self._chunks.pop(chunk_id, None)
            if registered is None:
                return
            worker_id, futures, submitted_at = registered
            self._inflight[worker_id] = max(
                0, self._inflight[worker_id] - len(futures)
            )
            self._admission.notify_all()
        now = time.monotonic()
        for future, entry, started in zip(futures, entries, submitted_at):
            if isinstance(entry, BaseException):
                self.stats.failed += 1
                if not future.done():
                    future.set_exception(entry)
                continue
            self.stats.completed += 1
            self.stats.per_worker_served[worker_id] += 1
            self.stats.per_worker_busy_ns[worker_id] += entry.latency_ns
            end_to_end_s = now - started
            self.stats.latency.observe(
                queue_wait_s=entry.queue_wait_s,
                execute_s=entry.execute_s,
                end_to_end_s=end_to_end_s,
            )
            self._account_entry(entry, worker_id, end_to_end_s)
            if not future.done():
                future.set_result(entry)

    def _account_entry(
        self, entry: WorkerResult, worker_id: int, end_to_end_s: float
    ) -> None:
        """Graft the worker-side trace into a pool-level trace and record
        the request in the process-wide metrics registry.

        The pool trace gets two top-level spans that sum to the observed
        end-to-end latency: ``pool_rpc`` (dispatcher-side time the worker
        could not see — routing, IPC, queueing in the collector) and a
        ``worker`` wrapper holding the grafted worker-side span tree.
        """
        from repro.obs.metrics import record_served_request

        worker_trace = entry.request_trace
        pool_trace = new_trace("pool")
        if pool_trace is not None and worker_trace is not None:
            end_ns = time.perf_counter_ns()
            total_ns = max(int(end_to_end_s * 1e9), worker_trace.total_ns)
            pool_trace.add_span(
                "pool_rpc",
                total_ns - worker_trace.total_ns,
                start_ns=end_ns - total_ns,
                worker=worker_id,
            )
            pool_trace.graft(
                worker_trace,
                under="worker",
                start_ns=end_ns - worker_trace.total_ns,
                worker=worker_id,
            )
            pool_trace.annotate(**worker_trace.attributes)
            pool_trace.annotate(worker=worker_id)
            entry.request_trace = pool_trace
        commands = None
        if worker_trace is not None:
            by_type = worker_trace.attributes.get("dram_commands_by_type")
            if isinstance(by_type, Mapping):
                commands = by_type
        record_served_request(
            path="pool",
            end_to_end_s=end_to_end_s,
            queue_wait_s=entry.queue_wait_s,
            execute_s=entry.execute_s,
            energy_nj=entry.energy_nj,
            commands=commands,
        )

    def _check_workers(self) -> None:
        """Fail the in-flight work of any worker that died unexpectedly."""
        crashed: list[int] = []
        for worker_id, process in enumerate(self._processes):
            if worker_id in self._dead or process.is_alive():
                continue
            if worker_id in self._stopped_seen:
                continue  # clean exit, already reported
            crashed.append(worker_id)
        if not crashed:
            return
        for worker_id in crashed:
            self._dead.add(worker_id)
            error = WorkerCrashedError(
                f"worker {worker_id} exited with code "
                f"{self._processes[worker_id].exitcode}"
            )
            with self._admission:
                doomed = [
                    (chunk_id, futures)
                    for chunk_id, (owner, futures, _) in self._chunks.items()
                    if owner == worker_id
                ]
                for chunk_id, _ in doomed:
                    del self._chunks[chunk_id]
                self._inflight[worker_id] = 0
                self._admission.notify_all()
            for _, futures in doomed:
                for future in futures:
                    if not future.done():
                        self.stats.failed += 1
                        future.set_exception(error)
        if len(self._stopped_seen | self._dead) >= self.workers:
            self._all_stopped.set()

"""Streaming latency percentiles for the serving tier.

Per-request wall-clock means hide tail behaviour, and a pool of worker
processes cannot ship every sample back to the dispatcher.  This module
provides the standard production answer: a **log-bucketed histogram**
(:class:`LatencyHistogram`) with O(1) recording, bounded memory, ~7%
value resolution, and — the property the multi-worker tier depends on —
loss-free **merging**, so each worker accumulates locally and the
dispatcher folds the worker histograms into pool-wide p50/p95/p99.

:class:`LatencyBreakdown` groups the three distributions every serving
layer reports: queue wait, execution, and end-to-end turnaround.
Both types are plain data (dicts of ints) and therefore picklable, so
they cross process boundaries with the rest of the worker protocol.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.service import ServedResult

__all__ = ["LatencyHistogram", "LatencyBreakdown"]


#: Smallest resolvable latency (seconds); everything below lands in
#: bucket 0.  100 ns is far under one Python bytecode dispatch, so no
#: real request is flattened.
_FLOOR_S = 1e-7

#: Geometric bucket growth: each bucket spans 7% more than the last,
#: bounding quantile error at ~±3.5% — plenty for p50/p95/p99 gates —
#: while 0.1 µs..100 s fits in ~306 buckets.
_GROWTH = 1.07

_LOG_GROWTH = math.log(_GROWTH)


def _bucket_of(seconds: float) -> int:
    if seconds <= _FLOOR_S:
        return 0
    return 1 + int(math.log(seconds / _FLOOR_S) / _LOG_GROWTH)


def _bucket_value(bucket: int) -> float:
    """Representative latency of a bucket (geometric midpoint)."""
    if bucket <= 0:
        return _FLOOR_S
    return _FLOOR_S * _GROWTH ** (bucket - 0.5)


@dataclass
class LatencyHistogram:
    """A mergeable log-bucketed latency distribution (seconds)."""

    #: Bucket index -> sample count.  Sparse: an idle service costs
    #: nothing, a loaded one a few hundred entries at most.
    buckets: dict[int, int] = field(default_factory=dict)
    count: int = 0
    total_s: float = 0.0
    max_s: float = 0.0

    def record(self, seconds: float) -> None:
        """Fold one latency sample into the distribution."""
        if seconds < 0:
            # Clock skew between monotonic reads in different layers can
            # produce a tiny negative wait; clamp rather than corrupt.
            seconds = 0.0
        bucket = _bucket_of(seconds)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1
        self.count += 1
        self.total_s += seconds
        if seconds > self.max_s:
            self.max_s = seconds

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram in (loss-free; used by the dispatcher)."""
        for bucket, samples in other.buckets.items():
            self.buckets[bucket] = self.buckets.get(bucket, 0) + samples
        self.count += other.count
        self.total_s += other.total_s
        if other.max_s > self.max_s:
            self.max_s = other.max_s

    @property
    def mean_s(self) -> float:
        """Arithmetic mean of every recorded sample."""
        return self.total_s / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The ``q``-quantile latency in seconds (0 when empty).

        Exact to within one bucket (~±3.5%); the true maximum caps the
        answer so a single slow sample cannot be over-reported.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigurationError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        if q >= 1.0:
            return self.max_s
        rank = max(1, math.ceil(q * self.count))
        seen = 0
        for bucket in sorted(self.buckets):
            seen += self.buckets[bucket]
            if seen >= rank:
                return min(_bucket_value(bucket), self.max_s)
        return self.max_s  # pragma: no cover - rank <= count always hits

    def summary(self) -> dict[str, float]:
        """Count, mean, p50/p95/p99, and max — the reporting shape."""
        return {
            "count": float(self.count),
            "mean_s": self.mean_s,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "p99_s": self.quantile(0.99),
            "max_s": self.max_s,
        }


@dataclass
class LatencyBreakdown:
    """The three serving distributions: queue wait, execute, end-to-end."""

    queue_wait: LatencyHistogram = field(default_factory=LatencyHistogram)
    execute: LatencyHistogram = field(default_factory=LatencyHistogram)
    end_to_end: LatencyHistogram = field(default_factory=LatencyHistogram)

    def observe(
        self,
        *,
        queue_wait_s: float,
        execute_s: float,
        end_to_end_s: float | None = None,
    ) -> None:
        """Record one served request's wall-clock components."""
        self.queue_wait.record(queue_wait_s)
        self.execute.record(execute_s)
        self.end_to_end.record(
            end_to_end_s
            if end_to_end_s is not None
            else queue_wait_s + execute_s
        )

    def observe_result(self, served: "ServedResult") -> None:
        """Record a :class:`~repro.api.service.ServedResult`'s accounting."""
        self.observe(
            queue_wait_s=served.queue_wait_s,
            execute_s=served.execute_s,
            end_to_end_s=served.turnaround_s,
        )

    def merge(self, other: "LatencyBreakdown") -> None:
        """Fold another breakdown in (dispatcher-side aggregation)."""
        self.queue_wait.merge(other.queue_wait)
        self.execute.merge(other.execute)
        self.end_to_end.merge(other.end_to_end)

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-distribution :meth:`LatencyHistogram.summary` snapshots."""
        return {
            "queue_wait": self.queue_wait.summary(),
            "execute": self.execute.summary(),
            "end_to_end": self.end_to_end.summary(),
        }

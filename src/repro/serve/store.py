"""A persistent shared store for warm serving artifacts.

Every memo layer that makes warm serving cheap — optimized call lists,
compiled programs, trace templates, verification verdicts, planner
decisions — is process-private and dies with the process, so a freshly
spawned worker repays the full optimize/verify/compile/plan cost on its
first request of every program shape.  :class:`SharedArtifactStore`
closes that gap: it serializes the **compile products** of a program
structure to disk, keyed on the same program-structure key the in-memory
memos use, and :meth:`SharedArtifactStore.warm_start` installs them back
into the process-wide caches — so a cold worker's first request runs the
exact warm path (every memo hits, the whole-program closure is already
generated) instead of the cold one.

What is stored is deliberately the *cacheable products*, not the
generated closures: a :class:`~repro.backend.compiled.CompiledExecutable`
holds generated code and captured arrays and does not pickle, but it
regenerates from the stored :class:`~repro.compiler.lowering.CompiledProgram`
in well under a millisecond — :func:`install_artifacts` does exactly
that at load time, so the regeneration happens at warm-start, never on
the first request.

Entries are versioned (:data:`ARTIFACT_SCHEMA_VERSION`) and carry the
engine configuration they were produced under; a schema or configuration
mismatch invalidates the entry (counted as ``stale``, file removed on
schema mismatch) instead of poisoning a worker with artifacts from a
different code or hardware generation.  Store effectiveness is surfaced
as the ``shared_store`` layer of
:func:`repro.api.session.cache_stats`.
"""

from __future__ import annotations

import hashlib
import pickle
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.handles import ApiCall
    from repro.analyze.diagnostics import VerificationReport
    from repro.compiler.lowering import CompiledProgram
    from repro.controller.executor import TraceTemplate
    from repro.core.engine import PlutoConfig, PlutoEngine
    from repro.opt.pipeline import OptimizedProgram
    from repro.plan.execution_plan import ExecutionPlan
    from repro.plan.planner import PlannedExecution

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "WarmArtifacts",
    "ShardArtifacts",
    "WarmStartReport",
    "SharedArtifactStore",
    "collect_artifacts",
    "install_artifacts",
    "shared_store_stats",
    "reset_shared_store_stats",
]


#: Bump when the artifact layout (or the meaning of any stored product)
#: changes; entries written under another schema are discarded as stale.
ARTIFACT_SCHEMA_VERSION = 1


#: Process-wide counters surfaced as ``cache_stats()["shared_store"]``.
_STATS = {
    "hits": 0,
    "misses": 0,
    "stale": 0,
    "saved": 0,
    "installed": 0,
    "load_time_s": 0.0,
}


def shared_store_stats() -> dict[str, float]:
    """Hit/miss/stale/saved counters and cumulative load wall-clock."""
    return dict(_STATS)


def reset_shared_store_stats() -> None:
    """Reset the process-wide shared-store counters."""
    for key in _STATS:
        _STATS[key] = 0.0 if key == "load_time_s" else 0


@dataclass(frozen=True)
class ShardArtifacts:
    """Compile products of one shard slice of a sharded chosen plan.

    Sharded execution compiles the *rewritten slice program* (one per
    distinct slice length), so warm-starting a sharded plan needs these
    alongside the whole-program products.
    """

    executed_key: tuple
    compiled: "CompiledProgram"
    template: "TraceTemplate"


@dataclass(frozen=True)
class WarmArtifacts:
    """Every warm-path product of one program structure on one engine.

    ``structure_key`` is the *raw* (pre-optimization) program structure
    key — the identity requests arrive with; ``executed_key`` is the
    post-optimization key all downstream memos (compile, template,
    verifier, compiled closures) use.  They coincide for unoptimized
    plans.
    """

    schema: int
    config: "PlutoConfig"
    structure_key: tuple
    #: The request-level plan these artifacts serve (the auto request
    #: when planned, else the explicit plan).
    request_plan: "ExecutionPlan"
    #: Planner search constraints (part of the plan-memo identity).
    plan_modes: tuple[str, ...]
    supports_batched: bool
    #: The memoized planner decision (``None`` for explicit plans).
    planned: "PlannedExecution | None"
    #: The memoized optimization (``None`` for unoptimized plans).
    optimized: "OptimizedProgram | None"
    executed_key: tuple
    verification: "VerificationReport | None"
    compiled: "CompiledProgram"
    template: "TraceTemplate"
    #: Per-slice products when the chosen plan shards the element space
    #: (one entry per distinct slice length; empty for unsharded plans).
    shards: tuple[ShardArtifacts, ...] = ()

    @property
    def identity(self) -> tuple:
        """What one store entry is keyed on."""
        return (
            self.schema,
            self.config,
            self.structure_key,
            self.plan_modes,
            self.supports_batched,
            self.request_plan,
        )


@dataclass(frozen=True)
class WarmStartReport:
    """What one warm start loaded and what it cost."""

    entries: int
    installed: int
    stale: int
    load_time_s: float


def _resolve_engine(engine: "PlutoEngine | None") -> "PlutoEngine":
    """The given engine, or the default pLUTo-BSA/DDR4 configuration."""
    if engine is not None:
        return engine
    from repro.core.engine import PlutoConfig, PlutoEngine

    return PlutoEngine(PlutoConfig())


def _unpin_closures(
    artifacts: WarmArtifacts,
) -> list[tuple["CompiledProgram", object]]:
    """Detach the JIT executables the controller pins on compiled programs.

    Once a program has been executed, its memoized
    :class:`~repro.compiler.lowering.CompiledProgram` carries the
    generated ``_jit_executable`` closure in its ``__dict__`` — generated
    code that cannot pickle (and would be wrong to persist anyway; it
    regenerates from the program at install).  Returns the detached
    pairs so the caller can re-pin them after serialization.
    """
    pinned: list[tuple["CompiledProgram", object]] = []
    for compiled in (
        artifacts.compiled,
        *(shard.compiled for shard in artifacts.shards),
    ):
        if compiled is None:
            continue
        executable = compiled.__dict__.pop("_jit_executable", None)
        if executable is not None:
            pinned.append((compiled, executable))
    return pinned


def collect_artifacts(
    calls: Sequence["ApiCall"],
    engine: "PlutoEngine | None" = None,
    *,
    plan: "ExecutionPlan | str | None" = None,
    modes: tuple[str, ...] = ("single", "banks", "hierarchy"),
    supports_batched: bool = True,
) -> WarmArtifacts:
    """Run the warm-path pipeline for ``calls`` and bundle its products.

    Every step goes through the normal memoized front doors
    (``plan_program`` / ``optimize_cached`` / ``verify_cached`` /
    ``compile_cached`` / ``trace_template``), so collecting from a
    process that already served the shape is pure cache hits — a worker
    can export what it just served at negligible cost.
    """
    from repro.analyze.verifier import verify_cached
    from repro.api.session import compile_cached_with_key, hashable_structure_key
    from repro.controller.executor import PlutoController
    from repro.opt.pipeline import optimize_cached
    from repro.plan.execution_plan import resolve_plan
    from repro.plan.planner import plan_program

    engine = _resolve_engine(engine)
    structure_key = hashable_structure_key(calls)
    if structure_key is None:
        raise ConfigurationError(
            "cannot store warm artifacts for a program whose structure key "
            "is unhashable (list-valued call parameters)"
        )
    request = resolve_plan(plan if plan is not None else engine.config.plan)
    planned = None
    if request.is_auto:
        planned = plan_program(
            list(calls),
            engine,
            request=request,
            modes=modes,
            supports_batched=supports_batched,
            subject="warm-start",
        )
        concrete = planned.plan
    else:
        concrete = request
    optimize = concrete.optimize
    if optimize is None:
        optimize = engine.config.optimize
    optimized = None
    executed_calls = list(calls)
    if optimize:
        optimized = optimize_cached(list(calls))
        executed_calls = list(optimized.calls)
    executed_key = hashable_structure_key(executed_calls)
    compiled, executed_key = compile_cached_with_key(
        executed_calls, executed_key
    )
    verification = (
        verify_cached(executed_calls, key=executed_key, subject="warm-start")
        if executed_key is not None
        else None
    )
    controller = PlutoController(engine, backend="vectorized", jit=False)
    template = controller.trace_template(compiled, structure_key=executed_key)
    assert executed_key is not None  # hashable raw key => hashable rewrite

    shard_products: list[ShardArtifacts] = []
    if concrete.hierarchical or concrete.effective_shards > 1:
        from repro.controller.dispatch import ShardPlanner

        geometry = engine.geometry
        count = concrete.shards
        if count is None:
            # Hierarchical plans default to one shard per device bank.
            count = geometry.channels * geometry.ranks * geometry.banks
        seen_lengths: set[int] = set()
        for start, stop, shard_calls in ShardPlanner.plan_slices(
            executed_calls, count
        ):
            length = stop - start
            if length in seen_lengths:
                continue
            seen_lengths.add(length)
            shard_key = hashable_structure_key(list(shard_calls))
            shard_compiled, shard_key = compile_cached_with_key(
                list(shard_calls), shard_key
            )
            assert shard_key is not None
            shard_products.append(
                ShardArtifacts(
                    executed_key=shard_key,
                    compiled=shard_compiled,
                    template=controller.trace_template(
                        shard_compiled, structure_key=shard_key
                    ),
                )
            )
    return WarmArtifacts(
        schema=ARTIFACT_SCHEMA_VERSION,
        config=engine.config,
        structure_key=structure_key,
        request_plan=request,
        plan_modes=tuple(modes),
        supports_batched=supports_batched,
        planned=planned,
        optimized=optimized,
        executed_key=executed_key,
        verification=verification,
        compiled=compiled,
        template=template,
        shards=tuple(shard_products),
    )


def install_artifacts(
    artifacts: WarmArtifacts, engine: "PlutoEngine | None" = None
) -> bool:
    """Seed every process-wide memo layer from one stored entry.

    Returns ``False`` (installing nothing) when the entry was produced
    under a different engine configuration or artifact schema — its
    templates and planner decisions would be wrong for this process.
    Also pre-generates the whole-program compiled closure and the LUT
    gather arrays, so the first served request runs the fully warm path.
    """
    engine = _resolve_engine(engine)
    if (
        artifacts.schema != ARTIFACT_SCHEMA_VERSION
        or artifacts.config != engine.config
    ):
        return False
    from repro.analyze.verifier import seed_verifier_cache
    from repro.api.session import seed_program_cache
    from repro.backend.compiled import seed_compiled_exec
    from repro.controller.executor import seed_trace_template
    from repro.core.lut import gather_array
    from repro.opt.pipeline import seed_optimizer_cache
    from repro.plan.planner import plan_memo_key, seed_planner_cache

    seed_program_cache(artifacts.executed_key, artifacts.compiled)
    seed_trace_template(
        artifacts.executed_key, engine.config, artifacts.template
    )
    if artifacts.verification is not None:
        seed_verifier_cache(artifacts.executed_key, artifacts.verification)
        if not artifacts.verification.errors:
            artifacts.compiled.verification_ok = True
    if artifacts.optimized is not None:
        seed_optimizer_cache(artifacts.structure_key, artifacts.optimized)
    if artifacts.planned is not None:
        seed_planner_cache(
            plan_memo_key(
                artifacts.structure_key,
                engine.config,
                artifacts.plan_modes,
                artifacts.supports_batched,
                artifacts.request_plan,
            ),
            artifacts.planned,
        )
    for shard in artifacts.shards:
        seed_program_cache(shard.executed_key, shard.compiled)
        seed_trace_template(shard.executed_key, engine.config, shard.template)
        seed_compiled_exec(shard.compiled, structure_key=shard.executed_key)
    # Regenerate the fast-tier products that cannot be pickled: the
    # whole-program closure (cheap codegen from the stored program) and
    # the read-only LUT gather arrays.
    seed_compiled_exec(
        artifacts.compiled, structure_key=artifacts.executed_key
    )
    for lut in artifacts.compiled.lut_bindings.values():
        gather_array(lut)
    # Exercise the warm path once with fabricated zero inputs.  The memo
    # layers above remove recomputation, but the *first* call through a
    # freshly built controller and generated closure still pays one-time
    # Python costs (function setup, attribute caches) worth a few hundred
    # microseconds — several times a hot request.  Paying them here, at
    # install time, makes the first real request genuinely hot.
    _exercise(artifacts, engine)
    _STATS["installed"] += 1
    return True


def _exercise(artifacts: WarmArtifacts, engine: "PlutoEngine") -> None:
    """Dry-run every installed program once through the execution tier."""
    from repro.controller.executor import PlutoController

    controller = PlutoController(engine, backend="vectorized")
    for compiled, key in (
        (artifacts.compiled, artifacts.executed_key),
        *((shard.compiled, shard.executed_key) for shard in artifacts.shards),
    ):
        import numpy as np

        zeros = {
            vector.name: np.zeros(vector.size, dtype=np.uint64)
            for vector in compiled.external_inputs
        }
        try:
            controller.execute(compiled, zeros, structure_key=key)
        except Exception:
            pass  # warm-up is best-effort; real requests surface errors


class SharedArtifactStore:
    """A directory of pickled :class:`WarmArtifacts`, one file per entry.

    Writes are atomic (temp file + rename), so concurrent workers
    exporting the same shape race benignly — last writer wins with a
    complete file either way.  Reads validate the schema version and the
    full entry identity (not just the digest), so a hash collision or a
    stale-schema file can never install wrong artifacts.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self.path.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------ #
    # Keying
    # ------------------------------------------------------------------ #
    @staticmethod
    def _digest(identity: tuple) -> str:
        blob = pickle.dumps(identity, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.sha256(blob).hexdigest()[:32]

    def _entry_path(self, identity: tuple) -> Path:
        return self.path / f"{self._digest(identity)}.artifact"

    @staticmethod
    def entry_identity(
        structure_key: tuple,
        config: "PlutoConfig",
        request_plan: "ExecutionPlan",
        *,
        modes: tuple[str, ...] = ("single", "banks", "hierarchy"),
        supports_batched: bool = True,
    ) -> tuple:
        """The identity a lookup must present to hit a stored entry."""
        return (
            ARTIFACT_SCHEMA_VERSION,
            config,
            structure_key,
            tuple(modes),
            supports_batched,
            request_plan,
        )

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #
    def save(self, artifacts: WarmArtifacts) -> Path:
        """Write one entry (atomic; overwrites an existing same-key entry)."""
        target = self._entry_path(artifacts.identity)
        scratch = target.with_suffix(".tmp")
        pinned = _unpin_closures(artifacts)
        try:
            scratch.write_bytes(
                pickle.dumps(artifacts, protocol=pickle.HIGHEST_PROTOCOL)
            )
        finally:
            for compiled, executable in pinned:
                compiled.__dict__["_jit_executable"] = executable
        scratch.replace(target)
        _STATS["saved"] += 1
        return target

    def _read(self, path: Path) -> WarmArtifacts | None:
        """One entry from disk, or ``None`` (counted stale) when invalid."""
        try:
            artifacts = pickle.loads(path.read_bytes())
        except Exception:
            _STATS["stale"] += 1
            path.unlink(missing_ok=True)
            return None
        if (
            not isinstance(artifacts, WarmArtifacts)
            or artifacts.schema != ARTIFACT_SCHEMA_VERSION
        ):
            _STATS["stale"] += 1
            path.unlink(missing_ok=True)
            return None
        return artifacts

    def load(self, identity: tuple) -> WarmArtifacts | None:
        """The entry stored under ``identity``, or ``None`` on a miss."""
        path = self._entry_path(identity)
        if not path.exists():
            _STATS["misses"] += 1
            return None
        started = time.perf_counter()
        artifacts = self._read(path)
        _STATS["load_time_s"] += time.perf_counter() - started
        if artifacts is None or artifacts.identity != identity:
            _STATS["misses"] += 1
            return None
        _STATS["hits"] += 1
        return artifacts

    def entries(self) -> list[WarmArtifacts]:
        """Every valid entry currently on disk (stale files are dropped)."""
        found = []
        for path in sorted(self.path.glob("*.artifact")):
            artifacts = self._read(path)
            if artifacts is not None:
                found.append(artifacts)
        return found

    def __len__(self) -> int:
        return len(list(self.path.glob("*.artifact")))

    def clear(self) -> None:
        """Delete every entry (the directory itself stays)."""
        for path in self.path.glob("*.artifact"):
            path.unlink(missing_ok=True)

    # ------------------------------------------------------------------ #
    # The two serving-tier operations
    # ------------------------------------------------------------------ #
    def export(
        self,
        calls: Sequence["ApiCall"],
        engine: "PlutoEngine | None" = None,
        *,
        plan: "ExecutionPlan | str | None" = None,
        modes: tuple[str, ...] = ("single", "banks", "hierarchy"),
        supports_batched: bool = True,
    ) -> WarmArtifacts:
        """Collect and persist the warm artifacts of one program."""
        artifacts = collect_artifacts(
            calls,
            engine,
            plan=plan,
            modes=modes,
            supports_batched=supports_batched,
        )
        self.save(artifacts)
        return artifacts

    def warm_start(self, engine: "PlutoEngine | None" = None) -> WarmStartReport:
        """Install every compatible stored entry into this process.

        The returned report distinguishes *installed* entries from
        *stale* ones (wrong schema or engine configuration); load time
        covers disk reads, unpickling, and closure regeneration.
        """
        engine = _resolve_engine(engine)
        started = time.perf_counter()
        entries = self.entries()
        installed = 0
        for artifacts in entries:
            if install_artifacts(artifacts, engine):
                installed += 1
            else:
                _STATS["stale"] += 1
        load_time_s = time.perf_counter() - started
        _STATS["load_time_s"] += load_time_s
        return WarmStartReport(
            entries=len(entries),
            installed=installed,
            stale=len(entries) - installed,
            load_time_s=load_time_s,
        )

"""Shared utilities: bit manipulation, fixed-point, units, and memoization."""

from repro.utils.bitops import (
    bit_length_for,
    bits_required,
    extract_field,
    insert_field,
    interleave_operands,
    mask_of,
    pack_elements,
    split_interleaved,
    unpack_elements,
)
from repro.utils.fixedpoint import (
    QFormat,
    from_fixed,
    to_fixed,
)
from repro.utils.memo import BoundedMemo
from repro.utils.units import (
    GIGA,
    KILO,
    MEGA,
    MILLI,
    MICRO,
    NANO,
    PICO,
    format_energy,
    format_time,
    geometric_mean,
)

__all__ = [
    "BoundedMemo",
    "bit_length_for",
    "bits_required",
    "extract_field",
    "insert_field",
    "interleave_operands",
    "mask_of",
    "pack_elements",
    "split_interleaved",
    "unpack_elements",
    "QFormat",
    "from_fixed",
    "to_fixed",
    "GIGA",
    "KILO",
    "MEGA",
    "MILLI",
    "MICRO",
    "NANO",
    "PICO",
    "format_energy",
    "format_time",
    "geometric_mean",
]

"""Bit-level helpers used throughout the functional simulator.

pLUTo operates on DRAM rows that hold densely packed fixed-width elements.
The functions here convert between NumPy element vectors and packed row
bytes, build the interleaved operand layouts required by LUT-based binary
operations (e.g. ``a << k | b`` before an addition LUT query), and provide
small integer-field utilities used by the ISA and compiler.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "mask_of",
    "bits_required",
    "bit_length_for",
    "extract_field",
    "insert_field",
    "pack_elements",
    "unpack_elements",
    "interleave_operands",
    "split_interleaved",
]


def mask_of(bits: int) -> int:
    """Return an integer with the ``bits`` least-significant bits set.

    >>> mask_of(4)
    15
    """
    if bits < 0:
        raise ConfigurationError(f"bit width must be non-negative, got {bits}")
    return (1 << bits) - 1


def bits_required(value: int) -> int:
    """Return the number of bits needed to represent ``value`` (>= 1).

    Zero requires one bit by convention (a LUT with a single entry still
    occupies one row index bit).
    """
    if value < 0:
        raise ConfigurationError(f"value must be non-negative, got {value}")
    return max(1, int(value).bit_length())


def bit_length_for(num_entries: int) -> int:
    """Return the index width (in bits) of a LUT with ``num_entries`` entries.

    The paper requires LUT sizes to be powers of two; this helper accepts any
    positive count and returns ``ceil(log2(num_entries))``.
    """
    if num_entries <= 0:
        raise ConfigurationError(
            f"a LUT must have at least one entry, got {num_entries}"
        )
    return max(1, (num_entries - 1).bit_length())


def extract_field(value: int, offset: int, width: int) -> int:
    """Extract ``width`` bits starting at bit ``offset`` from ``value``."""
    if offset < 0 or width < 0:
        raise ConfigurationError("offset and width must be non-negative")
    return (value >> offset) & mask_of(width)


def insert_field(value: int, field: int, offset: int, width: int) -> int:
    """Return ``value`` with ``field`` written into bits [offset, offset+width)."""
    if offset < 0 or width < 0:
        raise ConfigurationError("offset and width must be non-negative")
    cleared = value & ~(mask_of(width) << offset)
    return cleared | ((field & mask_of(width)) << offset)


def pack_elements(elements: np.ndarray, bit_width: int, row_bytes: int) -> np.ndarray:
    """Pack integer ``elements`` of ``bit_width`` bits into a row of bytes.

    Elements are stored bit-parallel and little-endian within the row, i.e.
    element *i* occupies bits ``[i*bit_width, (i+1)*bit_width)`` of the row.
    The result always has exactly ``row_bytes`` bytes; unused bits are zero.

    Raises :class:`ConfigurationError` if the elements do not fit or any
    element exceeds the bit width.
    """
    if bit_width <= 0:
        raise ConfigurationError(f"bit width must be positive, got {bit_width}")
    elements = np.asarray(elements, dtype=np.uint64)
    if elements.size * bit_width > row_bytes * 8:
        raise ConfigurationError(
            f"{elements.size} elements of {bit_width} bits do not fit in a "
            f"{row_bytes}-byte row"
        )
    if elements.size and int(elements.max()) > mask_of(bit_width):
        raise ConfigurationError(
            f"element value {int(elements.max())} exceeds {bit_width}-bit range"
        )

    total_bits = row_bytes * 8
    bit_array = np.zeros(total_bits, dtype=np.uint8)
    if elements.size:
        shifts = np.arange(bit_width, dtype=np.uint64)
        bits = (elements[:, None] >> shifts[None, :]) & np.uint64(1)
        bit_array[: elements.size * bit_width] = bits.reshape(-1).astype(np.uint8)
    return np.packbits(bit_array, bitorder="little")


def unpack_elements(row: np.ndarray, bit_width: int, count: int) -> np.ndarray:
    """Unpack ``count`` integer elements of ``bit_width`` bits from row bytes.

    Inverse of :func:`pack_elements`.
    """
    if bit_width <= 0:
        raise ConfigurationError(f"bit width must be positive, got {bit_width}")
    row = np.asarray(row, dtype=np.uint8)
    if count * bit_width > row.size * 8:
        raise ConfigurationError(
            f"cannot unpack {count} x {bit_width}-bit elements from "
            f"{row.size} bytes"
        )
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    bit_array = np.unpackbits(row, bitorder="little")
    bits = bit_array[: count * bit_width].reshape(count, bit_width).astype(np.uint64)
    shifts = np.arange(bit_width, dtype=np.uint64)
    return (bits << shifts[None, :]).sum(axis=1, dtype=np.uint64)


def interleave_operands(
    left: np.ndarray, right: np.ndarray, left_bits: int, right_bits: int
) -> np.ndarray:
    """Combine two operand vectors into LUT indices ``(left << right_bits) | right``.

    This is the operand layout produced by the pLUTo compiler before a binary
    LUT query (Section 6.3): the left operand is shifted and OR-merged with
    the right operand so a single LUT indexed by the concatenation computes
    the binary function.
    """
    left = np.asarray(left, dtype=np.uint64)
    right = np.asarray(right, dtype=np.uint64)
    if left.shape != right.shape:
        raise ConfigurationError(
            f"operand shapes differ: {left.shape} vs {right.shape}"
        )
    if left.size and int(left.max()) > mask_of(left_bits):
        raise ConfigurationError("left operand exceeds its declared bit width")
    if right.size and int(right.max()) > mask_of(right_bits):
        raise ConfigurationError("right operand exceeds its declared bit width")
    return (left << np.uint64(right_bits)) | right


def split_interleaved(
    indices: np.ndarray, left_bits: int, right_bits: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split interleaved LUT indices back into (left, right) operand vectors."""
    indices = np.asarray(indices, dtype=np.uint64)
    right = indices & np.uint64(mask_of(right_bits))
    left = (indices >> np.uint64(right_bits)) & np.uint64(mask_of(left_bits))
    return left, right

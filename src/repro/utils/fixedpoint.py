"""Q-format fixed-point helpers.

The vector point-wise multiplication workload (Table 4) uses Q1.7 and Q1.15
fixed-point formats.  A ``Qm.n`` number has one sign bit, ``m-1`` integer
bits and ``n`` fractional bits, stored in two's complement.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["QFormat", "to_fixed", "from_fixed"]


@dataclass(frozen=True)
class QFormat:
    """A signed Qm.n fixed-point format.

    Attributes
    ----------
    integer_bits:
        Number of integer bits including the sign bit (``m``).
    fractional_bits:
        Number of fractional bits (``n``).
    """

    integer_bits: int
    fractional_bits: int

    def __post_init__(self) -> None:
        if self.integer_bits < 1:
            raise ConfigurationError("Q format needs at least the sign bit")
        if self.fractional_bits < 0:
            raise ConfigurationError("fractional bits must be non-negative")

    @property
    def total_bits(self) -> int:
        """Total storage width in bits."""
        return self.integer_bits + self.fractional_bits

    @property
    def scale(self) -> int:
        """Scaling factor 2**n applied to real values."""
        return 1 << self.fractional_bits

    @property
    def min_value(self) -> float:
        """Smallest representable real value."""
        return -(1 << (self.integer_bits - 1))

    @property
    def max_value(self) -> float:
        """Largest representable real value."""
        return (1 << (self.integer_bits - 1)) - 1.0 / self.scale

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"Q{self.integer_bits}.{self.fractional_bits}"


#: The two formats evaluated in the paper's multiplication workload.
Q1_7 = QFormat(integer_bits=1, fractional_bits=7)
Q1_15 = QFormat(integer_bits=1, fractional_bits=15)


def to_fixed(values: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Quantize real ``values`` into the two's-complement integer encoding.

    Values are clipped to the representable range and rounded to nearest.
    The result is an unsigned integer array holding the raw bit patterns
    (suitable for packing into DRAM rows).
    """
    values = np.asarray(values, dtype=np.float64)
    clipped = np.clip(values, fmt.min_value, fmt.max_value)
    scaled = np.round(clipped * fmt.scale).astype(np.int64)
    return (scaled & ((1 << fmt.total_bits) - 1)).astype(np.uint64)


def from_fixed(raw: np.ndarray, fmt: QFormat) -> np.ndarray:
    """Decode raw two's-complement bit patterns back into real values."""
    raw = np.asarray(raw, dtype=np.uint64).astype(np.int64)
    sign_bit = 1 << (fmt.total_bits - 1)
    signed = np.where(raw & sign_bit, raw - (1 << fmt.total_bits), raw)
    return signed.astype(np.float64) / fmt.scale

"""A bounded insertion-ordered memo with hit/miss accounting.

The execution stack memoizes several expensive pure computations —
scheduler makespans, trace templates, hierarchical schedules — all with
the same needs: a hashable structural key, a size bound so long-running
services cannot grow without limit, and hit/miss counters surfaced
through ``PlutoSession.cache_stats()``.  :class:`BoundedMemo` implements
that once.
"""

from __future__ import annotations

from typing import Generic, Hashable, TypeVar

from repro.errors import ConfigurationError

__all__ = ["BoundedMemo"]

Value = TypeVar("Value")


class BoundedMemo(Generic[Value]):
    """An insertion-ordered memo evicting its oldest entry when full.

    ``get`` counts a hit or a miss; callers that cannot build a hashable
    key record the bypass with :meth:`note_uncached` so the statistics
    still account for every query.  ``None`` is not a storable value (a
    ``get`` returning ``None`` means "absent").
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ConfigurationError("memo limit must be positive")
        self.limit = limit
        self._entries: dict[Hashable, Value] = {}
        self.hits = 0
        self.misses = 0
        self.uncached = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Value | None:
        """The cached value, counting a hit; ``None`` (a miss) otherwise."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
        else:
            self.hits += 1
        return value

    def peek(self, key: Hashable) -> Value | None:
        """The cached value without touching the hit/miss counters.

        For cache *seeding* paths (warm-start installation), which must
        not make a pre-warmed process look like it served cold misses.
        """
        return self._entries.get(key)

    def put(self, key: Hashable, value: Value) -> None:
        """Store ``value``, evicting the oldest entry at the size bound."""
        if len(self._entries) >= self.limit and key not in self._entries:
            self._entries.pop(next(iter(self._entries)))
        self._entries[key] = value

    def note_uncached(self) -> None:
        """Record a query that bypassed the memo (unhashable key)."""
        self.uncached += 1

    def stats(self) -> dict[str, int]:
        """Counters plus the current entry count."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "uncached": self.uncached,
            "size": len(self._entries),
        }

    def clear(self) -> None:
        """Drop every entry and reset the counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0
        self.uncached = 0

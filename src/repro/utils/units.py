"""Unit constants and small numeric helpers.

All internal timing values are expressed in **nanoseconds** and all internal
energy values in **nanojoules** unless a docstring says otherwise; these
constants make conversions explicit at call sites.
"""

from __future__ import annotations

import math
from typing import Iterable

__all__ = [
    "PICO",
    "NANO",
    "MICRO",
    "MILLI",
    "KILO",
    "MEGA",
    "GIGA",
    "format_time",
    "format_energy",
    "geometric_mean",
]

PICO = 1e-12
NANO = 1e-9
MICRO = 1e-6
MILLI = 1e-3
KILO = 1e3
MEGA = 1e6
GIGA = 1e9


def format_time(nanoseconds: float) -> str:
    """Render a duration given in nanoseconds with a sensible unit."""
    if nanoseconds < 0:
        return f"-{format_time(-nanoseconds)}"
    if nanoseconds < 1e3:
        return f"{nanoseconds:.2f} ns"
    if nanoseconds < 1e6:
        return f"{nanoseconds / 1e3:.2f} us"
    if nanoseconds < 1e9:
        return f"{nanoseconds / 1e6:.2f} ms"
    return f"{nanoseconds / 1e9:.2f} s"


def format_energy(nanojoules: float) -> str:
    """Render an energy given in nanojoules with a sensible unit."""
    if nanojoules < 0:
        return f"-{format_energy(-nanojoules)}"
    if nanojoules < 1e3:
        return f"{nanojoules:.2f} nJ"
    if nanojoules < 1e6:
        return f"{nanojoules / 1e3:.2f} uJ"
    if nanojoules < 1e9:
        return f"{nanojoules / 1e6:.2f} mJ"
    return f"{nanojoules / 1e9:.2f} J"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of strictly positive values.

    The paper reports GMEAN columns in Figures 7-10 and 14; this helper is
    shared by all experiment classes.
    """
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence is undefined")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))

"""The evaluated workloads (Table 4)."""

from repro.workloads.base import Workload
from repro.workloads.bitcount import BitCount
from repro.workloads.bitwise import RowBitwise
from repro.workloads.crc import CrcWorkload
from repro.workloads.image import ColorGrading, ImageBinarization, synthetic_image
from repro.workloads.programs import (
    WorkloadProgram,
    optimizer_workload_programs,
    workload_program,
)
from repro.workloads.registry import (
    all_workloads,
    figure7_workloads,
    figure9_workloads,
    workload_by_name,
)
from repro.workloads.salsa20 import Salsa20Workload, salsa20_block
from repro.workloads.vector_ops import VectorAddition, VectorMultiplication
from repro.workloads.vmpc import VmpcWorkload, vmpc_keystream, vmpc_ksa

__all__ = [
    "Workload",
    "BitCount",
    "RowBitwise",
    "CrcWorkload",
    "ColorGrading",
    "ImageBinarization",
    "synthetic_image",
    "WorkloadProgram",
    "optimizer_workload_programs",
    "workload_program",
    "all_workloads",
    "figure7_workloads",
    "figure9_workloads",
    "workload_by_name",
    "Salsa20Workload",
    "salsa20_block",
    "VectorAddition",
    "VectorMultiplication",
    "VmpcWorkload",
    "vmpc_keystream",
    "vmpc_ksa",
]

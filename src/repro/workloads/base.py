"""Common interface of the evaluated workloads (Table 4).

Every workload provides three things:

1. ``recipe`` — the :class:`~repro.core.recipe.WorkloadRecipe` describing
   its in-memory command mix and baseline characteristics (consumed by the
   pLUTo engine and the baseline models for Figures 7-10).
2. ``generate_input`` / ``reference`` — a deterministic input generator
   and a host-side reference implementation, used to verify correctness.
3. ``lut_reference`` — the same computation expressed through the LUT
   decomposition pLUTo would use (LUT queries plus cheap glue), used to
   verify that the LUT decomposition is exact before any hardware model is
   involved.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError

__all__ = ["Workload"]


class Workload(abc.ABC):
    """Abstract evaluated workload."""

    #: Name used in figures (matches the paper's labels).
    name: str = "workload"
    #: Default input size (elements) used by the evaluation harness.
    default_elements: int = 1 << 20

    # ------------------------------------------------------------------ #
    # Characterisation
    # ------------------------------------------------------------------ #
    @property
    @abc.abstractmethod
    def recipe(self) -> WorkloadRecipe:
        """The workload's in-memory command mix and baseline characteristics."""

    # ------------------------------------------------------------------ #
    # Functional behaviour
    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        """Generate a deterministic input of ``elements`` elements."""

    @abc.abstractmethod
    def reference(self, data: np.ndarray) -> np.ndarray:
        """Host-side reference implementation (ground truth)."""

    @abc.abstractmethod
    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        """The same computation via the LUT decomposition pLUTo uses."""

    # ------------------------------------------------------------------ #
    # Shared helpers
    # ------------------------------------------------------------------ #
    def verify(self, elements: int = 4096, seed: int = 0) -> bool:
        """Whether the LUT decomposition matches the reference bit-exactly."""
        data = self.generate_input(elements, seed=seed)
        expected = self.reference(data)
        actual = self.lut_reference(data)
        return bool(np.array_equal(np.asarray(expected), np.asarray(actual)))

    @staticmethod
    def _require_positive(elements: int) -> None:
        if elements <= 0:
            raise WorkloadError("element count must be positive")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

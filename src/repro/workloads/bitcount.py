"""Bit-counting workloads BC-4 and BC-8 (Table 4).

Population count is the canonical example of an operation that bit-serial
PuM handles poorly and a LUT handles in a single query: BC-4 uses a
16-entry LUT over 4-bit inputs, BC-8 a 256-entry LUT over bytes.
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import bitcount_lut
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["BitCount"]


class BitCount(Workload):
    """Population count over 4-bit (BC-4) or 8-bit (BC-8) elements."""

    default_elements = 1 << 22

    def __init__(self, bits: int = 8) -> None:
        if bits not in (4, 8):
            raise WorkloadError("the paper evaluates BC-4 and BC-8 only")
        self.bits = bits
        self.name = f"BC{bits}"
        self._lut = bitcount_lut(bits)

    @property
    def recipe(self) -> WorkloadRecipe:
        return WorkloadRecipe(
            name=self.name,
            element_bits=self.bits,
            sweeps_per_row=(1 << self.bits,),
            luts_loaded=(1 << self.bits,),
            bitwise_aaps_per_row=0,
            shift_commands_per_row=0,
            moves_per_row=1,
            output_bits_per_element=self.bits,
            cpu_ops_per_element=3.0,
            kernel_ops_per_element=1.0,
            simd_efficiency=0.2,
            bytes_per_element=self.bits / 8 + 1.0,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        self._require_positive(elements)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 1 << self.bits, size=elements, dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        return np.array([bin(int(x)).count("1") for x in data], dtype=np.uint64)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        return self._lut.query(data)

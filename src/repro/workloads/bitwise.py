"""Row-level bulk bitwise logic workload (Table 4, "# LUT entries: 4").

The paper expresses row-granularity AND/OR/XOR both through Ambit-style
triple-row activation and through tiny 4-entry LUTs (1-bit operands
concatenated into a 2-bit index).  The LUT variant is what stresses the
pLUTo query path, so the recipe uses it; the reference and the LUT
decomposition operate on full 8-bit bytes for convenience (the per-bit
semantics are identical).
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import bitwise_lut
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["RowBitwise"]


class RowBitwise(Workload):
    """Bulk bitwise logic between two vectors (AND / OR / XOR)."""

    default_elements = 1 << 22

    _NUMPY_OPS = {
        "and": np.bitwise_and,
        "or": np.bitwise_or,
        "xor": np.bitwise_xor,
    }

    def __init__(self, operation: str = "xor") -> None:
        operation = operation.lower()
        if operation not in self._NUMPY_OPS:
            raise WorkloadError(f"unsupported bitwise workload operation {operation!r}")
        self.operation = operation
        self.name = operation.upper()
        self._lut = bitwise_lut(operation, 1)

    @property
    def recipe(self) -> WorkloadRecipe:
        return WorkloadRecipe(
            name=self.name,
            element_bits=2,
            sweeps_per_row=(4,),
            luts_loaded=(4,),
            bitwise_aaps_per_row=0,
            shift_commands_per_row=1,
            moves_per_row=1,
            output_bits_per_element=1,
            cpu_ops_per_element=1.0,
            kernel_ops_per_element=0.3,
            simd_efficiency=0.5,
            bytes_per_element=0.4,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        """Two byte vectors stacked as shape (2, elements)."""
        self._require_positive(elements)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=(2, elements), dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        return self._NUMPY_OPS[self.operation](data[0], data[1])

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        """Apply the 4-entry LUT bit-position by bit-position."""
        a, b = data[0], data[1]
        result = np.zeros_like(a)
        for bit in range(8):
            a_bit = (a >> np.uint64(bit)) & np.uint64(1)
            b_bit = (b >> np.uint64(bit)) & np.uint64(1)
            indices = (a_bit << np.uint64(1)) | b_bit
            out_bit = self._lut.query(indices) & np.uint64(1)
            result |= out_bit << np.uint64(bit)
        return result

"""Table-driven CRC workloads: CRC-8, CRC-16, CRC-32 over 128-byte packets.

The reference implementation is the classic byte-at-a-time table-driven
CRC (Hacker's Delight).  The pLUTo mapping performs the per-byte table
lookups in bulk (one 256-entry LUT query covers a whole row of packet
bytes) but the XOR folding across bytes of a packet remains a serial
reduction executed on the host, which is why the paper reports the CRC
workloads as pLUTo's smallest speedups (Section 8.2).
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import crc8_lut, crc16_lut, crc32_lut
from repro.core.lut import LookupTable
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.utils.bitops import mask_of
from repro.workloads.base import Workload

__all__ = ["CrcWorkload"]


class CrcWorkload(Workload):
    """CRC-8/16/32 over fixed-size packets."""

    default_elements = 1 << 21  # total bytes across all packets

    def __init__(self, width: int = 32, packet_bytes: int = 128) -> None:
        if width not in (8, 16, 32):
            raise WorkloadError("CRC width must be 8, 16, or 32")
        if packet_bytes <= 0:
            raise WorkloadError("packet size must be positive")
        self.width = width
        self.packet_bytes = packet_bytes
        self.name = f"CRC-{width}"
        self._lut: LookupTable = {8: crc8_lut, 16: crc16_lut, 32: crc32_lut}[width]()
        self._reflected = width == 32

    @property
    def recipe(self) -> WorkloadRecipe:
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=(256,),
            luts_loaded=(256,),
            bitwise_aaps_per_row=4,
            shift_commands_per_row=2,
            moves_per_row=1 + self.width // 16,
            output_bits_per_element=self.width,
            cpu_ops_per_element=12.0,
            kernel_ops_per_element=4.0,
            simd_efficiency=0.1,  # byte-serial dependent chain per packet
            bytes_per_element=1.0 + self.width / (8.0 * self.packet_bytes),
            serial_fraction=0.005,  # host-side XOR folding per packet
        )

    # ------------------------------------------------------------------ #
    # Input generation and references
    # ------------------------------------------------------------------ #
    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        """A byte stream whose length is a whole number of packets."""
        self._require_positive(elements)
        packets = max(1, elements // self.packet_bytes)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=packets * self.packet_bytes, dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        """One CRC per packet, computed byte-at-a-time with the table."""
        return self._compute(data, use_lut=False)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        """One CRC per packet using LUT queries for the table lookups."""
        return self._compute(data, use_lut=True)

    # ------------------------------------------------------------------ #
    # Shared implementation
    # ------------------------------------------------------------------ #
    def _compute(self, data: np.ndarray, *, use_lut: bool) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint64)
        if data.size % self.packet_bytes:
            raise WorkloadError(
                f"input length {data.size} is not a multiple of the "
                f"{self.packet_bytes}-byte packet size"
            )
        packets = data.reshape(-1, self.packet_bytes)
        results = np.zeros(packets.shape[0], dtype=np.uint64)
        width_mask = mask_of(self.width)
        for index, packet in enumerate(packets):
            crc = 0
            for byte in packet.tolist():
                if self._reflected:
                    table_index = (crc ^ byte) & 0xFF
                    looked_up = self._table_value(table_index, use_lut)
                    crc = (crc >> 8) ^ looked_up
                else:
                    table_index = ((crc >> (self.width - 8)) ^ byte) & 0xFF
                    looked_up = self._table_value(table_index, use_lut)
                    crc = ((crc << 8) & width_mask) ^ looked_up
            results[index] = crc & width_mask
        return results

    def _table_value(self, index: int, use_lut: bool) -> int:
        if use_lut:
            return int(self._lut.query(np.array([index]))[0])
        return self._lut[index]

"""Image-processing workloads: binarization and colour grading (Table 4).

Both operate on 3-channel 8-bit images with 936,000 pixels (the paper's
configuration).  Each is a pure per-pixel 8-bit -> 8-bit mapping, i.e. a
single 256-entry LUT query per channel value — the sweet spot of pLUTo's
design space.
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import binarize_lut, color_grade_lut
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["ImageBinarization", "ColorGrading", "synthetic_image"]

#: The paper's image size: 936,000 pixels x 3 channels.
PAPER_IMAGE_PIXELS = 936_000
PAPER_IMAGE_CHANNELS = 3


def synthetic_image(pixels: int, channels: int = PAPER_IMAGE_CHANNELS, seed: int = 0) -> np.ndarray:
    """Generate a synthetic photograph-like image as flat channel values.

    The generator sums a few smooth 2-D gradients with speckle noise so the
    histogram is broad (exercising every LUT entry) rather than uniform.
    """
    if pixels <= 0 or channels <= 0:
        raise WorkloadError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    side = max(1, int(np.sqrt(pixels)))
    rows = -(-pixels // side)
    y, x = np.mgrid[0:rows, 0:side]
    image = np.zeros((rows * side, channels))
    for channel in range(channels):
        gradient = (
            0.5 * np.sin(2 * np.pi * (x / side) * (channel + 1))
            + 0.5 * np.cos(2 * np.pi * (y / max(1, rows)) * (channel + 2))
        ).ravel()
        noise = rng.normal(0.0, 0.15, size=gradient.size)
        channel_values = (gradient + noise + 1.0) / 2.0
        image[:, channel] = np.clip(channel_values, 0.0, 1.0)
    flat = (image[:pixels] * 255.0).round().astype(np.uint64)
    return flat.ravel()


class ImageBinarization(Workload):
    """Per-pixel thresholding of an 8-bit image (ImgBin)."""

    name = "ImgBin"
    default_elements = PAPER_IMAGE_PIXELS * PAPER_IMAGE_CHANNELS

    def __init__(self, threshold_fraction: float = 0.5) -> None:
        if not 0.0 < threshold_fraction < 1.0:
            raise WorkloadError("threshold fraction must be in (0, 1)")
        self.threshold = int(round(threshold_fraction * 255))
        self._lut = binarize_lut(self.threshold)

    @property
    def recipe(self) -> WorkloadRecipe:
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=(256,),
            luts_loaded=(256,),
            bitwise_aaps_per_row=0,
            shift_commands_per_row=0,
            moves_per_row=1,
            output_bits_per_element=8,
            cpu_ops_per_element=30.0,
            kernel_ops_per_element=1.0,
            simd_efficiency=0.05,
            bytes_per_element=2.0,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        self._require_positive(elements)
        return synthetic_image(-(-elements // PAPER_IMAGE_CHANNELS), seed=seed)[:elements]

    def reference(self, data: np.ndarray) -> np.ndarray:
        return np.where(data > self.threshold, np.uint64(255), np.uint64(0))

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        return self._lut.query(data)


class ColorGrading(Workload):
    """Per-channel tone-curve application (ColorGrade)."""

    name = "ColorGrade"
    default_elements = PAPER_IMAGE_PIXELS * PAPER_IMAGE_CHANNELS

    def __init__(self) -> None:
        self._lut = color_grade_lut()

    @property
    def recipe(self) -> WorkloadRecipe:
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=(256,),
            luts_loaded=(256,),
            bitwise_aaps_per_row=0,
            shift_commands_per_row=0,
            moves_per_row=1,
            output_bits_per_element=8,
            cpu_ops_per_element=48.0,
            kernel_ops_per_element=2.0,
            simd_efficiency=0.05,
            bytes_per_element=2.0,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        self._require_positive(elements)
        return synthetic_image(-(-elements // PAPER_IMAGE_CHANNELS), seed=seed)[:elements]

    def reference(self, data: np.ndarray) -> np.ndarray:
        """Apply the same tone curve the LUT tabulates, per channel value."""
        normalised = data.astype(np.float64) / 255.0
        graded = normalised * normalised * (3.0 - 2.0 * normalised)
        return np.clip(np.round(graded * 255.0), 0, 255).astype(np.uint64)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        return self._lut.query(data)

"""Recorded API programs for the registry workload families.

The workloads of Table 4 are characterised analytically through
:class:`~repro.core.recipe.WorkloadRecipe`; this module additionally
expresses one representative *pipeline* per family as a recorded
:class:`~repro.api.session.PlutoSession` program, so the execution stack
— and in particular the program optimizer (:mod:`repro.opt`) — can run
them end to end.  Each pipeline uses the family's own tables (CRC byte
tables, the VMPC permutation, tone curves, population counts, nibble
adders) arranged the way applications chain them, which is exactly where
LUT-chain fusion, CSE, and dead-op elimination pay off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.api.luts import (
    add_lut,
    binarize_lut,
    bitcount_lut,
    color_grade_lut,
    crc8_lut,
    permutation_lut,
    relu_lut,
)
from repro.api.session import PlutoSession
from repro.core.lut import lut_from_function
from repro.workloads.vmpc import vmpc_ksa

__all__ = ["WorkloadProgram", "optimizer_workload_programs", "workload_program"]


@dataclass(frozen=True)
class WorkloadProgram:
    """One recorded workload pipeline: session, inputs, and provenance."""

    name: str
    family: str
    session: PlutoSession
    inputs: dict[str, np.ndarray]
    description: str


def _image_pipeline(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """Grade -> binarize -> invert: the ImgBin/ColorGrade chain."""
    session = PlutoSession()
    pixels = session.pluto_malloc(elements, 8, "pixels")
    graded = session.pluto_malloc(elements, 8, "graded")
    mask = session.pluto_malloc(elements, 8, "mask")
    inverted = session.pluto_malloc(elements, 8, "inverted")
    invert = lut_from_function(lambda x: x ^ 0xFF, 8, 8, name="invert8")
    session.api_pluto_map(color_grade_lut(), pixels, graded)
    session.api_pluto_map(binarize_lut(127), graded, mask)
    session.api_pluto_map(invert, mask, inverted)
    return WorkloadProgram(
        name="image",
        family="ImgBin/ColorGrade",
        session=session,
        inputs={"pixels": rng.integers(0, 256, elements, dtype=np.uint64)},
        description="tone grade -> threshold -> invert, three chained 256-entry maps",
    )


def _crc_chain(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """Table-driven CRC-8 over zero-extended messages: iterated byte table."""
    session = PlutoSession()
    data = session.pluto_malloc(elements, 8, "data")
    crc1 = session.pluto_malloc(elements, 8, "crc1")
    crc2 = session.pluto_malloc(elements, 8, "crc2")
    crc3 = session.pluto_malloc(elements, 8, "crc3")
    table = crc8_lut()
    # crc of (byte, 0, 0): table[table[table[b]]] — the standard update
    # with zero feed-in bytes is a pure table chain.
    session.api_pluto_map(table, data, crc1)
    session.api_pluto_map(table, crc1, crc2)
    session.api_pluto_map(table, crc2, crc3)
    return WorkloadProgram(
        name="crc",
        family="CRC-8",
        session=session,
        inputs={"data": rng.integers(0, 256, elements, dtype=np.uint64)},
        description="three chained CRC-8 byte-table updates (zero-padded message)",
    )


def _salsa20_round(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """One byte-lane of a quarter-round: LUT add, rotate, xor, substitute."""
    session = PlutoSession()
    key_lo = session.pluto_malloc(elements, 4, "key_lo")
    nonce_lo = session.pluto_malloc(elements, 4, "nonce_lo")
    plain = session.pluto_malloc(elements, 8, "plain")
    added = session.pluto_malloc(elements, 8, "added")
    rotated = session.pluto_malloc(elements, 8, "rotated")
    mixed = session.pluto_malloc(elements, 8, "mixed")
    added_again = session.pluto_malloc(elements, 8, "added_again")
    rotated_again = session.pluto_malloc(elements, 8, "rotated_again")
    keystream = session.pluto_malloc(elements, 8, "keystream")
    cipher = session.pluto_malloc(elements, 8, "cipher")
    rotl = lut_from_function(
        lambda x: ((x << 3) | (x >> 5)) & 0xFF, 8, 8, name="rotl3"
    )
    # z = rotl(a + b); the nibble add's sums (<= 30) index the rotate
    # table directly, so the optimizer folds add+rotl into one query.
    session.api_pluto_add(key_lo, nonce_lo, added, bit_width=4)
    session.api_pluto_map(rotl, added, rotated)
    session.api_pluto_bitwise("xor", rotated, plain, mixed)
    # The second quarter-round recomputes the same lane sum (CSE food).
    session.api_pluto_add(key_lo, nonce_lo, added_again, bit_width=4)
    session.api_pluto_map(rotl, added_again, rotated_again)
    session.api_pluto_bitwise("xor", rotated_again, mixed, keystream)
    session.api_pluto_bitwise("xor", keystream, plain, cipher)
    return WorkloadProgram(
        name="salsa20",
        family="Salsa20",
        session=session,
        inputs={
            "key_lo": rng.integers(0, 16, elements, dtype=np.uint64),
            "nonce_lo": rng.integers(0, 16, elements, dtype=np.uint64),
            "plain": rng.integers(0, 256, elements, dtype=np.uint64),
        },
        description="byte lane of two quarter-rounds: add-rotate-xor with a "
        "repeated lane sum",
    )


def _vmpc_substitution(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """VMPC's nested permutation lookups P[P[P[x]]] (one output byte)."""
    permutation, _ = vmpc_ksa(bytes(range(16)), bytes(range(8)))
    sbox = permutation_lut(permutation, 8, name="vmpc-p")
    session = PlutoSession()
    state = session.pluto_malloc(elements, 8, "state")
    first = session.pluto_malloc(elements, 8, "first")
    second = session.pluto_malloc(elements, 8, "second")
    third = session.pluto_malloc(elements, 8, "third")
    session.api_pluto_map(sbox, state, first)
    session.api_pluto_map(sbox, first, second)
    session.api_pluto_map(sbox, second, third)
    return WorkloadProgram(
        name="vmpc",
        family="VMPC",
        session=session,
        inputs={"state": rng.integers(0, 256, elements, dtype=np.uint64)},
        description="three nested VMPC permutation lookups",
    )


def _bitcount_threshold(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """BC-8 population count followed by a majority threshold."""
    session = PlutoSession()
    words = session.pluto_malloc(elements, 8, "words")
    counts = session.pluto_malloc(elements, 8, "counts")
    majority = session.pluto_malloc(elements, 8, "majority")
    threshold = lut_from_function(
        lambda x: 1 if x >= 4 else 0, 8, 8, name="majority8"
    )
    session.api_pluto_map(bitcount_lut(8), words, counts)
    session.api_pluto_map(threshold, counts, majority)
    return WorkloadProgram(
        name="bitcount",
        family="BC-8",
        session=session,
        inputs={"words": rng.integers(0, 256, elements, dtype=np.uint64)},
        description="population count chained into a majority threshold",
    )


def _vector_add_relu(elements: int, rng: np.random.Generator) -> WorkloadProgram:
    """ADD4 into a ReLU activation (the QNN accumulate-activate idiom)."""
    session = PlutoSession()
    a = session.pluto_malloc(elements, 4, "a")
    b = session.pluto_malloc(elements, 4, "b")
    total = session.pluto_malloc(elements, 8, "sum")
    activated = session.pluto_malloc(elements, 8, "activated")
    session.api_pluto_add(a, b, total, bit_width=4)
    session.api_pluto_map(relu_lut(8), total, activated)
    return WorkloadProgram(
        name="vector_ops",
        family="ADD4",
        session=session,
        inputs={
            "a": rng.integers(0, 16, elements, dtype=np.uint64),
            "b": rng.integers(0, 16, elements, dtype=np.uint64),
        },
        description="LUT addition folded into its ReLU activation",
    )


_BUILDERS: dict[str, Callable[[int, np.random.Generator], WorkloadProgram]] = {
    "image": _image_pipeline,
    "crc": _crc_chain,
    "salsa20": _salsa20_round,
    "vmpc": _vmpc_substitution,
    "bitcount": _bitcount_threshold,
    "vector_ops": _vector_add_relu,
}


def workload_program(
    name: str, elements: int = 4096, seed: int = 0
) -> WorkloadProgram:
    """Build one named workload pipeline with deterministic inputs."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload program {name!r}; expected one of "
            f"{sorted(_BUILDERS)}"
        ) from None
    return builder(elements, np.random.default_rng(seed))


def optimizer_workload_programs(
    elements: int = 4096, seed: int = 0
) -> list[WorkloadProgram]:
    """Every registry family's pipeline (the optimizer-gain corpus)."""
    return [workload_program(name, elements, seed) for name in _BUILDERS]

"""Workload registry: the evaluated workload sets of each figure/table."""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.utils.fixedpoint import Q1_7, Q1_15
from repro.workloads.base import Workload
from repro.workloads.bitcount import BitCount
from repro.workloads.bitwise import RowBitwise
from repro.workloads.crc import CrcWorkload
from repro.workloads.image import ColorGrading, ImageBinarization
from repro.workloads.salsa20 import Salsa20Workload
from repro.workloads.vector_ops import VectorAddition, VectorMultiplication
from repro.workloads.vmpc import VmpcWorkload

__all__ = [
    "all_workloads",
    "figure7_workloads",
    "figure9_workloads",
    "workload_by_name",
]


def all_workloads() -> list[Workload]:
    """Every workload of Table 4 (eleven in total)."""
    return [
        VectorAddition(4),
        VectorMultiplication(Q1_7),
        VectorMultiplication(Q1_15),
        RowBitwise("and"),
        RowBitwise("or"),
        RowBitwise("xor"),
        BitCount(4),
        BitCount(8),
        CrcWorkload(8),
        CrcWorkload(16),
        CrcWorkload(32),
        Salsa20Workload(),
        VmpcWorkload(),
        ImageBinarization(),
        ColorGrading(),
    ]


def figure7_workloads() -> list[Workload]:
    """The workloads plotted in Figures 7, 8, 10, and 13."""
    return [
        CrcWorkload(8),
        CrcWorkload(16),
        CrcWorkload(32),
        Salsa20Workload(),
        VmpcWorkload(),
        ImageBinarization(),
        ColorGrading(),
    ]


def figure9_workloads() -> list[Workload]:
    """The workloads plotted in Figure 9 (comparison against the FPGA)."""
    return [
        VectorAddition(4),
        VectorAddition(8),
        VectorMultiplication(Q1_7),
        VectorMultiplication(Q1_15),
        BitCount(4),
        BitCount(8),
        CrcWorkload(8),
        CrcWorkload(16),
        CrcWorkload(32),
        ImageBinarization(),
    ]


def workload_by_name(name: str) -> Workload:
    """Look up one workload instance by its figure label."""
    for workload in all_workloads() + [VectorAddition(8)]:
        if workload.name.lower() == name.lower():
            return workload
    raise WorkloadError(f"unknown workload {name!r}")

"""Salsa20 stream cipher workload (Table 4, 512-byte packets).

The reference is a from-scratch Salsa20/20 implementation (Bernstein's
specification): a 16-word state hashed by 20 rounds of quarter-rounds
(add-rotate-xor), producing a 64-byte keystream block that is XORed with
the plaintext.

The pLUTo mapping keeps the ARX structure: 32-bit additions decompose into
byte-wide LUT additions with carry propagation (four 256-entry queries plus
carry handling per addition), rotations map to DRISA shifts, and XORs map
to Ambit bulk operations.  The LUT decomposition is verified by
``lut_reference``, which re-implements the 32-bit adder on top of an 8-bit
addition LUT.
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import add_lut
from repro.core.recipe import WorkloadRecipe
from repro.errors import WorkloadError
from repro.workloads.base import Workload

__all__ = ["Salsa20Workload", "salsa20_block"]

_MASK32 = 0xFFFFFFFF


def _rotl32(value: int, amount: int) -> int:
    value &= _MASK32
    return ((value << amount) | (value >> (32 - amount))) & _MASK32


def _quarter_round(y0: int, y1: int, y2: int, y3: int, add32) -> tuple[int, int, int, int]:
    z1 = y1 ^ _rotl32(add32(y0, y3), 7)
    z2 = y2 ^ _rotl32(add32(z1, y0), 9)
    z3 = y3 ^ _rotl32(add32(z2, z1), 13)
    z0 = y0 ^ _rotl32(add32(z3, z2), 18)
    return z0, z1, z2, z3


def _row_round(state: list[int], add32) -> list[int]:
    s = list(state)
    s[0], s[1], s[2], s[3] = _quarter_round(s[0], s[1], s[2], s[3], add32)
    s[5], s[6], s[7], s[4] = _quarter_round(s[5], s[6], s[7], s[4], add32)
    s[10], s[11], s[8], s[9] = _quarter_round(s[10], s[11], s[8], s[9], add32)
    s[15], s[12], s[13], s[14] = _quarter_round(s[15], s[12], s[13], s[14], add32)
    return s


def _column_round(state: list[int], add32) -> list[int]:
    s = list(state)
    s[0], s[4], s[8], s[12] = _quarter_round(s[0], s[4], s[8], s[12], add32)
    s[5], s[9], s[13], s[1] = _quarter_round(s[5], s[9], s[13], s[1], add32)
    s[10], s[14], s[2], s[6] = _quarter_round(s[10], s[14], s[2], s[6], add32)
    s[15], s[3], s[7], s[11] = _quarter_round(s[15], s[3], s[7], s[11], add32)
    return s


def salsa20_block(state_words: list[int], rounds: int = 20, add32=None) -> list[int]:
    """Run the Salsa20 core on a 16-word state and return 16 output words.

    ``add32`` lets callers substitute the 32-bit adder (the pLUTo path uses
    a byte-LUT-based adder); the default is ordinary modular addition.
    """
    if len(state_words) != 16:
        raise WorkloadError("the Salsa20 state has exactly 16 words")
    if rounds % 2:
        raise WorkloadError("Salsa20 uses an even number of rounds")
    if add32 is None:
        add32 = lambda a, b: (a + b) & _MASK32  # noqa: E731 - tiny local adder
    state = [w & _MASK32 for w in state_words]
    working = list(state)
    for _ in range(rounds // 2):
        working = _column_round(working, add32)
        working = _row_round(working, add32)
    return [add32(working[i], state[i]) for i in range(16)]


class Salsa20Workload(Workload):
    """Salsa20/20 keystream encryption of 512-byte packets."""

    name = "Salsa20"
    default_elements = 1 << 20  # total plaintext bytes

    #: Fixed 256-bit key and 64-bit nonce used for deterministic evaluation.
    _KEY = bytes(range(32))
    _NONCE = bytes(range(8))
    _SIGMA = (0x61707865, 0x3320646E, 0x79622D32, 0x6B206574)

    def __init__(self, packet_bytes: int = 512) -> None:
        if packet_bytes % 64:
            raise WorkloadError("packet size must be a multiple of the 64-byte block")
        self.packet_bytes = packet_bytes
        self._add8 = add_lut(8)

    @property
    def recipe(self) -> WorkloadRecipe:
        # Per byte of plaintext: 20 rounds x 4 quarter-rounds over a 64-byte
        # block boil down to ~5 32-bit additions, ~5 XORs and ~5 rotations
        # per byte.  Each 32-bit addition maps to one byte-wide 256-entry
        # LUT query per byte lane (carries merged with bitwise operations),
        # so ~5 LUT sweeps per source row; XORs map to Ambit AAPs and
        # rotations to DRISA shifts.
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=tuple([256] * 5),
            luts_loaded=(256,),
            bitwise_aaps_per_row=15,
            shift_commands_per_row=5,
            moves_per_row=2,
            output_bits_per_element=8,
            cpu_ops_per_element=20.0,
            kernel_ops_per_element=18.0,
            simd_efficiency=0.03,
            bytes_per_element=2.0,
            serial_fraction=0.0,
        )

    # ------------------------------------------------------------------ #
    # Input generation and references
    # ------------------------------------------------------------------ #
    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        self._require_positive(elements)
        packets = max(1, elements // self.packet_bytes)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 256, size=packets * self.packet_bytes, dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        return self._encrypt(data, use_lut_adder=False)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        return self._encrypt(data, use_lut_adder=True)

    # ------------------------------------------------------------------ #
    # Implementation
    # ------------------------------------------------------------------ #
    def _initial_state(self, block_counter: int) -> list[int]:
        key_words = [
            int.from_bytes(self._KEY[i : i + 4], "little") for i in range(0, 32, 4)
        ]
        nonce_words = [
            int.from_bytes(self._NONCE[i : i + 4], "little") for i in range(0, 8, 4)
        ]
        counter_words = [block_counter & _MASK32, (block_counter >> 32) & _MASK32]
        sigma = self._SIGMA
        return [
            sigma[0], key_words[0], key_words[1], key_words[2],
            key_words[3], sigma[1], nonce_words[0], nonce_words[1],
            counter_words[0], counter_words[1], sigma[2], key_words[4],
            key_words[5], key_words[6], key_words[7], sigma[3],
        ]

    def _lut_add32(self, a: int, b: int) -> int:
        """32-bit addition built from four byte-wide LUT additions."""
        result = 0
        carry = 0
        for byte_index in range(4):
            a_byte = (a >> (8 * byte_index)) & 0xFF
            b_byte = (b >> (8 * byte_index)) & 0xFF
            partial = int(self._add8.query(np.array([(a_byte << 8) | b_byte]))[0])
            partial += carry
            result |= (partial & 0xFF) << (8 * byte_index)
            carry = partial >> 8
        return result & _MASK32

    def _keystream(self, blocks: int, use_lut_adder: bool) -> np.ndarray:
        adder = self._lut_add32 if use_lut_adder else None
        stream = np.zeros(blocks * 64, dtype=np.uint64)
        for block in range(blocks):
            words = salsa20_block(self._initial_state(block), add32=adder)
            for i, word in enumerate(words):
                for j in range(4):
                    stream[block * 64 + 4 * i + j] = (word >> (8 * j)) & 0xFF
        return stream

    def _encrypt(self, data: np.ndarray, *, use_lut_adder: bool) -> np.ndarray:
        data = np.asarray(data, dtype=np.uint64)
        if data.size % 64:
            raise WorkloadError("plaintext length must be a multiple of 64 bytes")
        keystream = self._keystream(data.size // 64, use_lut_adder)
        return data ^ keystream

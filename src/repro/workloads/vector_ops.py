"""Vector arithmetic workloads: LUT-based addition and Q-format multiplication.

* ``VectorAddition`` — element-wise addition of two 4-bit vectors via a
  single 256-entry LUT query per element pair (Table 4, "Vector Addition,
  LUT-based").
* ``VectorMultiplication`` — element-wise Q1.7 or Q1.15 fixed-point
  multiplication.  An 8x8 multiplier LUT would need 65,536 entries (far
  more than a subarray's rows), so the pLUTo decomposition splits each
  operand into 4-bit nibbles and combines four 256-entry partial-product
  LUT queries with shifts and LUT-based additions, exactly the kind of
  decomposition Section 5.6 calls for.
"""

from __future__ import annotations

import numpy as np

from repro.api.luts import add_lut, multiply_lut
from repro.core.recipe import WorkloadRecipe
from repro.utils.fixedpoint import Q1_7, QFormat, to_fixed
from repro.workloads.base import Workload

__all__ = ["VectorAddition", "VectorMultiplication"]


class VectorAddition(Workload):
    """LUT-based element-wise addition of 4-bit operands."""

    name = "ADD4"
    default_elements = 1 << 22

    def __init__(self, operand_bits: int = 4) -> None:
        self.operand_bits = operand_bits
        self._lut = add_lut(operand_bits)
        self.name = f"ADD{operand_bits}"

    @property
    def recipe(self) -> WorkloadRecipe:
        lut_entries = 1 << (2 * self.operand_bits)
        return WorkloadRecipe(
            name=self.name,
            element_bits=2 * self.operand_bits,
            sweeps_per_row=(lut_entries,),
            luts_loaded=(lut_entries,),
            bitwise_aaps_per_row=4,  # operand merge (shift is separate)
            shift_commands_per_row=self.operand_bits // 8 + self.operand_bits % 8,
            moves_per_row=1,
            output_bits_per_element=self.operand_bits + 1,
            cpu_ops_per_element=3.0,
            kernel_ops_per_element=1.0,
            simd_efficiency=0.2,
            bytes_per_element=3.0,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        """Two operand vectors stacked as shape (2, elements)."""
        self._require_positive(elements)
        rng = np.random.default_rng(seed)
        return rng.integers(0, 1 << self.operand_bits, size=(2, elements), dtype=np.uint64)

    def reference(self, data: np.ndarray) -> np.ndarray:
        return data[0] + data[1]

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        indices = (data[0] << np.uint64(self.operand_bits)) | data[1]
        return self._lut.query(indices)


class VectorMultiplication(Workload):
    """Q-format point-wise multiplication decomposed into nibble LUTs."""

    default_elements = 1 << 21

    def __init__(self, q_format: QFormat = Q1_7) -> None:
        self.q_format = q_format
        self.operand_bits = q_format.total_bits
        self.name = f"MUL{self.operand_bits}"
        self._mul4 = multiply_lut(4)
        self._nibbles = self.operand_bits // 4

    @property
    def recipe(self) -> WorkloadRecipe:
        # Each operand splits into `nibbles` 4-bit digits; the schoolbook
        # product needs nibbles^2 partial products (256-entry LUT queries)
        # plus (nibbles^2 - 1) LUT-based additions to accumulate them.
        partial_products = self._nibbles * self._nibbles
        additions = partial_products - 1
        sweeps = tuple([256] * (partial_products + additions))
        return WorkloadRecipe(
            name=self.name,
            element_bits=8,
            sweeps_per_row=sweeps,
            luts_loaded=(256, 256),
            bitwise_aaps_per_row=4 * partial_products,
            shift_commands_per_row=2 * partial_products,
            moves_per_row=2,
            output_bits_per_element=2 * self.operand_bits,
            cpu_ops_per_element=6.0 if self.operand_bits <= 8 else 8.0,
            kernel_ops_per_element=3.0 if self.operand_bits <= 8 else 6.0,
            simd_efficiency=0.2,
            bytes_per_element=2.0 * self.operand_bits / 8 + 2.0 * self.operand_bits / 8,
            serial_fraction=0.0,
        )

    def generate_input(self, elements: int, seed: int = 0) -> np.ndarray:
        """Two real-valued operand vectors in the Q format's range."""
        self._require_positive(elements)
        rng = np.random.default_rng(seed)
        low, high = self.q_format.min_value, self.q_format.max_value
        return rng.uniform(low, high, size=(2, elements))

    def reference(self, data: np.ndarray) -> np.ndarray:
        """Fixed-point product re-quantized to the Q format (raw bit patterns)."""
        a = to_fixed(data[0], self.q_format).astype(np.int64)
        b = to_fixed(data[1], self.q_format).astype(np.int64)
        signed_a = self._to_signed(a)
        signed_b = self._to_signed(b)
        product = signed_a * signed_b
        scaled = product >> self.q_format.fractional_bits
        return (scaled & ((1 << self.q_format.total_bits) - 1)).astype(np.uint64)

    def lut_reference(self, data: np.ndarray) -> np.ndarray:
        """Nibble-decomposed multiplication using only 4x4 multiplier LUTs."""
        a = to_fixed(data[0], self.q_format).astype(np.uint64)
        b = to_fixed(data[1], self.q_format).astype(np.uint64)
        bits = self.operand_bits
        product = np.zeros(a.shape, dtype=np.object_)
        product[:] = 0
        a_int = a.astype(object)
        b_int = b.astype(object)
        for i in range(self._nibbles):
            for j in range(self._nibbles):
                a_nib = np.array([(int(x) >> (4 * i)) & 0xF for x in a_int], dtype=np.uint64)
                b_nib = np.array([(int(x) >> (4 * j)) & 0xF for x in b_int], dtype=np.uint64)
                indices = (a_nib << np.uint64(4)) | b_nib
                partial = self._mul4.query(indices).astype(object)
                shift = 4 * (i + j)
                product = product + (partial << shift)
        # Interpret the unsigned schoolbook product as a signed 2N-bit value.
        full_mask = (1 << (2 * bits)) - 1
        sign_bit = 1 << (2 * bits - 1)
        corrected = []
        for x, ai, bi in zip(product, a_int, b_int):
            value = int(x)
            # Convert unsigned operand products to signed semantics:
            # (a - 2^bits*sa) * (b - 2^bits*sb) expanded.
            sa = (int(ai) >> (bits - 1)) & 1
            sb = (int(bi) >> (bits - 1)) & 1
            value -= (int(bi) << bits) * sa
            value -= (int(ai) << bits) * sb
            value += (sa & sb) << (2 * bits)
            value &= full_mask
            if value & sign_bit:
                value -= 1 << (2 * bits)
            corrected.append(value >> self.q_format.fractional_bits)
        return np.array(
            [c & ((1 << bits) - 1) for c in corrected], dtype=np.uint64
        )

    def _to_signed(self, raw: np.ndarray) -> np.ndarray:
        bits = self.q_format.total_bits
        sign_bit = 1 << (bits - 1)
        return np.where(raw & sign_bit, raw - (1 << bits), raw)
